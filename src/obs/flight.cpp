#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <tuple>

namespace crowdmap::obs {

namespace {

// Binary dump format (all integers little-endian):
//   "CMFD" u32 version(=1) u8 deterministic u64 dropped
//   u64 string_count { u64 hash, u32 len, bytes }...
//   u64 event_count { u16 kind, u32 thread, u32 detail,
//                     u64 tick, u64 steady_nanos, u64 a, u64 b }...
constexpr char kMagic[4] = {'C', 'M', 'F', 'D'};
constexpr std::uint32_t kDumpVersion = 1;

/// Kinds whose event streams legitimately differ across thread counts:
/// queue-depth samples race with the pool, FIFO evictions depend on cross-
/// thread insertion order. Everything else is keyed by stable identities.
bool kind_is_deterministic(FlightEventKind kind) noexcept {
  // WAL appends/checkpoints are also dropped: their *contents* are stable,
  // but auto-checkpoint timing shifts with pool interleaving, so the event
  // stream is not byte-identical across thread counts.
  return kind != FlightEventKind::kQueueDepth &&
         kind != FlightEventKind::kCacheEvict &&
         kind != FlightEventKind::kWalAppend &&
         kind != FlightEventKind::kWalCheckpoint &&
         kind != FlightEventKind::kClusterShed;
}

bool kind_is_anomaly(FlightEventKind kind) noexcept {
  return kind == FlightEventKind::kFaultFired ||
         kind == FlightEventKind::kDegradation ||
         kind == FlightEventKind::kSloBreach ||
         kind == FlightEventKind::kIngestQuarantine ||
         kind == FlightEventKind::kRecoveryTruncate ||
         kind == FlightEventKind::kClusterFailover ||
         kind == FlightEventKind::kClusterShed;
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Bounds-checked little-endian reader for decode_flight_dump.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] bool take(void* out, std::size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  [[nodiscard]] bool u16(std::uint16_t& v) {
    std::uint8_t raw[2];
    if (!take(raw, 2)) return false;
    v = static_cast<std::uint16_t>(raw[0] | (raw[1] << 8));
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& v) {
    std::uint8_t raw[4];
    if (!take(raw, 4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | raw[i];
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t& v) {
    std::uint8_t raw[8];
    if (!take(raw, 8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | raw[i];
    return true;
  }
};

std::uint64_t next_recorder_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local map from recorder id to that thread's ring, so record() on
/// a warm thread never touches the registry mutex. Bounded: recorders are
/// long-lived (one per pipeline/service), and stale ids simply miss.
struct ThreadRingCache {
  static constexpr std::size_t kCapacity = 16;
  struct Entry {
    std::uint64_t recorder_id = 0;
    void* ring = nullptr;
  };
  Entry entries[kCapacity];
  std::size_t used = 0;

  [[nodiscard]] void* find(std::uint64_t id) const noexcept {
    for (std::size_t i = 0; i < used; ++i) {
      if (entries[i].recorder_id == id) return entries[i].ring;
    }
    return nullptr;
  }
  void insert(std::uint64_t id, void* ring) noexcept {
    if (used < kCapacity) {
      entries[used++] = {id, ring};
      return;
    }
    // Full: evict the entry with the smallest (oldest) recorder id.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < kCapacity; ++i) {
      if (entries[i].recorder_id < entries[victim].recorder_id) victim = i;
    }
    entries[victim] = {id, ring};
  }
  void erase_recorder(std::uint64_t id) noexcept {
    for (std::size_t i = 0; i < used; ++i) {
      if (entries[i].recorder_id == id) {
        entries[i] = entries[--used];
        return;
      }
    }
  }
};

thread_local ThreadRingCache tl_ring_cache;

void json_escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view flight_event_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kSpanBegin: return "span_begin";
    case FlightEventKind::kSpanEnd: return "span_end";
    case FlightEventKind::kCacheHit: return "cache_hit";
    case FlightEventKind::kCacheMiss: return "cache_miss";
    case FlightEventKind::kCacheEvict: return "cache_evict";
    case FlightEventKind::kFaultFired: return "fault_fired";
    case FlightEventKind::kIngestRetransmit: return "ingest_retransmit";
    case FlightEventKind::kIngestQuarantine: return "ingest_quarantine";
    case FlightEventKind::kDegradation: return "degradation";
    case FlightEventKind::kQueueDepth: return "queue_depth";
    case FlightEventKind::kSloBreach: return "slo_breach";
    case FlightEventKind::kWalAppend: return "wal_append";
    case FlightEventKind::kWalCheckpoint: return "wal_checkpoint";
    case FlightEventKind::kRecoveryTruncate: return "recovery_truncate";
    case FlightEventKind::kClusterReplicate: return "cluster_replicate";
    case FlightEventKind::kClusterFailover: return "cluster_failover";
    case FlightEventKind::kClusterShed: return "cluster_shed";
  }
  return "unknown";
}

// ---------------------------------------------------------------- rings ---

FlightRecorder::Ring::Ring(std::size_t capacity_events, std::uint32_t slot)
    : slot(slot),
      capacity(round_up_pow2(std::max<std::size_t>(capacity_events, 8))),
      // make_unique value-initializes, so every word starts zeroed.
      words(std::make_unique<std::atomic<std::uint64_t>[]>(
          capacity * kWordsPerEvent)) {}

FlightRecorder::FlightRecorder(FlightOptions options)
    : options_(options),
      id_(next_recorder_id()),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() {
  // The destroying thread's cache entry is the only one we can reach; other
  // threads' stale entries are keyed by id_ (never reused), so they miss
  // harmlessly on their next lookup.
  tl_ring_cache.erase_recorder(id_);
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  if (void* cached = tl_ring_cache.find(id_)) {
    return static_cast<Ring*>(cached);
  }
  Ring* ring = nullptr;
  {
    common::MutexLock lock(rings_mutex_);
    const auto slot = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(std::make_unique<Ring>(options_.ring_capacity, slot));
    ring = rings_.back().get();
  }
  tl_ring_cache.insert(id_, ring);
  return ring;
}

void FlightRecorder::record_armed(FlightEventKind kind, std::uint32_t detail,
                                  std::uint64_t a, std::uint64_t b) noexcept {
  Ring* ring = ring_for_this_thread();
  const std::uint64_t nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* slot =
      &ring->words[(head & (ring->capacity - 1)) * kWordsPerEvent];
  const std::uint64_t word0 =
      (static_cast<std::uint64_t>(kind) << 48) |
      (static_cast<std::uint64_t>(ring->slot & 0xFFFF) << 32) | detail;
  slot[0].store(word0, std::memory_order_relaxed);
  slot[1].store(clock_.now(), std::memory_order_relaxed);
  slot[2].store(nanos, std::memory_order_relaxed);
  slot[3].store(a, std::memory_order_relaxed);
  slot[4].store(b, std::memory_order_relaxed);
  // Publish: a dumper that sees head >= h also sees the words above.
  ring->head.store(head + 1, std::memory_order_release);
  if (kind_is_anomaly(kind) &&
      dump_on_anomaly_.load(std::memory_order_relaxed)) {
    maybe_anomaly_dump(kind);
  }
}

void FlightRecorder::record_named(FlightEventKind kind, std::uint32_t detail,
                                  std::string_view name, std::uint64_t b) {
  if (!armed()) return;
  record_armed(kind, detail, intern(name), b);
}

std::uint64_t FlightRecorder::intern(std::string_view name) {
  const std::uint64_t hash = common::stable_string_hash(name);
  common::MutexLock lock(strings_mutex_);
  strings_.emplace(hash, std::string(name));
  return hash;
}

void FlightRecorder::maybe_anomaly_dump(FlightEventKind kind) {
  // Budget check via CAS so a fault storm fires at most max_anomaly_dumps.
  std::uint64_t fired = anomaly_dump_count_.load(std::memory_order_relaxed);
  do {
    if (fired >= options_.max_anomaly_dumps) return;
  } while (!anomaly_dump_count_.compare_exchange_weak(
      fired, fired + 1, std::memory_order_relaxed));
  DumpSink sink;
  {
    common::MutexLock lock(sink_mutex_);
    sink = sink_;
  }
  if (!sink) return;
  std::string reason = "anomaly:";
  reason += flight_event_kind_name(kind);
  sink(dump(), reason);
}

void FlightRecorder::set_dump_sink(DumpSink sink) {
  common::MutexLock lock(sink_mutex_);
  sink_ = std::move(sink);
}

void FlightRecorder::dump_now(std::string_view reason) {
  DumpSink sink;
  {
    common::MutexLock lock(sink_mutex_);
    sink = sink_;
  }
  if (sink) sink(dump(), reason);
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  std::uint64_t total = 0;
  common::MutexLock lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > ring->capacity) total += head - ring->capacity;
  }
  return total;
}

FlightDump FlightRecorder::dump_impl(bool deterministic) const {
  FlightDump out;
  out.deterministic = deterministic;
  {
    common::MutexLock lock(rings_mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t live = std::min<std::uint64_t>(head, ring->capacity);
      if (head > ring->capacity) out.dropped += head - ring->capacity;
      for (std::uint64_t i = head - live; i < head; ++i) {
        const std::atomic<std::uint64_t>* slot =
            &ring->words[(i & (ring->capacity - 1)) * kWordsPerEvent];
        const std::uint64_t word0 = slot[0].load(std::memory_order_relaxed);
        FlightEventRecord event;
        event.kind = static_cast<FlightEventKind>(word0 >> 48);
        event.thread = static_cast<std::uint32_t>((word0 >> 32) & 0xFFFF);
        event.detail = static_cast<std::uint32_t>(word0 & 0xFFFFFFFFu);
        event.tick = slot[1].load(std::memory_order_relaxed);
        event.steady_nanos = slot[2].load(std::memory_order_relaxed);
        event.a = slot[3].load(std::memory_order_relaxed);
        event.b = slot[4].load(std::memory_order_relaxed);
        if (deterministic && !kind_is_deterministic(event.kind)) continue;
        out.events.push_back(event);
      }
    }
  }
  {
    common::MutexLock lock(strings_mutex_);
    out.strings = strings_;
  }
  if (deterministic) {
    for (auto& event : out.events) {
      event.thread = 0;
      event.steady_nanos = 0;
      if (event.kind == FlightEventKind::kSpanEnd) event.b = 0;  // duration
    }
    std::sort(out.events.begin(), out.events.end(),
              [](const FlightEventRecord& lhs, const FlightEventRecord& rhs) {
                return std::tie(lhs.tick, lhs.kind, lhs.detail, lhs.a, lhs.b) <
                       std::tie(rhs.tick, rhs.kind, rhs.detail, rhs.a, rhs.b);
              });
  } else {
    // Wall view: merge the per-thread streams into steady-clock order so the
    // dump reads as one timeline.
    std::stable_sort(
        out.events.begin(), out.events.end(),
        [](const FlightEventRecord& lhs, const FlightEventRecord& rhs) {
          return lhs.steady_nanos < rhs.steady_nanos;
        });
  }
  return out;
}

FlightDump FlightRecorder::dump() const { return dump_impl(false); }

FlightDump FlightRecorder::deterministic_dump() const {
  return dump_impl(true);
}

// ---------------------------------------------------------------- codec ---

std::vector<std::uint8_t> encode_flight_dump(const FlightDump& dump) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + dump.events.size() * 38);
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, kDumpVersion);
  out.push_back(dump.deterministic ? 1 : 0);
  put_u64(out, dump.dropped);
  put_u64(out, dump.strings.size());
  for (const auto& [hash, name] : dump.strings) {
    put_u64(out, hash);
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
  }
  put_u64(out, dump.events.size());
  for (const auto& event : dump.events) {
    put_u16(out, static_cast<std::uint16_t>(event.kind));
    put_u32(out, event.thread);
    put_u32(out, event.detail);
    put_u64(out, event.tick);
    put_u64(out, event.steady_nanos);
    put_u64(out, event.a);
    put_u64(out, event.b);
  }
  return out;
}

common::Expected<FlightDump> decode_flight_dump(const std::uint8_t* data,
                                                std::size_t size) {
  Reader in{data, size};
  char magic[4];
  if (!in.take(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return common::Error{"flight.magic", "not a flight dump (bad magic)"};
  }
  std::uint32_t version = 0;
  if (!in.u32(version)) {
    return common::Error{"flight.truncated", "dump truncated in header"};
  }
  if (version != kDumpVersion) {
    return common::Error{"flight.version",
                         "unsupported flight dump version " +
                             std::to_string(version)};
  }
  FlightDump dump;
  std::uint8_t deterministic = 0;
  std::uint64_t string_count = 0;
  if (!in.take(&deterministic, 1) || !in.u64(dump.dropped) ||
      !in.u64(string_count)) {
    return common::Error{"flight.truncated", "dump truncated in header"};
  }
  dump.deterministic = deterministic != 0;
  for (std::uint64_t i = 0; i < string_count; ++i) {
    std::uint64_t hash = 0;
    std::uint32_t len = 0;
    if (!in.u64(hash) || !in.u32(len) || in.size - in.pos < len) {
      return common::Error{"flight.truncated",
                           "dump truncated in string table"};
    }
    dump.strings.emplace(
        hash, std::string(reinterpret_cast<const char*>(data + in.pos), len));
    in.pos += len;
  }
  std::uint64_t event_count = 0;
  if (!in.u64(event_count)) {
    return common::Error{"flight.truncated", "dump truncated before events"};
  }
  dump.events.reserve(
      std::min<std::uint64_t>(event_count, (size - in.pos) / 38));
  for (std::uint64_t i = 0; i < event_count; ++i) {
    FlightEventRecord event;
    std::uint16_t kind = 0;
    if (!in.u16(kind) || !in.u32(event.thread) || !in.u32(event.detail) ||
        !in.u64(event.tick) || !in.u64(event.steady_nanos) ||
        !in.u64(event.a) || !in.u64(event.b)) {
      return common::Error{"flight.truncated", "dump truncated in events"};
    }
    event.kind = static_cast<FlightEventKind>(kind);
    dump.events.push_back(event);
  }
  return dump;
}

common::Expected<FlightDump> decode_flight_dump(
    const std::vector<std::uint8_t>& bytes) {
  return decode_flight_dump(bytes.data(), bytes.size());
}

// ----------------------------------------------------------------- JSON ---

std::string flight_dump_to_json(const FlightDump& dump) {
  std::string out;
  out.reserve(128 + dump.events.size() * 96);
  out += "{\n  \"version\": ";
  out += std::to_string(kDumpVersion);
  out += ",\n  \"deterministic\": ";
  out += dump.deterministic ? "true" : "false";
  out += ",\n  \"dropped\": ";
  out += std::to_string(dump.dropped);
  out += ",\n  \"strings\": {";
  bool first = true;
  for (const auto& [hash, name] : dump.strings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += std::to_string(hash);
    out += "\": \"";
    json_escape_into(out, name);
    out += '"';
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"events\": [";
  first = true;
  for (const auto& event : dump.events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kind\": \"";
    out += flight_event_kind_name(event.kind);
    out += "\", \"thread\": ";
    out += std::to_string(event.thread);
    out += ", \"tick\": ";
    out += std::to_string(event.tick);
    out += ", \"steady_nanos\": ";
    out += std::to_string(event.steady_nanos);
    out += ", \"detail\": ";
    out += std::to_string(event.detail);
    out += ", \"a\": ";
    out += std::to_string(event.a);
    out += ", \"b\": ";
    out += std::to_string(event.b);
    // Resolve interned hashes inline so dumps read without a decoder ring.
    const auto named = dump.strings.find(event.a);
    if (named != dump.strings.end()) {
      out += ", \"name\": \"";
      json_escape_into(out, named->second);
      out += '"';
    }
    out += '}';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace crowdmap::obs

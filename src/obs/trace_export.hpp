// Chrome/Perfetto trace export: renders a Trace span tree (and optionally a
// flight-recorder dump) as the `trace_event` JSON that chrome://tracing and
// ui.perfetto.dev open directly. Complete spans become "X" duration events;
// flight events become "i" instants on their recording thread's track.
// Wired to `crowdmap_cli --trace-out` and the eval harness
// (docs/OBSERVABILITY.md has a walkthrough).
#pragma once

#include <string>

#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace crowdmap::obs {

/// Serializes the span tree rooted at `root` (plus the flight dump's events,
/// when given) into trace_event JSON. Timestamps are microseconds: spans
/// from the trace epoch, flight events from the recorder epoch — the two
/// clocks start within the same pipeline construction, so the tracks line
/// up closely enough to read. Output is deterministic for fixed inputs.
[[nodiscard]] std::string to_trace_event_json(
    const SpanRecord& root, const FlightDump* flight = nullptr);

}  // namespace crowdmap::obs

#include "obs/trace.hpp"

#include <iomanip>
#include <sstream>

#include "obs/flight.hpp"

namespace crowdmap::obs {

// ----------------------------------------------------------- SpanRecord ---

double SpanRecord::exclusive_seconds() const {
  double children_total = 0.0;
  for (const auto& child : children) children_total += child.duration_seconds;
  return duration_seconds - children_total;
}

const std::string* SpanRecord::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return &v;
  }
  return nullptr;
}

const SpanRecord* SpanRecord::find(std::string_view target) const {
  if (name == target) return this;
  for (const auto& child : children) {
    if (const SpanRecord* hit = child.find(target)) return hit;
  }
  return nullptr;
}

double SpanRecord::total_seconds(std::string_view target) const {
  double total = (name == target) ? duration_seconds : 0.0;
  for (const auto& child : children) total += child.total_seconds(target);
  return total;
}

namespace {

void render(const SpanRecord& span, int depth, std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << span.name
      << "  " << std::fixed << std::setprecision(3)
      << span.duration_seconds * 1e3 << " ms";
  if (!span.children.empty()) {
    out << " (self " << span.exclusive_seconds() * 1e3 << " ms)";
  }
  for (const auto& [key, value] : span.attributes) {
    out << "  " << key << "=" << value;
  }
  out << '\n';
  for (const auto& child : span.children) render(child, depth + 1, out);
}

}  // namespace

std::string SpanRecord::to_string() const {
  std::ostringstream out;
  render(*this, 0, out);
  return out.str();
}

// ------------------------------------------------------------ ScopedSpan ---

ScopedSpan::ScopedSpan(Trace& trace, std::string name) : trace_(&trace) {
  trace_->begin_span(std::move(name));
}

ScopedSpan::~ScopedSpan() {
  if (trace_) trace_->end_span();
}

double ScopedSpan::end() {
  if (!trace_) return 0.0;
  Trace* trace = trace_;
  trace_ = nullptr;
  return trace->end_span();
}

// ----------------------------------------------------------------- Trace ---

Trace::Trace(std::string name) {
  root_.name = std::move(name);
  root_.start = Clock::now();
  open_ = &root_;
}

void Trace::begin_span(std::string name) {
  common::MutexLock lock(mutex_);
  auto node = std::make_unique<Node>();
  node->name = std::move(name);
  node->start = Clock::now();
  node->parent = open_;
  Node* raw = node.get();
  open_->children.push_back(std::move(node));
  open_ = raw;
  if (flight_ != nullptr) {
    flight_->record_named(FlightEventKind::kSpanBegin, 0, raw->name);
  }
}

double Trace::end_span() {
  common::MutexLock lock(mutex_);
  if (open_ == &root_) return 0.0;  // unbalanced end: ignore
  open_->end = Clock::now();
  open_->closed = true;
  const double seconds =
      std::chrono::duration<double>(open_->end - open_->start).count();
  if (flight_ != nullptr) {
    flight_->record_named(FlightEventKind::kSpanEnd, 0, open_->name,
                          static_cast<std::uint64_t>(seconds * 1e9));
  }
  open_ = open_->parent;
  return seconds;
}

void Trace::annotate(std::string_view key, std::string value) {
  common::MutexLock lock(mutex_);
  for (auto& [k, v] : open_->attributes) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  open_->attributes.emplace_back(std::string(key), std::move(value));
}

SpanRecord Trace::snapshot_node(const Node& node, Clock::time_point now) const {
  SpanRecord record;
  record.name = node.name;
  record.start_seconds =
      std::chrono::duration<double>(node.start - root_.start).count();
  const Clock::time_point end = node.closed ? node.end : now;
  record.duration_seconds =
      std::chrono::duration<double>(end - node.start).count();
  record.attributes = node.attributes;
  record.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    record.children.push_back(snapshot_node(*child, now));
  }
  return record;
}

void Trace::set_flight_recorder(FlightRecorder* flight) {
  common::MutexLock lock(mutex_);
  flight_ = flight;
}

SpanRecord Trace::snapshot() const {
  common::MutexLock lock(mutex_);
  return snapshot_node(root_, Clock::now());
}

}  // namespace crowdmap::obs

// Minimal expected-style result type (std::expected is C++23; we target C++20).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace crowdmap::common {

/// Error payload: a machine-checkable code plus a human-readable message.
struct Error {
  std::string code;
  std::string message;
};

/// Value-or-error result. Throws std::logic_error on wrong-side access so
/// misuse fails loudly in tests rather than silently corrupting state.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Expected::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Expected::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Expected::take on error: " + error().message);
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Expected::error on value");
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Convenience factory mirroring std::unexpected.
[[nodiscard]] inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace crowdmap::common

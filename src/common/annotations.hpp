// Clang thread-safety annotations (-Wthread-safety) for the concurrency
// layer, plus the annotated Mutex / MutexLock / ConditionVariable wrappers
// the analysis needs (libstdc++'s std::mutex carries no capability
// attributes, so guarding a field with it is invisible to the checker).
//
// Every macro expands to nothing on compilers without the attributes (GCC),
// so annotated code builds everywhere; under Clang with
// -DCROWDMAP_THREAD_SAFETY=ON the whole locking discipline — which lock
// guards which field, which functions require or exclude which locks — is
// machine-checked at compile time. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CM_THREAD_ANNOTATION
#define CM_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define CM_CAPABILITY(x) CM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor (MutexLock below).
#define CM_SCOPED_CAPABILITY CM_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read or written while holding the given capability.
#define CM_GUARDED_BY(x) CM_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose pointee is guarded by the given capability.
#define CM_PT_GUARDED_BY(x) CM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Lock-order declarations: acquiring this capability while holding one of
/// the listed ones (or vice versa) is a compile-time error.
#define CM_ACQUIRED_BEFORE(...) CM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CM_ACQUIRED_AFTER(...) CM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function requires the capability to already be held by the caller.
#define CM_REQUIRES(...) CM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires / releases the capability itself.
#define CM_ACQUIRE(...) CM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CM_RELEASE(...) CM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CM_TRY_ACQUIRE(...) CM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function takes it itself;
/// catches self-deadlock through re-entrant public APIs).
#define CM_EXCLUDES(...) CM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define CM_RETURN_CAPABILITY(x) CM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Prefer fixing the
/// locking discipline; document every use.
#define CM_NO_THREAD_SAFETY_ANALYSIS CM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace crowdmap::common {

class ConditionVariable;

/// std::mutex with the capability attribute the analysis keys on. Drop-in
/// for the project's internal locking; BasicLockable, so it also works with
/// std::condition_variable_any.
class CM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CM_ACQUIRE() { mutex_.lock(); }
  void unlock() CM_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() CM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over Mutex (the std::lock_guard of the annotated world).
/// Declares the acquisition to the analysis for the enclosing scope.
class CM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() CM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() declares that the lock must
/// be held on entry (and is held again on return); waiting without the lock
/// is a compile-time error under the analysis instead of a lost-wakeup bug.
/// Callers use explicit `while (!predicate) cv.wait(mutex);` loops — the
/// predicate then runs in the caller's scope, where the analysis can see the
/// capability is held (predicate lambdas would be analyzed detached from it).
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  void wait(Mutex& mutex) CM_REQUIRES(mutex) { cv_.wait(mutex); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace crowdmap::common

// Bounded, sharded, thread-safe memoization cache: 64-bit key -> double.
//
// Built for the S2 SURF match-score memo of the matching stack, where the
// same key-frame pair is scored again and again across aggregation rounds and
// incremental re-runs. The value space is a plain double so the cache stays
// generic (any expensive pure function of a hashable identity fits).
//
// Concurrency model: the key space is split over `shards` independently
// locked maps, so parallel matchers rarely contend. Each shard is bounded to
// capacity/shards entries with FIFO eviction — the cache can only ever trade
// recomputation for memory, never change a result, so eviction is safe for
// bit-deterministic pipelines.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.hpp"

namespace crowdmap::common {

class BoundedMemoCache {
 public:
  /// `capacity` is the total entry bound across all shards (rounded up to at
  /// least one entry per shard). `shards` trades memory locality for lower
  /// lock contention; it is clamped to [1, capacity].
  explicit BoundedMemoCache(std::size_t capacity, std::size_t shards = 16)
      : capacity_(std::max<std::size_t>(capacity, 1)) {
    shards = std::clamp<std::size_t>(shards, 1, capacity_);
    per_shard_capacity_ = (capacity_ + shards - 1) / shards;
    shards_ = std::vector<Shard>(shards);
  }

  BoundedMemoCache(const BoundedMemoCache&) = delete;
  BoundedMemoCache& operator=(const BoundedMemoCache&) = delete;

  /// Cached value for `key`, or nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<double> lookup(std::uint64_t key) {
    Shard& shard = shard_for(key);
    MutexLock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Stores `value` under `key`, evicting the shard's oldest entry at
  /// capacity. A concurrent insert of the same key keeps the first value
  /// (memoized functions are pure, so both writers carry the same number).
  void insert(std::uint64_t key, double value) {
    Shard& shard = shard_for(key);
    MutexLock lock(shard.mutex);
    if (!shard.map.emplace(key, value).second) return;
    shard.order.push_back(key);
    if (shard.order.size() > per_shard_capacity_) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
    }
  }

  /// lookup() then, on a miss, compute() + insert(). The computation runs
  /// outside the shard lock, so two threads may race to compute the same key;
  /// both get the (identical) value and the first insert wins.
  template <typename F>
  [[nodiscard]] double get_or_compute(std::uint64_t key, F&& compute) {
    if (const auto cached = lookup(key)) return *cached;
    const double value = compute();
    insert(key, value);
    return value;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Current entry count (sums the shards; approximate under concurrency).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  void clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      shard.map.clear();
      shard.order.clear();
    }
  }

 private:
  struct Shard {
    mutable Mutex mutex;
    // Entries are only ever looked up by key, never iterated in an
    // order-sensitive way, so hash-ordering nondeterminism cannot escape.
    // crowdmap-lint: allow(unordered-container)
    std::unordered_map<std::uint64_t, double> map CM_GUARDED_BY(mutex);
    std::deque<std::uint64_t> order CM_GUARDED_BY(mutex);  // FIFO eviction
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept {
    // High-quality mixing is the caller's job (keys come from hash_combine);
    // the low bits select the shard.
    return shards_[key % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace crowdmap::common

// Deterministic random number generation for reproducible simulation.
//
// Every stochastic component in CrowdMap (sensor noise, user behaviour,
// wall textures, hypothesis sampling) draws from an explicitly seeded Rng so
// that experiments are bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <limits>

namespace crowdmap::common {

/// xoshiro256++ PRNG seeded through SplitMix64.
///
/// Chosen over std::mt19937 because its output sequence is specified by the
/// algorithm (libstdc++ distributions are not portable across releases) and
/// it is materially faster for the simulation workloads.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] int uniform_int(int lo, int hi) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with explicit mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Derives an independent child stream; used to give each simulated user /
  /// wall / task its own stream so reordering one does not perturb others.
  [[nodiscard]] Rng fork() noexcept;

  /// Deterministic stream derived from this Rng's seed and a stable tag.
  /// Unlike fork(), does not advance this Rng's state.
  [[nodiscard]] Rng stream(std::uint64_t tag) const noexcept;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 step; exposed for hashing-style use (texture fields).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless hash of a 64-bit key to a 64-bit value (one SplitMix64 round).
[[nodiscard]] std::uint64_t hash_u64(std::uint64_t key) noexcept;

/// Combines two 64-bit values into one hash (for keyed texture lookups).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// Maps a 64-bit hash to a double in [0, 1).
[[nodiscard]] inline double hash_to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace crowdmap::common

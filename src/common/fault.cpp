#include "common/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace crowdmap::common {

namespace {

constexpr std::string_view kPointNames[] = {
#define CROWDMAP_FAULT_POINT_NAME(ident, name) name,
    CROWDMAP_FAULT_POINT_LIST(CROWDMAP_FAULT_POINT_NAME)
#undef CROWDMAP_FAULT_POINT_NAME
};

constexpr std::size_t kPointCount =
    sizeof(kPointNames) / sizeof(kPointNames[0]);

std::string catalog_listing() {
  std::ostringstream out;
  for (std::size_t i = 0; i < kPointCount; ++i) {
    if (i != 0) out << ", ";
    out << kPointNames[i];
  }
  return out.str();
}

/// Parses a double in [0, 1]; Expected-based so spec errors surface as
/// diagnostics rather than exceptions.
Expected<double> parse_probability(std::string_view text) {
  const std::string buffer(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end == buffer.c_str() || *end != '\0') {
    return make_error("fault.spec",
                      "invalid probability '" + buffer + "'");
  }
  if (value < 0.0 || value > 1.0) {
    return make_error("fault.spec", "probability '" + buffer +
                                        "' outside [0, 1]");
  }
  return value;
}

Expected<std::uint64_t> parse_u64(std::string_view text,
                                  std::string_view what) {
  const std::string buffer(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (errno != 0 || end == buffer.c_str() || *end != '\0') {
    return make_error("fault.spec", "invalid " + std::string(what) + " '" +
                                        buffer + "'");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

std::size_t fault_point_count() noexcept { return kPointCount; }

const std::vector<FaultPoint>& all_fault_points() noexcept {
  static const std::vector<FaultPoint> points = [] {
    std::vector<FaultPoint> out;
    out.reserve(kPointCount);
    for (std::size_t i = 0; i < kPointCount; ++i) {
      out.push_back(static_cast<FaultPoint>(i));
    }
    return out;
  }();
  return points;
}

std::string_view fault_point_name(FaultPoint point) noexcept {
  const auto index = static_cast<std::size_t>(point);
  return index < kPointCount ? kPointNames[index]
                             : std::string_view("<invalid>");
}

Expected<FaultPoint> fault_point_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kPointCount; ++i) {
    if (kPointNames[i] == name) return static_cast<FaultPoint>(i);
  }
  return make_error("fault.unknown_point",
                    "unknown fault point '" + std::string(name) +
                        "'; known points: " + catalog_listing());
}

Expected<std::vector<FaultSetting>> parse_fault_settings(
    std::string_view spec) {
  std::vector<FaultSetting> settings;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      if (spec.empty()) break;  // empty spec => no settings
      return make_error("fault.spec", "empty entry in fault spec '" +
                                          std::string(spec) + "'");
    }

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return make_error("fault.spec", "expected point=probability in '" +
                                          std::string(entry) + "'");
    }
    auto point = fault_point_from_name(entry.substr(0, eq));
    if (!point) return point.error();

    std::string_view value = entry.substr(eq + 1);
    FaultSetting setting;
    setting.point = point.value();
    const std::size_t at = value.find('@');
    if (at != std::string_view::npos) {
      auto budget = parse_u64(value.substr(at + 1), "budget");
      if (!budget) return budget.error();
      setting.budget = budget.value();
      value = value.substr(0, at);
    }
    auto probability = parse_probability(value);
    if (!probability) return probability.error();
    setting.probability = probability.value();
    settings.push_back(setting);
    if (end == spec.size()) break;
  }
  return settings;
}

Expected<FaultPlan> parse_fault_plan(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    return make_error("fault.spec",
                      "expected seed:point=prob[,...] but got '" +
                          std::string(spec) + "'");
  }
  auto seed = parse_u64(spec.substr(0, colon), "seed");
  if (!seed) return seed.error();
  auto settings = parse_fault_settings(spec.substr(colon + 1));
  if (!settings) return settings.error();

  FaultPlan plan;
  plan.seed = seed.value();
  plan.settings = std::move(settings).take();
  return plan;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::ostringstream out;
  out << plan.seed << ':';
  for (std::size_t i = 0; i < plan.settings.size(); ++i) {
    const auto& setting = plan.settings[i];
    if (i != 0) out << ',';
    out << fault_point_name(setting.point) << '=' << setting.probability;
    if (setting.budget != FaultSetting::kNoBudget) {
      out << '@' << setting.budget;
    }
  }
  return out.str();
}

std::uint64_t stable_string_hash(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool env_fault_seed(std::uint64_t& seed_out) noexcept {
  const char* raw = std::getenv("CROWDMAP_FAULT_SEED");
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0') return false;
  seed_out = static_cast<std::uint64_t>(value);
  return true;
}

FaultInjector::FaultInjector(const FaultPlan& plan) noexcept { arm(plan); }

void FaultInjector::copy_from(const FaultInjector& other) noexcept {
  armed_ = other.armed_;
  seed_ = other.seed_;
  for (std::size_t i = 0; i < kMaxPoints; ++i) {
    points_[i].probability = other.points_[i].probability;
    points_[i].budget_left.store(
        other.points_[i].budget_left.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    points_[i].fires.store(
        other.points_[i].fires.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

void FaultInjector::arm(const FaultPlan& plan) noexcept {
  static_assert(kPointCount <= kMaxPoints,
                "grow FaultInjector::kMaxPoints to fit the catalog");
  for (auto& state : points_) {
    state.probability = 0.0;
    state.budget_left.store(0, std::memory_order_relaxed);
    state.fires.store(0, std::memory_order_relaxed);
  }
  seed_ = plan.seed;
  armed_ = false;
  for (const auto& setting : plan.settings) {
    const auto index = static_cast<std::size_t>(setting.point);
    if (index >= kPointCount || setting.probability <= 0.0) continue;
    auto& state = points_[index];
    state.probability = setting.probability;
    state.budget_left.store(setting.budget, std::memory_order_relaxed);
    armed_ = true;
  }
}

bool FaultInjector::fire_slow(FaultPoint point, std::uint64_t key) noexcept {
  const auto index = static_cast<std::size_t>(point);
  if (index >= kPointCount) return false;
  auto& state = points_[index];
  if (state.probability <= 0.0) return false;

  // Stateless decision: (seed, point, key) -> [0, 1). Interrogation order
  // and thread count cannot change the outcome.
  const std::uint64_t h = hash_combine(
      hash_combine(seed_, hash_u64(index + 0x66617565ULL)), key);
  if (hash_to_unit(h) >= state.probability) return false;

  // Budget accounting. With a finite budget under concurrent interrogation
  // the *set* of fired keys can depend on arrival order, so deterministic
  // chaos plans use budgets only on serially-interrogated points (ingest) or
  // leave them unlimited; see docs/ROBUSTNESS.md.
  std::uint64_t left = state.budget_left.load(std::memory_order_relaxed);
  while (left != FaultSetting::kNoBudget) {
    if (left == 0) return false;
    if (state.budget_left.compare_exchange_weak(left, left - 1,
                                                std::memory_order_relaxed)) {
      break;
    }
  }
  state.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::fires(FaultPoint point) const noexcept {
  const auto index = static_cast<std::size_t>(point);
  if (index >= kPointCount) return 0;
  return points_[index].fires.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_fires() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kPointCount; ++i) {
    total += points_[i].fires.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace crowdmap::common

#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/annotations.hpp"

namespace crowdmap::common {

namespace {

LogLevel level_from_env() noexcept {
  const char* value = std::getenv("CROWDMAP_LOG_LEVEL");
  return parse_log_level(value ? value : "", LogLevel::kWarn);
}

std::atomic<LogLevel> g_level{level_from_env()};
Mutex g_write_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Small per-thread id: threads number themselves on first log.
[[nodiscard]] unsigned thread_number() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

/// ISO-8601 UTC with milliseconds, e.g. "2026-08-05T12:34:56.789Z".
/// Wall-clock time is fine here: log timestamps never feed scores or output.
void format_timestamp(char* buf, std::size_t size) noexcept {
  const auto now = std::chrono::system_clock::now();    // crowdmap-lint: allow(wall-clock)
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);  // crowdmap-lint: allow(wall-clock)
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(std::string_view name, LogLevel fallback) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  char timestamp[96];
  format_timestamp(timestamp, sizeof(timestamp));
  MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "%s [%s] (t%02u) %.*s: %.*s\n", timestamp,
               level_name(level), thread_number(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace crowdmap::common

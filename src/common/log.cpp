#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace crowdmap::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace crowdmap::common

// Small math helpers shared across modules (angles, interpolation, clamping).
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

namespace crowdmap::common {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Degrees to radians.
[[nodiscard]] constexpr double deg2rad(double deg) noexcept {
  return deg * kPi / 180.0;
}

/// Radians to degrees.
[[nodiscard]] constexpr double rad2deg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

/// Wraps an angle to (-pi, pi].
[[nodiscard]] inline double wrap_angle(double a) noexcept {
  a = std::fmod(a + kPi, kTwoPi);
  if (a < 0) a += kTwoPi;
  return a - kPi;
}

/// Wraps an angle to [0, 2*pi).
[[nodiscard]] inline double wrap_angle_2pi(double a) noexcept {
  a = std::fmod(a, kTwoPi);
  if (a < 0) a += kTwoPi;
  return a;
}

/// Signed smallest difference a-b wrapped to (-pi, pi].
[[nodiscard]] inline double angle_diff(double a, double b) noexcept {
  return wrap_angle(a - b);
}

/// Linear interpolation.
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// True if |a-b| <= tol.
[[nodiscard]] constexpr bool near(double a, double b, double tol = 1e-9) noexcept {
  return std::abs(a - b) <= tol;
}

/// Square.
[[nodiscard]] constexpr double sq(double x) noexcept { return x * x; }

/// Relative error |value - truth| / |truth|; returns |value| if truth == 0.
[[nodiscard]] inline double relative_error(double value, double truth) noexcept {
  if (truth == 0.0) return std::abs(value);
  return std::abs(value - truth) / std::abs(truth);
}

}  // namespace crowdmap::common

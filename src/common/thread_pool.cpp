#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace crowdmap::common {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(workers, 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::set_queue_observer(QueueObserver observer) {
  MutexLock lock(mutex_);
  queue_observer_ = std::move(observer);
}

void ThreadPool::set_task_observer(TaskObserver observer) {
  MutexLock lock(mutex_);
  task_observer_ = std::move(observer);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth = 0;
    QueueObserver queue_observer;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      depth = queue_.size();
      queue_observer = queue_observer_;
    }
    // Observers run outside the lock: a slow exporter must not serialize the
    // workers, and an observer may call back into the pool (e.g. pending()).
    if (queue_observer) queue_observer(depth);
    const auto start = std::chrono::steady_clock::now();
    task();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    // The observer fires before the task stops counting as active, so
    // wait_idle() cannot return while an observer call is still in flight.
    TaskObserver task_observer;
    {
      MutexLock lock(mutex_);
      task_observer = task_observer_;
    }
    if (task_observer) task_observer(seconds);
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace crowdmap::common

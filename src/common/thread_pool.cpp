#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace crowdmap::common {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(workers, 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::set_queue_observer(QueueObserver observer) {
  std::lock_guard lock(mutex_);
  queue_observer_ = std::move(observer);
}

void ThreadPool::set_task_observer(TaskObserver observer) {
  std::lock_guard lock(mutex_);
  task_observer_ = std::move(observer);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth = 0;
    QueueObserver queue_observer;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      depth = queue_.size();
      queue_observer = queue_observer_;
    }
    // Observers run outside the lock: a slow exporter must not serialize the
    // workers, and an observer may call back into the pool (e.g. pending()).
    if (queue_observer) queue_observer(depth);
    const auto start = std::chrono::steady_clock::now();
    task();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    TaskObserver task_observer;
    {
      std::lock_guard lock(mutex_);
      --active_;
      task_observer = task_observer_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
    if (task_observer) task_observer(seconds);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace crowdmap::common

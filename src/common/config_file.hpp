// Minimal key = value configuration files ('#' comments, blank lines
// ignored) with typed, validated accessors — used by the CLI so pipeline
// thresholds can be tuned without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/expected.hpp"

namespace crowdmap::common {

class ConfigFile {
 public:
  /// Parses text; throws std::runtime_error on a malformed line.
  [[nodiscard]] static ConfigFile parse(const std::string& text);
  /// Loads and parses a file; throws std::runtime_error on IO failure.
  [[nodiscard]] static ConfigFile load(const std::string& path);

  /// Non-throwing variants for callers that report instead of crash (the
  /// CLI). Error codes: "config.parse" (malformed line), "config.io"
  /// (unreadable file).
  [[nodiscard]] static Expected<ConfigFile> try_parse(const std::string& text);
  [[nodiscard]] static Expected<ConfigFile> try_load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters: return `fallback` when absent, throw std::runtime_error
  /// when present but unparsable.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace crowdmap::common

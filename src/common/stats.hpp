// Descriptive statistics and empirical CDFs used by the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace crowdmap::common {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes summary statistics; returns a zero Summary for an empty sample.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> samples);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> samples);

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> samples, double p);

/// Empirical cumulative distribution function over a fixed sample.
///
/// Mirrors how the paper reports Fig. 7(c) and Fig. 8: sorted samples with
/// F(x) = fraction of samples <= x.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x): fraction of samples <= x.
  [[nodiscard]] double at(double x) const noexcept;

  /// Inverse CDF: smallest sample s with F(s) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Renders "x f(x)" rows at n evenly spaced quantiles — the series a plot
  /// of the corresponding paper figure would show.
  [[nodiscard]] std::string to_table(std::size_t n_rows = 11) const;

 private:
  std::vector<double> sorted_;
};

/// Histogram with fixed-width bins over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace crowdmap::common

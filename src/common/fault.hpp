// Deterministic fault injection for the cloud backend (chaos testing the
// paper's §IV.2 front door). Every fault site in the tree is a *registered*
// point from the catalog below; whether a given interrogation fires is a
// pure function of (plan seed, point, caller-supplied stable key), computed
// through the SplitMix64 hashing machinery of common::Rng — no wall clock,
// no raw generators, no interrogation-order state. The same plan therefore
// produces the same failures at any thread count, and any chaos failure is
// reproducible from its seed alone (docs/ROBUSTNESS.md).
//
// The disarmed path is a single inline bool test so production builds pay
// nothing for the instrumentation (measured in bench/micro_service.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"

namespace crowdmap::common {

/// Central registry of every named fault point. New sites are added HERE and
/// nowhere else; call sites reference the generated faults::k* constants, so
/// a typo in a point name is a compile error rather than a silently-dead
/// fault (enforced by the crowdmap_lint `fault-point-name` rule).
#define CROWDMAP_FAULT_POINT_LIST(X)                                      \
  X(kIngestChunkDrop, "ingest.chunk_drop")                                \
  X(kIngestChunkDuplicate, "ingest.chunk_duplicate")                      \
  X(kIngestChunkReorder, "ingest.chunk_reorder")                          \
  X(kIngestChunkCorrupt, "ingest.chunk_corrupt")                          \
  X(kDecodeFail, "decode.fail")                                           \
  X(kExtractSensorDropout, "extract.sensor_dropout")                      \
  X(kStageAggregateFail, "stage.aggregate_fail")                          \
  X(kStageSkeletonFail, "stage.skeleton_fail")                            \
  X(kStagePanoramaFail, "stage.panorama_fail")                            \
  X(kStageLayoutFail, "stage.layout_fail")                                \
  X(kStageArrangeFail, "stage.arrange_fail")                              \
  X(kArtifactCacheEvict, "cache.artifact_evict")                          \
  X(kFsWriteTorn, "fs.write_torn")                                        \
  X(kFsFsyncFail, "fs.fsync_fail")                                        \
  X(kFsCrashAt, "fs.crash_at")                                            \
  X(kFsReadCorrupt, "fs.read_corrupt")                                    \
  X(kClusterNodeCrash, "cluster.node_crash")                              \
  X(kClusterPartition, "cluster.partition")                               \
  X(kClusterReplicationDelay, "cluster.replication_delay")                \
  X(kClusterReplicationDuplicate, "cluster.replication_duplicate")

enum class FaultPoint : std::size_t {
#define CROWDMAP_FAULT_POINT_ENUM(ident, name) ident,
  CROWDMAP_FAULT_POINT_LIST(CROWDMAP_FAULT_POINT_ENUM)
#undef CROWDMAP_FAULT_POINT_ENUM
};

namespace faults {
#define CROWDMAP_FAULT_POINT_CONST(ident, name) \
  inline constexpr FaultPoint ident = FaultPoint::ident;
CROWDMAP_FAULT_POINT_LIST(CROWDMAP_FAULT_POINT_CONST)
#undef CROWDMAP_FAULT_POINT_CONST
}  // namespace faults

/// Number of registered fault points.
[[nodiscard]] std::size_t fault_point_count() noexcept;

/// Every registered point, in catalog order (metric flushes, doc listings).
[[nodiscard]] const std::vector<FaultPoint>& all_fault_points() noexcept;

/// Catalog name of a point ("ingest.chunk_drop").
[[nodiscard]] std::string_view fault_point_name(FaultPoint point) noexcept;

/// Name -> point lookup for spec/config parsing. Error code
/// "fault.unknown_point" names the offending string and lists the catalog.
[[nodiscard]] Expected<FaultPoint> fault_point_from_name(std::string_view name);

/// One armed point of a plan.
struct FaultSetting {
  FaultPoint point = faults::kDecodeFail;
  double probability = 0.0;           // chance per interrogation, in [0, 1]
  std::uint64_t budget = kNoBudget;   // max fires; kNoBudget = unlimited
  static constexpr std::uint64_t kNoBudget = ~std::uint64_t{0};
};

/// Plain-data fault plan: copyable configuration (PipelineConfig carries
/// one), realized into a FaultInjector by each component that honors it.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSetting> settings;

  [[nodiscard]] bool armed() const noexcept { return !settings.empty(); }
};

/// Parses the settings half of a spec: "point=prob[@budget][,point=...]",
/// e.g. "decode.fail=0.2,stage.panorama_fail=0.1@3". Error codes
/// "fault.spec" / "fault.unknown_point".
[[nodiscard]] Expected<std::vector<FaultSetting>> parse_fault_settings(
    std::string_view spec);

/// Parses a full CLI-style plan "seed:point=prob[@budget][,...]",
/// e.g. "42:decode.fail=0.2,ingest.chunk_drop=0.05".
[[nodiscard]] Expected<FaultPlan> parse_fault_plan(std::string_view spec);

/// Canonical textual form of a plan (round-trips through parse_fault_plan).
[[nodiscard]] std::string format_fault_plan(const FaultPlan& plan);

/// Stable 64-bit hash of a string (FNV-1a): keys fault decisions by string
/// identities (upload/document ids) identically across platforms and runs.
[[nodiscard]] std::uint64_t stable_string_hash(std::string_view text) noexcept;

/// Chaos seed from the CROWDMAP_FAULT_SEED environment variable, if set to a
/// valid non-negative integer (the CI chaos matrix sets it; tests/test_chaos
/// reads it so any CI failure reproduces locally with the same value).
[[nodiscard]] bool env_fault_seed(std::uint64_t& seed_out) noexcept;

/// Monotonic logical clock: time for retransmit timeouts and session expiry
/// without wall-clock nondeterminism. Ticks advance on events (one tick per
/// delivered chunk in the ingest service), so a run's timeline is a pure
/// function of its inputs.
class LogicalClock {
 public:
  [[nodiscard]] std::uint64_t now() const noexcept {
    return now_.load(std::memory_order_relaxed);
  }
  /// Advances and returns the new time.
  std::uint64_t advance(std::uint64_t ticks = 1) noexcept {
    return now_.fetch_add(ticks, std::memory_order_relaxed) + ticks;
  }

 private:
  std::atomic<std::uint64_t> now_{0};
};

/// Realized fault plan. Interrogations are stateless hash decisions, so the
/// injector may be shared across threads freely; the only mutable state is
/// the per-point fire/budget accounting (atomics).
class FaultInjector {
 public:
  /// Disarmed injector: every interrogation is false.
  FaultInjector() noexcept = default;
  explicit FaultInjector(const FaultPlan& plan) noexcept;

  // Copyable despite the atomic accounting (relaxed snapshot) so the owning
  // components (pipelines, services) stay movable. Not safe against a
  // concurrently interrogated source.
  FaultInjector(const FaultInjector& other) noexcept { copy_from(other); }
  FaultInjector& operator=(const FaultInjector& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  /// Re-arms from a plan (replaces any previous configuration and resets
  /// fire counts). Not thread-safe against concurrent interrogation.
  void arm(const FaultPlan& plan) noexcept;

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Whether `point` carries a non-zero probability in the armed plan. Cache
  /// seams use this to bypass artifact reuse for stages whose per-item fault
  /// interrogations must still happen (a cached hit would skip them and
  /// change which items a budgeted plan fires on).
  [[nodiscard]] bool point_armed(FaultPoint point) const noexcept {
    if (!armed_) return false;
    return points_[static_cast<std::size_t>(point)].probability > 0.0;
  }

  /// Whether the fault at `point` fires for the work item identified by
  /// `key`. The key must be a stable identity of the item (chunk index,
  /// video id, candidate index) — NOT an interrogation order — so decisions
  /// are identical at any thread count. Hot path: disarmed returns false
  /// after one predictable branch.
  [[nodiscard]] bool should_fire(FaultPoint point, std::uint64_t key) noexcept {
    if (!armed_) return false;
    return fire_slow(point, key);
  }

  /// Fires recorded at `point` so far.
  [[nodiscard]] std::uint64_t fires(FaultPoint point) const noexcept;
  [[nodiscard]] std::uint64_t total_fires() const noexcept;

 private:
  // Sized by the catalog; see fault.cpp for the static_assert tying the two.
  static constexpr std::size_t kMaxPoints = 32;

  [[nodiscard]] bool fire_slow(FaultPoint point, std::uint64_t key) noexcept;
  void copy_from(const FaultInjector& other) noexcept;

  struct PointState {
    double probability = 0.0;
    std::atomic<std::uint64_t> budget_left{0};
    std::atomic<std::uint64_t> fires{0};
  };

  bool armed_ = false;
  std::uint64_t seed_ = 0;
  std::array<PointState, kMaxPoints> points_;
};

}  // namespace crowdmap::common

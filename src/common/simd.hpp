// Portable SIMD wrapper. Every vectorized hot path in the codebase goes
// through this header instead of raw intrinsics — the `raw-intrinsics` lint
// rule rejects <immintrin.h>/<arm_neon.h> anywhere else.
//
// Design contract:
//
//  * ONE backend is selected at compile time — AVX2, SSE2, NEON (aarch64) or
//    scalar — via -DCROWDMAP_SIMD=AUTO|OFF|SSE2|AVX2|NEON (CMake translates
//    the option into the CROWDMAP_SIMD_* defines honored below; AUTO picks
//    the best backend the target ISA advertises). There is no runtime
//    multi-versioning: capability_report() exists so operators can check a
//    binary against the fleet's CPUs, and set_force_scalar() routes every
//    kernel through the scalar reference inside a running process (one
//    binary, both paths — tests/test_simd.cpp and the roofline bench in
//    bench/micro_vision.cpp rely on that switch).
//
//  * Bit-exact determinism, scalar vs SIMD, on every backend. Reductions pin
//    their floating-point evaluation order to a fixed LOGICAL lane layout
//    that is independent of the physical register width:
//      - f64 reductions over float input run kF64Lanes = 4 logical lanes;
//        lane l accumulates elements l, l+4, l+8, ... in index order; lanes
//        combine as ((l0 + l2) + (l1 + l3)); the n % 4 tail is summed
//        sequentially into a separate accumulator and added last.
//      - elementwise kernels evaluate the same expression tree per element
//        in every backend, using only IEEE-exact operations (+ - * / min max
//        sqrt) — never hardware FMA, rcp or rsqrt approximations. CMake also
//        pins -ffp-contract=off so a scalar `a * b + c` cannot silently
//        contract into an FMA on ISAs that have one.
//    The scalar lane types (F32x8S / F64x4S) are the semantic reference; the
//    intrinsic types implement the identical layout, and the shared kernel
//    templates below are instantiated with either, so both paths execute the
//    same op sequence. tests/test_simd.cpp additionally checks every kernel
//    lane-by-lane against independent plain-loop references.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

// ---------------------------------------------------------------------------
// Backend selection. CMake defines at most one CROWDMAP_SIMD_* request macro;
// with none present (plain compiler invocations, e.g. the lint tool build)
// AUTO applies and the target ISA decides.
//   CROWDMAP_SIMD_BACKEND: 0 = scalar, 1 = SSE2, 2 = AVX2, 3 = NEON
// ---------------------------------------------------------------------------
#if defined(CROWDMAP_SIMD_OFF)
#define CROWDMAP_SIMD_BACKEND 0
#elif defined(CROWDMAP_SIMD_FORCE_AVX2)
#if !defined(__AVX2__)
#error "CROWDMAP_SIMD=AVX2 requires compiling with -mavx2"
#endif
#define CROWDMAP_SIMD_BACKEND 2
#elif defined(CROWDMAP_SIMD_FORCE_SSE2)
#if !defined(__SSE2__) && !defined(_M_X64)
#error "CROWDMAP_SIMD=SSE2 requires an x86 target with SSE2"
#endif
#define CROWDMAP_SIMD_BACKEND 1
#elif defined(CROWDMAP_SIMD_FORCE_NEON)
#if !defined(__aarch64__)
#error "CROWDMAP_SIMD=NEON requires an aarch64 target (f64 NEON lanes)"
#endif
#define CROWDMAP_SIMD_BACKEND 3
#elif defined(__AVX2__)
#define CROWDMAP_SIMD_BACKEND 2
#elif defined(__SSE2__) || defined(_M_X64)
#define CROWDMAP_SIMD_BACKEND 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define CROWDMAP_SIMD_BACKEND 3
#else
#define CROWDMAP_SIMD_BACKEND 0
#endif

#if CROWDMAP_SIMD_BACKEND == 1 || CROWDMAP_SIMD_BACKEND == 2
#include <immintrin.h>
#elif CROWDMAP_SIMD_BACKEND == 3
#include <arm_neon.h>
#endif

namespace crowdmap::common::simd {

inline constexpr std::size_t kF32Lanes = 8;  // logical f32 lane count
inline constexpr std::size_t kF64Lanes = 4;  // logical f64 lane count

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

[[nodiscard]] constexpr Backend compiled_backend() noexcept {
  return static_cast<Backend>(CROWDMAP_SIMD_BACKEND);
}

[[nodiscard]] const char* backend_name(Backend b) noexcept;

/// True when the CPU this process runs on can execute the given backend.
/// Purely informational — the backend is fixed at compile time.
[[nodiscard]] bool runtime_cpu_supports(Backend b) noexcept;

/// One-line "compiled=... active=... cpu:..." summary for logs and the CLI.
[[nodiscard]] std::string capability_report();

namespace detail {
inline std::atomic<bool> g_force_scalar{false};
inline std::atomic<std::size_t> g_match_tile{64};
}  // namespace detail

/// Route every dispatched kernel through the scalar reference path. Process
/// wide; results are bit-identical either way — this exists so one binary
/// can measure and cross-check both paths (config key `simd.force_scalar`).
inline void set_force_scalar(bool on) noexcept {
  detail::g_force_scalar.store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool force_scalar() noexcept {
  return detail::g_force_scalar.load(std::memory_order_relaxed);
}

/// Backend the dispatched kernels will actually run.
[[nodiscard]] inline Backend active_backend() noexcept {
  return force_scalar() ? Backend::kScalar : compiled_backend();
}

inline constexpr std::size_t kMaxMatchTile = 256;

/// Candidate tile width for the blocked SoA nearest-neighbor scan
/// (`nearest2_soa_f32`). Result-invariant tunable: any multiple of 8 in
/// [8, kMaxMatchTile] produces bit-identical matches (see the early-exit
/// proof at nearest2_soa_f32). Config key `simd.match_tile`.
inline void set_match_tile(std::size_t tile) noexcept {
  tile = tile - tile % kF32Lanes;
  if (tile < kF32Lanes) tile = kF32Lanes;
  if (tile > kMaxMatchTile) tile = kMaxMatchTile;
  detail::g_match_tile.store(tile, std::memory_order_relaxed);
}
[[nodiscard]] inline std::size_t match_tile() noexcept {
  return detail::g_match_tile.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Lane types. The scalar pair is the reference semantics; each backend pair
// implements the identical logical layout. Comparisons produce all-ones /
// all-zero bit masks in the value type; vselect() is a pure bit blend.
// ---------------------------------------------------------------------------

struct F32x8S {
  std::array<float, 8> v;
  static F32x8S load(const float* p) noexcept {
    F32x8S r;
    for (int i = 0; i < 8; ++i) r.v[i] = p[i];
    return r;
  }
  void store(float* p) const noexcept {
    for (int i = 0; i < 8; ++i) p[i] = v[i];
  }
  static F32x8S broadcast(float x) noexcept {
    F32x8S r;
    for (int i = 0; i < 8; ++i) r.v[i] = x;
    return r;
  }
  static F32x8S zero() noexcept { return broadcast(0.0f); }
};

inline F32x8S operator+(F32x8S a, F32x8S b) noexcept {
  for (int i = 0; i < 8; ++i) a.v[i] = a.v[i] + b.v[i];
  return a;
}
inline F32x8S operator-(F32x8S a, F32x8S b) noexcept {
  for (int i = 0; i < 8; ++i) a.v[i] = a.v[i] - b.v[i];
  return a;
}
inline F32x8S operator*(F32x8S a, F32x8S b) noexcept {
  for (int i = 0; i < 8; ++i) a.v[i] = a.v[i] * b.v[i];
  return a;
}
inline F32x8S operator/(F32x8S a, F32x8S b) noexcept {
  for (int i = 0; i < 8; ++i) a.v[i] = a.v[i] / b.v[i];
  return a;
}
inline F32x8S vmin(F32x8S a, F32x8S b) noexcept {
  for (int i = 0; i < 8; ++i) a.v[i] = b.v[i] < a.v[i] ? b.v[i] : a.v[i];
  return a;
}
inline F32x8S vmax(F32x8S a, F32x8S b) noexcept {
  // Ternary forms mirror the x86 MINPS/MAXPS operand semantics exactly
  // (ties — including ±0 — resolve to the second operand).
  for (int i = 0; i < 8; ++i) a.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return a;
}
inline F32x8S vsqrt(F32x8S a) noexcept {
  for (int i = 0; i < 8; ++i) a.v[i] = std::sqrt(a.v[i]);
  return a;
}
inline F32x8S vabs(F32x8S a) noexcept {
  for (int i = 0; i < 8; ++i) {
    a.v[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(a.v[i]) &
                                  0x7fffffffu);
  }
  return a;
}
inline F32x8S cmp_gt(F32x8S a, F32x8S b) noexcept {
  F32x8S r;
  for (int i = 0; i < 8; ++i) {
    r.v[i] = std::bit_cast<float>(a.v[i] > b.v[i] ? 0xffffffffu : 0u);
  }
  return r;
}
inline F32x8S cmp_lt(F32x8S a, F32x8S b) noexcept { return cmp_gt(b, a); }
inline F32x8S vselect(F32x8S mask, F32x8S a, F32x8S b) noexcept {
  F32x8S r;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t m = std::bit_cast<std::uint32_t>(mask.v[i]);
    r.v[i] = std::bit_cast<float>((std::bit_cast<std::uint32_t>(a.v[i]) & m) |
                                  (std::bit_cast<std::uint32_t>(b.v[i]) & ~m));
  }
  return r;
}
inline F32x8S vxor(F32x8S a, F32x8S b) noexcept {
  F32x8S r;
  for (int i = 0; i < 8; ++i) {
    r.v[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(a.v[i]) ^
                                  std::bit_cast<std::uint32_t>(b.v[i]));
  }
  return r;
}
/// Horizontal min/max — float min/max is exact, so any combine order gives
/// the same value (inputs must be NaN-free).
inline float hmin(F32x8S a) noexcept {
  float m = a.v[0];
  for (int i = 1; i < 8; ++i) m = a.v[i] < m ? a.v[i] : m;
  return m;
}
inline float hmax(F32x8S a) noexcept {
  float m = a.v[0];
  for (int i = 1; i < 8; ++i) m = m < a.v[i] ? a.v[i] : m;
  return m;
}

struct F64x4S {
  std::array<double, 4> v;
  static F64x4S zero() noexcept { return broadcast(0.0); }
  static F64x4S broadcast(double x) noexcept {
    F64x4S r;
    for (int i = 0; i < 4; ++i) r.v[i] = x;
    return r;
  }
  static F64x4S load(const double* p) noexcept {
    F64x4S r;
    for (int i = 0; i < 4; ++i) r.v[i] = p[i];
    return r;
  }
  void store(double* p) const noexcept {
    for (int i = 0; i < 4; ++i) p[i] = v[i];
  }
  /// Loads 4 floats and widens them (exact).
  static F64x4S from_f32(const float* p) noexcept {
    F64x4S r;
    for (int i = 0; i < 4; ++i) r.v[i] = static_cast<double>(p[i]);
    return r;
  }
  /// Pinned combine order: ((l0 + l2) + (l1 + l3)).
  [[nodiscard]] double reduce() const noexcept {
    return (v[0] + v[2]) + (v[1] + v[3]);
  }
};

inline F64x4S operator+(F64x4S a, F64x4S b) noexcept {
  for (int i = 0; i < 4; ++i) a.v[i] = a.v[i] + b.v[i];
  return a;
}
inline F64x4S operator-(F64x4S a, F64x4S b) noexcept {
  for (int i = 0; i < 4; ++i) a.v[i] = a.v[i] - b.v[i];
  return a;
}
inline F64x4S operator*(F64x4S a, F64x4S b) noexcept {
  for (int i = 0; i < 4; ++i) a.v[i] = a.v[i] * b.v[i];
  return a;
}
inline F64x4S operator/(F64x4S a, F64x4S b) noexcept {
  for (int i = 0; i < 4; ++i) a.v[i] = a.v[i] / b.v[i];
  return a;
}
inline F64x4S vmin(F64x4S a, F64x4S b) noexcept {
  for (int i = 0; i < 4; ++i) a.v[i] = b.v[i] < a.v[i] ? b.v[i] : a.v[i];
  return a;
}

#if CROWDMAP_SIMD_BACKEND == 1  // ----------------------------------- SSE2

struct F32x8V {
  __m128 lo, hi;
  static F32x8V load(const float* p) noexcept {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  void store(float* p) const noexcept {
    _mm_storeu_ps(p, lo);
    _mm_storeu_ps(p + 4, hi);
  }
  static F32x8V broadcast(float x) noexcept {
    return {_mm_set1_ps(x), _mm_set1_ps(x)};
  }
  static F32x8V zero() noexcept { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
};

inline F32x8V operator+(F32x8V a, F32x8V b) noexcept {
  return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
}
inline F32x8V operator-(F32x8V a, F32x8V b) noexcept {
  return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
}
inline F32x8V operator*(F32x8V a, F32x8V b) noexcept {
  return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
}
inline F32x8V operator/(F32x8V a, F32x8V b) noexcept {
  return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
}
inline F32x8V vmin(F32x8V a, F32x8V b) noexcept {
  return {_mm_min_ps(b.lo, a.lo), _mm_min_ps(b.hi, a.hi)};
}
inline F32x8V vmax(F32x8V a, F32x8V b) noexcept {
  return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)};
}
inline F32x8V vsqrt(F32x8V a) noexcept {
  return {_mm_sqrt_ps(a.lo), _mm_sqrt_ps(a.hi)};
}
inline F32x8V vabs(F32x8V a) noexcept {
  const __m128 m = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  return {_mm_and_ps(a.lo, m), _mm_and_ps(a.hi, m)};
}
inline F32x8V cmp_gt(F32x8V a, F32x8V b) noexcept {
  return {_mm_cmpgt_ps(a.lo, b.lo), _mm_cmpgt_ps(a.hi, b.hi)};
}
inline F32x8V cmp_lt(F32x8V a, F32x8V b) noexcept { return cmp_gt(b, a); }
inline F32x8V vselect(F32x8V mask, F32x8V a, F32x8V b) noexcept {
  return {_mm_or_ps(_mm_and_ps(mask.lo, a.lo), _mm_andnot_ps(mask.lo, b.lo)),
          _mm_or_ps(_mm_and_ps(mask.hi, a.hi), _mm_andnot_ps(mask.hi, b.hi))};
}
inline F32x8V vxor(F32x8V a, F32x8V b) noexcept {
  return {_mm_xor_ps(a.lo, b.lo), _mm_xor_ps(a.hi, b.hi)};
}
inline float hmin(F32x8V a) noexcept {
  __m128 m = _mm_min_ps(a.lo, a.hi);
  m = _mm_min_ps(m, _mm_movehl_ps(m, m));
  m = _mm_min_ss(m, _mm_shuffle_ps(m, m, 0x55));
  return _mm_cvtss_f32(m);
}
inline float hmax(F32x8V a) noexcept {
  __m128 m = _mm_max_ps(a.lo, a.hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
  return _mm_cvtss_f32(m);
}

struct F64x4V {
  __m128d lo, hi;  // logical lanes (l0, l1) and (l2, l3)
  static F64x4V zero() noexcept {
    return {_mm_setzero_pd(), _mm_setzero_pd()};
  }
  static F64x4V broadcast(double x) noexcept {
    return {_mm_set1_pd(x), _mm_set1_pd(x)};
  }
  static F64x4V load(const double* p) noexcept {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  void store(double* p) const noexcept {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }
  static F64x4V from_f32(const float* p) noexcept {
    const __m128 f = _mm_loadu_ps(p);
    return {_mm_cvtps_pd(f), _mm_cvtps_pd(_mm_movehl_ps(f, f))};
  }
  [[nodiscard]] double reduce() const noexcept {
    // (l0 + l2, l1 + l3), then low + high: ((l0 + l2) + (l1 + l3)).
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};

inline F64x4V operator+(F64x4V a, F64x4V b) noexcept {
  return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
}
inline F64x4V operator-(F64x4V a, F64x4V b) noexcept {
  return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
}
inline F64x4V operator*(F64x4V a, F64x4V b) noexcept {
  return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
}
inline F64x4V operator/(F64x4V a, F64x4V b) noexcept {
  return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
}
inline F64x4V vmin(F64x4V a, F64x4V b) noexcept {
  return {_mm_min_pd(b.lo, a.lo), _mm_min_pd(b.hi, a.hi)};
}

#elif CROWDMAP_SIMD_BACKEND == 2  // --------------------------------- AVX2

struct F32x8V {
  __m256 v;
  static F32x8V load(const float* p) noexcept { return {_mm256_loadu_ps(p)}; }
  void store(float* p) const noexcept { _mm256_storeu_ps(p, v); }
  static F32x8V broadcast(float x) noexcept { return {_mm256_set1_ps(x)}; }
  static F32x8V zero() noexcept { return {_mm256_setzero_ps()}; }
};

inline F32x8V operator+(F32x8V a, F32x8V b) noexcept {
  return {_mm256_add_ps(a.v, b.v)};
}
inline F32x8V operator-(F32x8V a, F32x8V b) noexcept {
  return {_mm256_sub_ps(a.v, b.v)};
}
inline F32x8V operator*(F32x8V a, F32x8V b) noexcept {
  return {_mm256_mul_ps(a.v, b.v)};
}
inline F32x8V operator/(F32x8V a, F32x8V b) noexcept {
  return {_mm256_div_ps(a.v, b.v)};
}
inline F32x8V vmin(F32x8V a, F32x8V b) noexcept {
  return {_mm256_min_ps(b.v, a.v)};
}
inline F32x8V vmax(F32x8V a, F32x8V b) noexcept {
  return {_mm256_max_ps(a.v, b.v)};
}
inline F32x8V vsqrt(F32x8V a) noexcept { return {_mm256_sqrt_ps(a.v)}; }
inline F32x8V vabs(F32x8V a) noexcept {
  return {_mm256_and_ps(a.v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)))};
}
inline F32x8V cmp_gt(F32x8V a, F32x8V b) noexcept {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
}
inline F32x8V cmp_lt(F32x8V a, F32x8V b) noexcept { return cmp_gt(b, a); }
inline F32x8V vselect(F32x8V mask, F32x8V a, F32x8V b) noexcept {
  return {_mm256_blendv_ps(b.v, a.v, mask.v)};
}
inline F32x8V vxor(F32x8V a, F32x8V b) noexcept {
  return {_mm256_xor_ps(a.v, b.v)};
}
inline float hmin(F32x8V a) noexcept {
  __m128 m = _mm_min_ps(_mm256_castps256_ps128(a.v),
                        _mm256_extractf128_ps(a.v, 1));
  m = _mm_min_ps(m, _mm_movehl_ps(m, m));
  m = _mm_min_ss(m, _mm_shuffle_ps(m, m, 0x55));
  return _mm_cvtss_f32(m);
}
inline float hmax(F32x8V a) noexcept {
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(a.v),
                        _mm256_extractf128_ps(a.v, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
  return _mm_cvtss_f32(m);
}

struct F64x4V {
  __m256d v;  // logical lanes (l0, l1, l2, l3)
  static F64x4V zero() noexcept { return {_mm256_setzero_pd()}; }
  static F64x4V broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static F64x4V load(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  static F64x4V from_f32(const float* p) noexcept {
    return {_mm256_cvtps_pd(_mm_loadu_ps(p))};
  }
  [[nodiscard]] double reduce() const noexcept {
    // Same combine as SSE2: (l0 + l2, l1 + l3), then low + high.
    const __m128d s =
        _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};

inline F64x4V operator+(F64x4V a, F64x4V b) noexcept {
  return {_mm256_add_pd(a.v, b.v)};
}
inline F64x4V operator-(F64x4V a, F64x4V b) noexcept {
  return {_mm256_sub_pd(a.v, b.v)};
}
inline F64x4V operator*(F64x4V a, F64x4V b) noexcept {
  return {_mm256_mul_pd(a.v, b.v)};
}
inline F64x4V operator/(F64x4V a, F64x4V b) noexcept {
  return {_mm256_div_pd(a.v, b.v)};
}
inline F64x4V vmin(F64x4V a, F64x4V b) noexcept {
  return {_mm256_min_pd(b.v, a.v)};
}

#elif CROWDMAP_SIMD_BACKEND == 3  // --------------------------------- NEON

struct F32x8V {
  float32x4_t lo, hi;
  static F32x8V load(const float* p) noexcept {
    return {vld1q_f32(p), vld1q_f32(p + 4)};
  }
  void store(float* p) const noexcept {
    vst1q_f32(p, lo);
    vst1q_f32(p + 4, hi);
  }
  static F32x8V broadcast(float x) noexcept {
    return {vdupq_n_f32(x), vdupq_n_f32(x)};
  }
  static F32x8V zero() noexcept {
    return {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  }
};

inline F32x8V operator+(F32x8V a, F32x8V b) noexcept {
  return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
}
inline F32x8V operator-(F32x8V a, F32x8V b) noexcept {
  return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
}
inline F32x8V operator*(F32x8V a, F32x8V b) noexcept {
  return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
}
inline F32x8V operator/(F32x8V a, F32x8V b) noexcept {
  return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
}
inline F32x8V vmin(F32x8V a, F32x8V b) noexcept {
  return {vminq_f32(b.lo, a.lo), vminq_f32(b.hi, a.hi)};
}
inline F32x8V vmax(F32x8V a, F32x8V b) noexcept {
  return {vmaxq_f32(a.lo, b.lo), vmaxq_f32(a.hi, b.hi)};
}
inline F32x8V vsqrt(F32x8V a) noexcept {
  return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)};
}
inline F32x8V vabs(F32x8V a) noexcept {
  return {vabsq_f32(a.lo), vabsq_f32(a.hi)};
}
inline F32x8V cmp_gt(F32x8V a, F32x8V b) noexcept {
  return {vreinterpretq_f32_u32(vcgtq_f32(a.lo, b.lo)),
          vreinterpretq_f32_u32(vcgtq_f32(a.hi, b.hi))};
}
inline F32x8V cmp_lt(F32x8V a, F32x8V b) noexcept { return cmp_gt(b, a); }
inline F32x8V vselect(F32x8V mask, F32x8V a, F32x8V b) noexcept {
  return {vbslq_f32(vreinterpretq_u32_f32(mask.lo), a.lo, b.lo),
          vbslq_f32(vreinterpretq_u32_f32(mask.hi), a.hi, b.hi)};
}
inline F32x8V vxor(F32x8V a, F32x8V b) noexcept {
  return {vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(a.lo),
                                          vreinterpretq_u32_f32(b.lo))),
          vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(a.hi),
                                          vreinterpretq_u32_f32(b.hi)))};
}
inline float hmin(F32x8V a) noexcept {
  return vminvq_f32(vminq_f32(a.lo, a.hi));
}
inline float hmax(F32x8V a) noexcept {
  return vmaxvq_f32(vmaxq_f32(a.lo, a.hi));
}

struct F64x4V {
  float64x2_t lo, hi;  // logical lanes (l0, l1) and (l2, l3)
  static F64x4V zero() noexcept {
    return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  }
  static F64x4V broadcast(double x) noexcept {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static F64x4V load(const double* p) noexcept {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  void store(double* p) const noexcept {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
  static F64x4V from_f32(const float* p) noexcept {
    return {vcvt_f64_f32(vld1_f32(p)), vcvt_f64_f32(vld1_f32(p + 2))};
  }
  [[nodiscard]] double reduce() const noexcept {
    const float64x2_t s = vaddq_f64(lo, hi);
    return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
  }
};

inline F64x4V operator+(F64x4V a, F64x4V b) noexcept {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline F64x4V operator-(F64x4V a, F64x4V b) noexcept {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline F64x4V operator*(F64x4V a, F64x4V b) noexcept {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline F64x4V operator/(F64x4V a, F64x4V b) noexcept {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
inline F64x4V vmin(F64x4V a, F64x4V b) noexcept {
  return {vminq_f64(b.lo, a.lo), vminq_f64(b.hi, a.hi)};
}

#endif  // CROWDMAP_SIMD_BACKEND

#if CROWDMAP_SIMD_BACKEND == 0
using F32x8V = F32x8S;  // scalar build: both paths are the reference types
using F64x4V = F64x4S;
#endif

/// Tag types for dispatch(): `typename Tag::f32x8` / `typename Tag::f64x4`.
struct ScalarTag {
  using f32x8 = F32x8S;
  using f64x4 = F64x4S;
};
struct VectorTag {
  using f32x8 = F32x8V;
  using f64x4 = F64x4V;
};

/// Runs `fn` with the active lane types: fn(VectorTag{}) on the compiled
/// backend, fn(ScalarTag{}) when the backend is scalar or force_scalar() is
/// set. Both instantiations execute the same op sequence, so call sites that
/// only use the lane-type API are bit-exact by construction.
template <class Fn>
decltype(auto) dispatch(Fn&& fn) {
#if CROWDMAP_SIMD_BACKEND != 0
  if (!force_scalar()) return fn(VectorTag{});
#endif
  return fn(ScalarTag{});
}

// ---------------------------------------------------------------------------
// Reduction kernels (pinned 4-lane f64 layout; see the header comment).
// ---------------------------------------------------------------------------

namespace detail {

template <class D4>
double sum_f32_impl(const float* a, std::size_t n) {
  D4 lanes = D4::zero();
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF64Lanes;
  for (; i < main_n; i += kF64Lanes) lanes = lanes + D4::from_f32(a + i);
  double tail = 0.0;
  for (; i < n; ++i) tail += static_cast<double>(a[i]);
  return lanes.reduce() + tail;
}

template <class D4>
double dot_f32_impl(const float* a, const float* b, std::size_t n) {
  D4 lanes = D4::zero();
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF64Lanes;
  for (; i < main_n; i += kF64Lanes) {
    const D4 prod = D4::from_f32(a + i) * D4::from_f32(b + i);
    lanes = lanes + prod;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double prod = static_cast<double>(a[i]) * static_cast<double>(b[i]);
    tail += prod;
  }
  return lanes.reduce() + tail;
}

template <class D4>
double l2sq_f32_impl(const float* a, const float* b, std::size_t n) {
  D4 lanes = D4::zero();
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF64Lanes;
  for (; i < main_n; i += kF64Lanes) {
    const D4 diff = D4::from_f32(a + i) - D4::from_f32(b + i);
    lanes = lanes + diff * diff;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += diff * diff;
  }
  return lanes.reduce() + tail;
}

template <class D4>
double sum_min_f32_impl(const float* a, const float* b, std::size_t n) {
  // min computed after the (exact) widening — double(min(a, b)) ==
  // min(double(a), double(b)), so this matches the float-domain reference.
  D4 lanes = D4::zero();
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF64Lanes;
  for (; i < main_n; i += kF64Lanes) {
    lanes = lanes + vmin(D4::from_f32(a + i), D4::from_f32(b + i));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i] < b[i] ? a[i] : b[i]);
  }
  return lanes.reduce() + tail;
}

}  // namespace detail

/// Σ a[i] — 4-lane pinned order.
inline double sum_f32(const float* a, std::size_t n) {
  return dispatch([&](auto tag) {
    return detail::sum_f32_impl<typename decltype(tag)::f64x4>(a, n);
  });
}

/// Σ a[i]·b[i] — 4-lane pinned order, products formed in double.
inline double dot_f32(const float* a, const float* b, std::size_t n) {
  return dispatch([&](auto tag) {
    return detail::dot_f32_impl<typename decltype(tag)::f64x4>(a, b, n);
  });
}

/// Σ (a[i]-b[i])² — 4-lane pinned order, differences formed in double.
inline double l2sq_f32(const float* a, const float* b, std::size_t n) {
  return dispatch([&](auto tag) {
    return detail::l2sq_f32_impl<typename decltype(tag)::f64x4>(a, b, n);
  });
}

/// Σ min(a[i], b[i]) — histogram intersection; 4-lane pinned order.
inline double sum_min_f32(const float* a, const float* b, std::size_t n) {
  return dispatch([&](auto tag) {
    return detail::sum_min_f32_impl<typename decltype(tag)::f64x4>(a, b, n);
  });
}

/// Three simultaneous reductions for cosine similarity: Σab, Σa², Σb².
struct Dot3 {
  double ab = 0.0;
  double aa = 0.0;
  double bb = 0.0;
};

namespace detail {
template <class D4>
Dot3 dot3_f32_impl(const float* a, const float* b, std::size_t n) {
  D4 lab = D4::zero();
  D4 laa = D4::zero();
  D4 lbb = D4::zero();
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF64Lanes;
  for (; i < main_n; i += kF64Lanes) {
    const D4 va = D4::from_f32(a + i);
    const D4 vb = D4::from_f32(b + i);
    lab = lab + va * vb;
    laa = laa + va * va;
    lbb = lbb + vb * vb;
  }
  double tab = 0.0;
  double taa = 0.0;
  double tbb = 0.0;
  for (; i < n; ++i) {
    const double va = static_cast<double>(a[i]);
    const double vb = static_cast<double>(b[i]);
    tab += va * vb;
    taa += va * va;
    tbb += vb * vb;
  }
  return {lab.reduce() + tab, laa.reduce() + taa, lbb.reduce() + tbb};
}
}  // namespace detail

inline Dot3 dot3_f32(const float* a, const float* b, std::size_t n) {
  return dispatch([&](auto tag) {
    return detail::dot3_f32_impl<typename decltype(tag)::f64x4>(a, b, n);
  });
}

/// The three NCC sums over mean-subtracted values:
///   num = Σ (a-ma)(b-mb), da = Σ (a-ma)², db = Σ (b-mb)².
struct NccSums {
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
};

namespace detail {
template <class D4>
NccSums ncc_accum_f32_impl(const float* a, const float* b, double mean_a,
                           double mean_b, std::size_t n) {
  const D4 ma = D4::broadcast(mean_a);
  const D4 mb = D4::broadcast(mean_b);
  D4 lnum = D4::zero();
  D4 lda = D4::zero();
  D4 ldb = D4::zero();
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF64Lanes;
  for (; i < main_n; i += kF64Lanes) {
    const D4 va = D4::from_f32(a + i) - ma;
    const D4 vb = D4::from_f32(b + i) - mb;
    lnum = lnum + va * vb;
    lda = lda + va * va;
    ldb = ldb + vb * vb;
  }
  double tnum = 0.0;
  double tda = 0.0;
  double tdb = 0.0;
  for (; i < n; ++i) {
    const double va = static_cast<double>(a[i]) - mean_a;
    const double vb = static_cast<double>(b[i]) - mean_b;
    tnum += va * vb;
    tda += va * va;
    tdb += vb * vb;
  }
  return {lnum.reduce() + tnum, lda.reduce() + tda, ldb.reduce() + tdb};
}
}  // namespace detail

inline NccSums ncc_accum_f32(const float* a, const float* b, double mean_a,
                             double mean_b, std::size_t n) {
  return dispatch([&](auto tag) {
    return detail::ncc_accum_f32_impl<typename decltype(tag)::f64x4>(
        a, b, mean_a, mean_b, n);
  });
}

// ---------------------------------------------------------------------------
// Min / argmin. The result (extreme value, FIRST index attaining it) is a
// pure function of the array — float min/max is exact — so the vectorized
// two-pass form below and the canonical one-pass scalar scan agree bit-wise.
// Inputs must be NaN-free. n must be > 0.
// ---------------------------------------------------------------------------

struct IndexValue {
  std::size_t index = 0;
  float value = 0.0f;
};

namespace detail {
template <class V8, bool kMax>
IndexValue argext_f32_impl(const float* a, std::size_t n) {
  float best;
  if (n >= kF32Lanes) {
    V8 run = V8::load(a);
    std::size_t i = kF32Lanes;
    const std::size_t main_n = n - n % kF32Lanes;
    for (; i < main_n; i += kF32Lanes) {
      if constexpr (kMax) {
        run = vmax(run, V8::load(a + i));
      } else {
        run = vmin(run, V8::load(a + i));
      }
    }
    best = kMax ? hmax(run) : hmin(run);
    for (; i < n; ++i) {
      if (kMax ? best < a[i] : a[i] < best) best = a[i];
    }
  } else {
    best = a[0];
    for (std::size_t i = 1; i < n; ++i) {
      if (kMax ? best < a[i] : a[i] < best) best = a[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == best) return {i, best};
  }
  return {0, best};  // unreachable for NaN-free input
}

template <bool kMax>
IndexValue argext_f32_scalar(const float* a, std::size_t n) {
  IndexValue out{0, a[0]};
  for (std::size_t i = 1; i < n; ++i) {
    if (kMax ? out.value < a[i] : a[i] < out.value) out = {i, a[i]};
  }
  return out;
}
}  // namespace detail

/// Smallest value and the first index attaining it.
inline IndexValue argmin_f32(const float* a, std::size_t n) {
  assert(n > 0);
#if CROWDMAP_SIMD_BACKEND != 0
  if (!force_scalar()) return detail::argext_f32_impl<F32x8V, false>(a, n);
#endif
  return detail::argext_f32_scalar<false>(a, n);
}

/// Largest value and the first index attaining it.
inline IndexValue argmax_f32(const float* a, std::size_t n) {
  assert(n > 0);
#if CROWDMAP_SIMD_BACKEND != 0
  if (!force_scalar()) return detail::argext_f32_impl<F32x8V, true>(a, n);
#endif
  return detail::argext_f32_scalar<true>(a, n);
}

// ---------------------------------------------------------------------------
// Elementwise kernels. Per-element expression trees are identical in every
// backend, so outputs are bit-exact at any lane width by construction.
// ---------------------------------------------------------------------------

namespace detail {

template <class V8>
void weighted_accumulate_impl(float* acc_out, const float* w, const float* x,
                              std::size_t n) {
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF32Lanes;
  for (; i < main_n; i += kF32Lanes) {
    const V8 prod = V8::load(w + i) * V8::load(x + i);
    const V8 r = V8::load(acc_out + i) + prod;
    r.store(acc_out + i);
  }
  for (; i < n; ++i) {
    const float prod = w[i] * x[i];
    acc_out[i] = acc_out[i] + prod;
  }
}

template <class V8>
void normalize_by_weight_impl(float* out, const float* num, const float* den,
                              std::size_t n) {
  const V8 vzero = V8::zero();
  const V8 vone = V8::broadcast(1.0f);
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF32Lanes;
  for (; i < main_n; i += kF32Lanes) {
    const V8 d = V8::load(den + i);
    const V8 mask = cmp_gt(d, vzero);
    const V8 safe = vselect(mask, d, vone);
    const V8 q = V8::load(num + i) / safe;
    vselect(mask, q, vzero).store(out + i);
  }
  for (; i < n; ++i) {
    out[i] = den[i] > 0.0f ? num[i] / den[i] : 0.0f;
  }
}

template <class V8>
void magnitude_impl(const float* gx, const float* gy, float* out,
                    std::size_t n) {
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF32Lanes;
  for (; i < main_n; i += kF32Lanes) {
    const V8 x = V8::load(gx + i);
    const V8 y = V8::load(gy + i);
    const V8 xx = x * x;
    const V8 yy = y * y;
    vsqrt(xx + yy).store(out + i);
  }
  for (; i < n; ++i) {
    const float xx = gx[i] * gx[i];
    const float yy = gy[i] * gy[i];
    out[i] = std::sqrt(xx + yy);
  }
}

// Degree-9 odd minimax polynomial for atan on [0, 1] (Abramowitz & Stegun
// 4.4.49 coefficients; max error ~1e-5 rad). Evaluated with explicit
// mul-then-add steps so every backend — and the scalar tail — runs the same
// rounding sequence.
inline constexpr float kAtanC0 = 0.9998660f;
inline constexpr float kAtanC1 = -0.3302995f;
inline constexpr float kAtanC2 = 0.1801410f;
inline constexpr float kAtanC3 = -0.0851330f;
inline constexpr float kAtanC4 = 0.0208351f;
inline constexpr float kHalfPi = 1.57079632679489662f;
inline constexpr float kPi = 3.14159265358979324f;

template <class V8>
void mag_angle_impl(const float* gx, const float* gy, float* mag, float* ang,
                    std::size_t n) {
  const V8 vzero = V8::zero();
  const V8 vone = V8::broadcast(1.0f);
  const V8 vhalf_pi = V8::broadcast(kHalfPi);
  const V8 vpi = V8::broadcast(kPi);
  const V8 sign_bit = V8::broadcast(-0.0f);
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF32Lanes;
  const auto block = [&](const V8 x, const V8 y, float* mout, float* aout) {
    const V8 xx = x * x;
    const V8 yy = y * y;
    vsqrt(xx + yy).store(mout);
    const V8 ax = vabs(x);
    const V8 ay = vabs(y);
    const V8 mx = vmax(ax, ay);
    const V8 mn = vmin(ax, ay);
    const V8 den = vselect(cmp_gt(mx, vzero), mx, vone);
    const V8 r = mn / den;
    const V8 r2 = r * r;
    V8 p = V8::broadcast(kAtanC4);
    p = p * r2 + V8::broadcast(kAtanC3);
    p = p * r2 + V8::broadcast(kAtanC2);
    p = p * r2 + V8::broadcast(kAtanC1);
    p = p * r2 + V8::broadcast(kAtanC0);
    V8 angle = p * r;
    angle = vselect(cmp_gt(ay, ax), vhalf_pi - angle, angle);
    angle = vselect(cmp_lt(x, vzero), vpi - angle, angle);
    // Copy y's sign: atan2 is odd in y. (±0 keeps the +quadrant result.)
    const V8 neg = cmp_lt(y, vzero);
    angle = vselect(neg, vxor(angle, sign_bit), angle);
    angle.store(aout);
  };
  for (; i < main_n; i += kF32Lanes) {
    block(V8::load(gx + i), V8::load(gy + i), mag + i, ang + i);
  }
  if (i < n) {
    // Buffered tail: run the identical lane code on a padded copy so the
    // tail cannot diverge from the vector body by a separately-written
    // scalar expression.
    float bx[kF32Lanes];
    float by[kF32Lanes];
    float bm[kF32Lanes];
    float ba[kF32Lanes];
    for (std::size_t k = 0; k < kF32Lanes; ++k) {
      bx[k] = i + k < n ? gx[i + k] : 1.0f;
      by[k] = i + k < n ? gy[i + k] : 0.0f;
    }
    block(V8::load(bx), V8::load(by), bm, ba);
    for (std::size_t k = 0; i + k < n; ++k) {
      mag[i + k] = bm[k];
      ang[i + k] = ba[k];
    }
  }
}

template <class V8>
void sobel_row_impl(const float* top, const float* mid, const float* bot,
                    float* gx, float* gy, std::size_t n) {
  const V8 two = V8::broadcast(2.0f);
  std::size_t i = 0;
  const std::size_t main_n = n - n % kF32Lanes;
  for (; i < main_n; i += kF32Lanes) {
    const V8 tl = V8::load(top + i - 1);
    const V8 tc = V8::load(top + i);
    const V8 tr = V8::load(top + i + 1);
    const V8 ml = V8::load(mid + i - 1);
    const V8 mr = V8::load(mid + i + 1);
    const V8 bl = V8::load(bot + i - 1);
    const V8 bc = V8::load(bot + i);
    const V8 br = V8::load(bot + i + 1);
    // Same association as the scalar form: (r + 2*c + l-sum) groupings.
    const V8 vx = ((tr + two * mr) + br) - ((tl + two * ml) + bl);
    const V8 vy = ((bl + two * bc) + br) - ((tl + two * tc) + tr);
    vx.store(gx + i);
    vy.store(gy + i);
  }
  for (; i < n; ++i) {
    const float tl = top[i - 1];
    const float tc = top[i];
    const float tr = top[i + 1];
    const float ml = mid[i - 1];
    const float mr = mid[i + 1];
    const float bl = bot[i - 1];
    const float bc = bot[i];
    const float br = bot[i + 1];
    gx[i] = ((tr + 2.0f * mr) + br) - ((tl + 2.0f * ml) + bl);
    gy[i] = ((bl + 2.0f * bc) + br) - ((tl + 2.0f * tc) + tr);
  }
}

}  // namespace detail

/// acc[i] += w[i] * x[i] (mul then add; no FMA).
inline void weighted_accumulate_f32(float* acc_out, const float* w,
                                    const float* x, std::size_t n) {
  dispatch([&](auto tag) {
    detail::weighted_accumulate_impl<typename decltype(tag)::f32x8>(acc_out, w,
                                                                    x, n);
  });
}

/// out[i] = den[i] > 0 ? num[i] / den[i] : 0 — the feather-blend resolve.
/// Guarded so the masked-out lanes never divide by zero (sanitizer-clean).
inline void normalize_by_weight_f32(float* out, const float* num,
                                    const float* den, std::size_t n) {
  dispatch([&](auto tag) {
    detail::normalize_by_weight_impl<typename decltype(tag)::f32x8>(out, num,
                                                                    den, n);
  });
}

/// out[i] = sqrt(gx[i]² + gy[i]²).
inline void magnitude_f32(const float* gx, const float* gy, float* out,
                          std::size_t n) {
  dispatch([&](auto tag) {
    detail::magnitude_impl<typename decltype(tag)::f32x8>(gx, gy, out, n);
  });
}

/// mag[i] = sqrt(gx²+gy²); ang[i] = polynomial atan2(gy, gx) in (-pi, pi].
/// The angle uses the wrapper's own minimax polynomial (~1e-5 rad), NOT
/// libm atan2 — deterministic across backends and platforms by construction.
inline void mag_angle_f32(const float* gx, const float* gy, float* mag,
                          float* ang, std::size_t n) {
  dispatch([&](auto tag) {
    detail::mag_angle_impl<typename decltype(tag)::f32x8>(gx, gy, mag, ang, n);
  });
}

/// Sobel responses for `n` interior pixels: reads [i-1, i+1] from each of the
/// three input rows, so callers must pass pointers with one valid element of
/// margin on both sides.
inline void sobel_row_f32(const float* top, const float* mid, const float* bot,
                          float* gx, float* gy, std::size_t n) {
  dispatch([&](auto tag) {
    detail::sobel_row_impl<typename decltype(tag)::f32x8>(top, mid, bot, gx,
                                                          gy, n);
  });
}

// ---------------------------------------------------------------------------
// Blocked SoA nearest-neighbor scan (the S2 matcher inner loop).
// ---------------------------------------------------------------------------

namespace detail {
template <class V8>
void l2sq_soa_accum_impl(const float* soa, std::size_t stride,
                         const float* query, std::size_t d0, std::size_t d1,
                         std::size_t j0, std::size_t len, float* dist2) {
  for (std::size_t d = d0; d < d1; ++d) {
    const V8 q = V8::broadcast(query[d]);
    const float* row = soa + d * stride + j0;
    for (std::size_t j = 0; j < len; j += kF32Lanes) {
      const V8 diff = V8::load(row + j) - q;
      const V8 sq = diff * diff;
      const V8 r = V8::load(dist2 + j) + sq;
      r.store(dist2 + j);
    }
  }
}
}  // namespace detail

/// dist2[j] += Σ_{d in [d0,d1)} (soa[d*stride + j0 + j] - query[d])² for
/// j in [0, len). `len` must be a multiple of kF32Lanes. Per candidate the
/// accumulation order over d is sequential (outer loop), and each element
/// runs the same sub/mul/add tree in float — bit-exact at any lane width,
/// and bit-equal to vision::descriptor_distance_sq on the same data.
inline void l2sq_soa_accum_f32(const float* soa, std::size_t stride,
                               const float* query, std::size_t d0,
                               std::size_t d1, std::size_t j0, std::size_t len,
                               float* dist2) {
  assert(len % kF32Lanes == 0);
  dispatch([&](auto tag) {
    detail::l2sq_soa_accum_impl<typename decltype(tag)::f32x8>(
        soa, stride, query, d0, d1, j0, len, dist2);
  });
}

/// Nearest and second-nearest squared distances over an SoA block.
/// best == count means "no candidate" (count == 0).
struct NearestTwo {
  std::size_t best = 0;
  float best_d2 = std::numeric_limits<float>::max();
  float second_d2 = std::numeric_limits<float>::max();
};

/// Blocked scan over a dim-major SoA block: `soa` holds `dims` rows of
/// `stride` floats; candidates j in [0, count) are real, [count, stride)
/// are large-valued padding lanes. Candidates are processed in tiles of
/// match_tile(); each tile accumulates distances dim-chunk by dim-chunk with
/// a partial-distance early exit:
///
///   Distances only grow as dims accumulate, so once every candidate in the
///   tile has partial >= second_d2, no candidate in it can improve best or
///   second — the tile is abandoned. A candidate whose FINAL distance is
///   below the running second always survives every check (partial <= final
///   < bound), so the (best, second, first-index tie-break) triple is
///   exactly the full-scan result for ANY tile/chunk size: the early exit
///   is a pure optimization, invariant in the output.
inline NearestTwo nearest2_soa_f32(const float* soa, std::size_t stride,
                                   std::size_t dims, std::size_t count,
                                   const float* query) {
  NearestTwo out;
  out.best = count;
  if (count == 0) return out;
  const std::size_t tile = match_tile();
  constexpr std::size_t kDimChunk = 16;
  std::array<float, kMaxMatchTile> d2buf;
  for (std::size_t j0 = 0; j0 < count; j0 += tile) {
    // Lane padding: stride is a multiple of kF32Lanes, so rounding the tile
    // span up to the stride edge keeps vector loads in-bounds.
    const std::size_t len = stride - j0 < tile ? stride - j0 : tile;
    for (std::size_t k = 0; k < len; ++k) d2buf[k] = 0.0f;
    bool abandoned = false;
    for (std::size_t d0 = 0; d0 < dims; d0 += kDimChunk) {
      const std::size_t d1 = d0 + kDimChunk < dims ? d0 + kDimChunk : dims;
      l2sq_soa_accum_f32(soa, stride, query, d0, d1, j0, len, d2buf.data());
      if (out.second_d2 < std::numeric_limits<float>::max() && d1 < dims) {
        float low = d2buf[0];
        for (std::size_t k = 1; k < len; ++k) {
          low = d2buf[k] < low ? d2buf[k] : low;
        }
        if (!(low < out.second_d2)) {
          abandoned = true;
          break;
        }
      }
    }
    if (abandoned) continue;
    const std::size_t jmax = j0 + tile < count ? j0 + tile : count;
    for (std::size_t j = j0; j < jmax; ++j) {
      const float d = d2buf[j - j0];
      if (d < out.best_d2) {
        out.second_d2 = out.best_d2;
        out.best_d2 = d;
        out.best = j;
      } else if (d < out.second_d2) {
        out.second_d2 = d;
      }
    }
  }
  return out;
}

}  // namespace crowdmap::common::simd

#include "common/config_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crowdmap::common {

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": expected key = value");
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": empty key");
    }
    config.entries_[key] = value;
  }
  return config;
}

ConfigFile ConfigFile::load(const std::string& path) {
  // Boot-time read of an operator-supplied file, not durable state — the
  // storage::Env indirection buys nothing here.
  // crowdmap-lint: allow(raw-file-io)
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Expected<ConfigFile> ConfigFile::try_parse(const std::string& text) {
  try {
    return parse(text);
  } catch (const std::runtime_error& e) {
    return make_error("config.parse", e.what());
  }
}

Expected<ConfigFile> ConfigFile::try_load(const std::string& path) {
  // crowdmap-lint: allow(raw-file-io)
  std::ifstream in(path);
  if (!in) return make_error("config.io", "cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return try_parse(buffer.str());
}

bool ConfigFile::has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::optional<std::string> ConfigFile::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double out = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("config key '" + key + "': not a number: " + *v);
  }
}

int ConfigFile::get_int(const std::string& key, int fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const int out = std::stoi(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("config key '" + key + "': not an integer: " + *v);
  }
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::runtime_error("config key '" + key + "': not a boolean: " + *v);
}

}  // namespace crowdmap::common

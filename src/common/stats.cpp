#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crowdmap::common {

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double stddev(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(samples);
  s.stddev = stddev(samples);
  s.median = percentile(samples, 50.0);
  s.p90 = percentile(samples, 90.0);
  s.p99 = percentile(samples, 99.0);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("quantile of empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[idx == 0 ? 0 : std::min(idx - 1, sorted_.size() - 1)];
}

std::string EmpiricalCdf::to_table(std::size_t n_rows) const {
  std::ostringstream out;
  if (sorted_.empty() || n_rows < 2) return out.str();
  for (std::size_t i = 0; i < n_rows; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n_rows - 1);
    const double x = quantile(std::max(q, 1e-9));
    out << x << '\t' << at(x) << '\n';
  }
  return out.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) throw std::invalid_argument("bad histogram range");
}

void Histogram::add(double x) noexcept {
  if (x < lo_ || x >= hi_) return;
  const auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  counts_[std::min(bin, counts_.size() - 1)]++;
  total_++;
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace crowdmap::common

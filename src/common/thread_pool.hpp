// Fixed-size worker pool used by the cloud backend's parallel-processing
// pipeline (the paper's Spark cluster stand-in) and by the evaluation harness.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace crowdmap::common {

/// Work-queue thread pool. Tasks are std::function<void()>; submit() returns
/// a future for the task's result. Destruction drains the queue then joins.
class ThreadPool {
 public:
  /// Fires with a snapshot of the queue depth after every enqueue/dequeue.
  /// Invoked OUTSIDE the pool lock so a slow observer cannot serialize the
  /// workers; consecutive depths may therefore arrive out of order (feeding
  /// an obs::Gauge, which only keeps the latest value, is the intended use).
  using QueueObserver = std::function<void(std::size_t depth)>;
  /// Fires with a task's wall-clock seconds after it finishes. Also invoked
  /// outside the lock.
  using TaskObserver = std::function<void(double seconds)>;

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void set_queue_observer(QueueObserver observer) CM_EXCLUDES(mutex_);
  void set_task_observer(TaskObserver observer) CM_EXCLUDES(mutex_);

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    std::size_t depth = 0;
    QueueObserver observer;
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
      depth = queue_.size();
      observer = queue_observer_;
    }
    cv_.notify_one();
    if (observer) observer(depth);
    return future;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle() CM_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }
  [[nodiscard]] std::size_t pending() const CM_EXCLUDES(mutex_);

 private:
  void worker_loop() CM_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  ConditionVariable cv_;
  ConditionVariable idle_cv_;
  std::deque<std::function<void()>> queue_ CM_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;  // written only before/after the workers run
  QueueObserver queue_observer_ CM_GUARDED_BY(mutex_);
  TaskObserver task_observer_ CM_GUARDED_BY(mutex_);
  std::size_t active_ CM_GUARDED_BY(mutex_) = 0;
  bool stopping_ CM_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for every i in [0, n), fanning chunks of `grain` indices out
/// over `pool`'s workers while the calling thread participates as well — a
/// null pool (or a trivially small loop) degrades to the plain serial loop.
///
/// Scheduling is dynamic (a shared atomic chunk cursor), so WHICH thread runs
/// a given index is nondeterministic; callers that need deterministic results
/// must make fn(i) write only to per-index state (slot i) and merge in index
/// order afterwards. The first exception thrown by fn is captured, the
/// remaining chunks are cancelled, and the exception is rethrown here.
///
/// Nesting is safe: because the caller drains the chunk cursor itself, every
/// parallel_for completes even when all pool workers are blocked inside other
/// parallel_for calls — queued helper tasks that arrive after the loop is
/// done find the cursor exhausted and return without touching fn.
template <typename F>
void parallel_for(ThreadPool* pool, std::size_t n, F&& fn,
                  std::size_t grain = 1) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->worker_count() == 0 || chunks < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared by value with the helper tasks so a helper that only gets
  // scheduled after this call returned still finds live state.
  struct Shared {
    std::atomic<std::size_t> next{0};
    Mutex mutex;
    ConditionVariable idle;
    std::size_t active CM_GUARDED_BY(mutex) = 0;  // helpers inside the loop
    std::exception_ptr error CM_GUARDED_BY(mutex);
  };
  auto shared = std::make_shared<Shared>();
  auto drain = [shared, n, grain, &fn] {
    for (;;) {
      const std::size_t start = shared->next.fetch_add(grain);
      if (start >= n) return;
      const std::size_t stop = std::min(n, start + grain);
      try {
        for (std::size_t i = start; i < stop; ++i) fn(i);
      } catch (...) {
        MutexLock lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
        shared->next.store(n);  // cancel the remaining chunks
      }
    }
  };
  const std::size_t helpers = std::min(pool->worker_count(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    (void)pool->submit([shared, drain] {
      {
        MutexLock lock(shared->mutex);
        ++shared->active;
      }
      drain();
      {
        MutexLock lock(shared->mutex);
        --shared->active;
      }
      shared->idle.notify_all();
    });
  }
  drain();  // the calling thread always participates
  {
    // Helpers that have not bumped `active` yet can no longer reach fn (the
    // cursor is exhausted), so waiting for active == 0 is sufficient — and it
    // cannot deadlock on a saturated pool the way joining futures would.
    MutexLock lock(shared->mutex);
    while (shared->active != 0) shared->idle.wait(shared->mutex);
    if (shared->error) std::rethrow_exception(shared->error);
  }
}

}  // namespace crowdmap::common

// Fixed-size worker pool used by the cloud backend's parallel-processing
// pipeline (the paper's Spark cluster stand-in) and by the evaluation harness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace crowdmap::common {

/// Work-queue thread pool. Tasks are std::function<void()>; submit() returns
/// a future for the task's result. Destruction drains the queue then joins.
class ThreadPool {
 public:
  /// Fires with the queue depth after every enqueue/dequeue. Invoked under
  /// the pool lock: must be cheap and must not call back into the pool
  /// (feeding an obs::Gauge is the intended use).
  using QueueObserver = std::function<void(std::size_t depth)>;
  /// Fires with a task's wall-clock seconds after it finishes. Same rules.
  using TaskObserver = std::function<void(double seconds)>;

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void set_queue_observer(QueueObserver observer);
  void set_task_observer(TaskObserver observer);

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
      if (queue_observer_) queue_observer_(queue_.size());
    }
    cv_.notify_one();
    return future;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  QueueObserver queue_observer_;
  TaskObserver task_observer_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace crowdmap::common

// Fixed-size worker pool used by the cloud backend's parallel-processing
// pipeline (the paper's Spark cluster stand-in) and by the evaluation harness.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crowdmap::common {

/// Work-queue thread pool. Tasks are std::function<void()>; submit() returns
/// a future for the task's result. Destruction drains the queue then joins.
class ThreadPool {
 public:
  /// Fires with a snapshot of the queue depth after every enqueue/dequeue.
  /// Invoked OUTSIDE the pool lock so a slow observer cannot serialize the
  /// workers; consecutive depths may therefore arrive out of order (feeding
  /// an obs::Gauge, which only keeps the latest value, is the intended use).
  using QueueObserver = std::function<void(std::size_t depth)>;
  /// Fires with a task's wall-clock seconds after it finishes. Also invoked
  /// outside the lock.
  using TaskObserver = std::function<void(double seconds)>;

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void set_queue_observer(QueueObserver observer);
  void set_task_observer(TaskObserver observer);

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    std::size_t depth = 0;
    QueueObserver observer;
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
      depth = queue_.size();
      observer = queue_observer_;
    }
    cv_.notify_one();
    if (observer) observer(depth);
    return future;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  QueueObserver queue_observer_;
  TaskObserver task_observer_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [0, n), fanning chunks of `grain` indices out
/// over `pool`'s workers while the calling thread participates as well — a
/// null pool (or a trivially small loop) degrades to the plain serial loop.
///
/// Scheduling is dynamic (a shared atomic chunk cursor), so WHICH thread runs
/// a given index is nondeterministic; callers that need deterministic results
/// must make fn(i) write only to per-index state (slot i) and merge in index
/// order afterwards. The first exception thrown by fn is captured, the
/// remaining chunks are cancelled, and the exception is rethrown here.
///
/// Nesting is safe: because the caller drains the chunk cursor itself, every
/// parallel_for completes even when all pool workers are blocked inside other
/// parallel_for calls — queued helper tasks that arrive after the loop is
/// done find the cursor exhausted and return without touching fn.
template <typename F>
void parallel_for(ThreadPool* pool, std::size_t n, F&& fn,
                  std::size_t grain = 1) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->worker_count() == 0 || chunks < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared by value with the helper tasks so a helper that only gets
  // scheduled after this call returned still finds live state.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::size_t active = 0;  // helpers currently inside the chunk loop
    std::mutex mutex;
    std::condition_variable idle;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  auto drain = [shared, n, grain, &fn] {
    for (;;) {
      const std::size_t start = shared->next.fetch_add(grain);
      if (start >= n) return;
      const std::size_t stop = std::min(n, start + grain);
      try {
        for (std::size_t i = start; i < stop; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
        shared->next.store(n);  // cancel the remaining chunks
      }
    }
  };
  const std::size_t helpers = std::min(pool->worker_count(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    (void)pool->submit([shared, drain] {
      {
        std::lock_guard lock(shared->mutex);
        ++shared->active;
      }
      drain();
      {
        std::lock_guard lock(shared->mutex);
        --shared->active;
      }
      shared->idle.notify_all();
    });
  }
  drain();  // the calling thread always participates
  {
    // Helpers that have not bumped `active` yet can no longer reach fn (the
    // cursor is exhausted), so waiting for active == 0 is sufficient — and it
    // cannot deadlock on a saturated pool the way joining futures would.
    std::unique_lock lock(shared->mutex);
    shared->idle.wait(lock, [&shared] { return shared->active == 0; });
    if (shared->error) std::rethrow_exception(shared->error);
  }
}

}  // namespace crowdmap::common

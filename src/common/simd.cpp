#include "common/simd.hpp"

namespace crowdmap::common::simd {

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool runtime_cpu_supports(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Backend::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

std::string capability_report() {
  std::string out = "compiled=";
  out += backend_name(compiled_backend());
  out += " active=";
  out += backend_name(active_backend());
  out += " cpu:";
  for (const Backend b : {Backend::kSse2, Backend::kAvx2, Backend::kNeon}) {
    out += ' ';
    out += backend_name(b);
    out += runtime_cpu_supports(b) ? "=yes" : "=no";
  }
  return out;
}

}  // namespace crowdmap::common::simd

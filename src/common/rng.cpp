#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace crowdmap::common {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_u64(std::uint64_t key) noexcept {
  std::uint64_t state = key;
  return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return hash_u64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept { return hash_to_unit(next_u64()); }

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t tag) const noexcept {
  return Rng(hash_combine(seed_, tag));
}

}  // namespace crowdmap::common

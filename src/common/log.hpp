// Minimal leveled logger. The cloud backend and pipeline use it for progress
// and drop diagnostics; tests silence it by raising the level. The initial
// level honors the CROWDMAP_LOG_LEVEL environment variable (debug | info |
// warn | error | off, case-insensitive; default warn), so services and test
// runs control verbosity without code changes.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace crowdmap::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses a CROWDMAP_LOG_LEVEL-style name; `fallback` if unrecognized/empty.
[[nodiscard]] LogLevel parse_log_level(std::string_view name,
                                       LogLevel fallback = LogLevel::kWarn) noexcept;

/// Writes one line to stderr if `level` passes the global filter:
///   2026-08-05T12:34:56.789Z [INFO] (t03) component: message
/// Thread-safe (single formatted write).
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style helper: LOG(kInfo, "pipeline") << "stage done";
/// Checks the global filter once at construction; below-threshold streams
/// skip all formatting work, so hot paths may log freely.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level),
        component_(component),
        enabled_(static_cast<int>(level) >= static_cast<int>(log_level())) {}
  ~LogStream() {
    if (enabled_) log_line(level_, component_, buffer_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream buffer_;
};

}  // namespace crowdmap::common

#define CROWDMAP_LOG(level, component) \
  ::crowdmap::common::LogStream(::crowdmap::common::LogLevel::level, component)

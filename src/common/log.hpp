// Minimal leveled logger. The cloud backend and pipeline use it for progress
// and drop diagnostics; tests silence it by raising the level.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace crowdmap::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` passes the global filter.
/// Thread-safe (single formatted write).
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style helper: LOG(kInfo, "pipeline") << "stage done";
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStream() { log_line(level_, component_, buffer_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream buffer_;
};

}  // namespace crowdmap::common

#define CROWDMAP_LOG(level, component) \
  ::crowdmap::common::LogStream(::crowdmap::common::LogLevel::level, component)

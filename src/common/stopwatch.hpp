// Monotonic wall-clock stopwatch used by the latency experiments (Fig. 7c).
#pragma once

#include <chrono>

namespace crowdmap::common {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crowdmap::common

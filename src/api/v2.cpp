#include "api/v2.hpp"

#include <utility>

#include "sensors/serialize.hpp"

namespace crowdmap::api {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kRejectedChunks:
      return "rejected_chunks";
    case StatusCode::kWrongShard:
      return "wrong_shard";
    case StatusCode::kShedding:
      return "shedding";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kStorageUnavailable:
      return "storage_unavailable";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

inline namespace v2 {

namespace {

Status status_for(cluster::SubmitOutcome outcome) {
  switch (outcome) {
    case cluster::SubmitOutcome::kAccepted:
      return Status::Ok();
    case cluster::SubmitOutcome::kRejectedChunks:
      return Status::Error(StatusCode::kRejectedChunks,
                           "one or more chunks rejected; retransmit");
    case cluster::SubmitOutcome::kWrongShard:
      return Status::Error(StatusCode::kWrongShard,
                           "node is not the shard's acting primary");
    case cluster::SubmitOutcome::kShedding:
      return Status::Error(StatusCode::kShedding,
                           "acting primary over cluster.max_node_queue");
    case cluster::SubmitOutcome::kDeadlineExceeded:
      return Status::Error(StatusCode::kDeadlineExceeded,
                           "deadline elapsed before admission");
  }
  return Status::Error(StatusCode::kInternal, "unknown submit outcome");
}

}  // namespace

cluster::ClusterOptions Client::make_cluster_options(ClientOptions&& options,
                                                     Client* self) {
  cluster::ClusterOptions out;
  out.config = std::move(options.config);
  out.decoder = [self](const cloud::Document& doc) {
    return self->decode(doc);
  };
  out.workers_per_node = options.workers_per_node;
  out.chunk_bytes = options.chunk_bytes;
  out.storage_env = options.storage_env;
  return out;
}

Client::Client(ClientOptions options)
    : fallback_decoder_(std::move(options.decoder)),
      cluster_(make_cluster_options(std::move(options), this)) {}

std::optional<sim::SensorRichVideo> Client::decode(const cloud::Document& doc) {
  {
    common::MutexLock lock(mutex_);
    const auto it = videos_.find(doc.id);
    if (it != videos_.end()) return it->second;
  }
  if (fallback_decoder_) return fallback_decoder_(doc);
  return std::nullopt;
}

SubmitUploadResponse Client::to_response(
    const cluster::UploadTicket& ticket) const {
  SubmitUploadResponse response;
  response.status = status_for(ticket.outcome);
  response.chunks_sent = ticket.chunks_sent;
  response.chunks_rejected = ticket.chunks_rejected;
  response.node = ticket.node;
  response.seqno = ticket.seqno;
  return response;
}

SubmitUploadResponse Client::submit_upload(const SubmitUploadRequest& request) {
  return to_response(cluster_.submit_upload(request.upload_id,
                                            request.building, request.floor,
                                            request.payload,
                                            request.options.deadline_tick));
}

SubmitUploadResponse Client::submit_upload_to(
    std::size_t node, const SubmitUploadRequest& request) {
  return to_response(cluster_.submit_upload_to(
      node, request.upload_id, request.building, request.floor,
      request.payload, request.options.deadline_tick));
}

SubmitUploadResponse Client::submit_video(const sim::SensorRichVideo& video,
                                          const RequestOptions& options) {
  SubmitUploadRequest request;
  request.upload_id = "video-" + std::to_string(video.video_id);
  request.building = video.building;
  request.floor = video.floor;
  // The pixels stay in "blob storage" (the side table); the wire payload is
  // the serialized inertial stream, so chunking sees realistic bytes.
  request.payload = sensors::encode_imu(video.imu);
  request.options = options;
  {
    common::MutexLock lock(mutex_);
    videos_[request.upload_id] = video;
  }
  return submit_upload(request);
}

void Client::drain() { cluster_.drain(); }

BuildPlanResponse Client::build_plan(const BuildPlanRequest& request) {
  BuildPlanResponse response;
  if (request.options.deadline_tick != 0 &&
      cluster_.now_tick() > request.options.deadline_tick) {
    response.status = Status::Error(StatusCode::kDeadlineExceeded,
                                    "deadline elapsed before admission");
    return response;
  }
  response.result = cluster_.build_floor_plan(request.building, request.floor,
                                              request.frame, &response.node);
  response.degradation = response.result.degradation;
  response.cache = response.result.diagnostics.cache;
  response.metrics = cluster_.metrics();
  return response;
}

std::shared_ptr<const core::PipelineResult> Client::latest_plan(
    const std::string& building, int floor) const {
  return cluster_.latest_plan(building, floor);
}

std::vector<trajectory::Trajectory> Client::trajectories(
    const std::string& building, int floor) const {
  return cluster_.trajectories(building, floor);
}

bool Client::persist_artifact_cache(const std::string& building, int floor) {
  return cluster_.persist_artifact_cache(building, floor);
}

std::size_t Client::warm_artifact_cache_from(
    const cloud::DocumentStore& store) {
  return cluster_.warm_artifact_cache_from(store);
}

common::Expected<storage::RecoveryReport> Client::recover_storage() {
  return cluster_.recover_storage();
}

storage::Status Client::checkpoint_storage() {
  return cluster_.checkpoint_storage();
}

cloud::DurabilityStats Client::durability_stats() const {
  return cluster_.durability_stats();
}

std::size_t Client::nodes() const { return cluster_.node_count(); }

std::string Client::node_name(std::size_t node) const {
  return cluster_.node_name(node);
}

cluster::ShardView Client::shard_of(const std::string& building,
                                    int floor) const {
  return cluster_.shard_of(building, floor);
}

std::size_t Client::add_node() { return cluster_.add_node(); }

bool Client::remove_node(std::size_t node) {
  return cluster_.remove_node(node);
}

std::uint64_t Client::now_tick() const noexcept { return cluster_.now_tick(); }

const cloud::DocumentStore& Client::document_store(std::size_t node) const {
  return cluster_.document_store(node);
}

cloud::ServiceStats Client::stats() const { return cluster_.stats(); }

cloud::ServiceStats Client::node_stats(std::size_t node) const {
  return cluster_.node_stats(node);
}

obs::MetricsSnapshot Client::metrics() const { return cluster_.metrics(); }

std::optional<obs::FlightDump> Client::flight_dump(std::size_t node,
                                                   bool deterministic) {
  return cluster_.flight_dump(node, deterministic);
}

std::optional<obs::FlightDump> Client::router_flight_dump(bool deterministic) {
  return cluster_.router_flight_dump(deterministic);
}

}  // namespace v2
}  // namespace crowdmap::api

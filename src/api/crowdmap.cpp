#include "api/crowdmap.hpp"

#include <utility>

#include "cloud/chunking.hpp"
#include "sensors/serialize.hpp"

namespace crowdmap::api {
namespace v1 {

Client::Client(ClientOptions options)
    : chunk_bytes_(options.chunk_bytes == 0 ? 4096 : options.chunk_bytes),
      fallback_decoder_(std::move(options.decoder)),
      service_(
          std::move(options.config),
          [this](const cloud::Document& doc) { return decode(doc); },
          options.workers, std::move(options.registry),
          options.storage_env) {}

std::optional<sim::SensorRichVideo> Client::decode(const cloud::Document& doc) {
  {
    common::MutexLock lock(mutex_);
    const auto it = videos_.find(doc.id);
    if (it != videos_.end()) return it->second;
  }
  if (fallback_decoder_) return fallback_decoder_(doc);
  return std::nullopt;
}

SubmitUploadResponse Client::submit_upload(const SubmitUploadRequest& request) {
  service_.open_session(request.upload_id, request.building, request.floor);
  SubmitUploadResponse response;
  for (const auto& chunk : cloud::split_into_chunks(
           request.payload, request.upload_id, chunk_bytes_)) {
    ++response.chunks_sent;
    if (service_.deliver(chunk) == cloud::IngestStatus::kRejected) {
      ++response.chunks_rejected;
    }
  }
  response.accepted = response.chunks_rejected == 0;
  return response;
}

SubmitUploadResponse Client::submit_video(const sim::SensorRichVideo& video) {
  SubmitUploadRequest request;
  request.upload_id = "video-" + std::to_string(video.video_id);
  request.building = video.building;
  request.floor = video.floor;
  // The pixels stay in "blob storage" (the side table); the wire payload is
  // the serialized inertial stream, so chunking sees realistic bytes.
  request.payload = sensors::encode_imu(video.imu);
  {
    common::MutexLock lock(mutex_);
    videos_[request.upload_id] = video;
  }
  return submit_upload(request);
}

void Client::drain() { service_.drain(); }

BuildPlanResponse Client::build_plan(const BuildPlanRequest& request) {
  BuildPlanResponse response;
  response.result =
      service_.build_floor_plan(request.building, request.floor, request.frame);
  response.degradation = response.result.degradation;
  response.cache = response.result.diagnostics.cache;
  response.metrics = service_.metrics().snapshot();
  return response;
}

std::shared_ptr<const core::PipelineResult> Client::latest_plan(
    const std::string& building, int floor) const {
  return service_.latest_plan(building, floor);
}

std::vector<trajectory::Trajectory> Client::trajectories(
    const std::string& building, int floor) const {
  return service_.trajectories(building, floor);
}

bool Client::persist_artifact_cache(const std::string& building, int floor) {
  return service_.persist_artifact_cache(building, floor);
}

std::size_t Client::warm_artifact_cache_from(const cloud::DocumentStore& store) {
  return service_.warm_artifact_cache_from(store);
}

common::Expected<storage::RecoveryReport> Client::recover_storage() {
  return service_.recover_from_storage();
}

storage::Status Client::checkpoint_storage() {
  return service_.checkpoint_storage();
}

cloud::DurabilityStats Client::durability_stats() const {
  return service_.stats().durability;
}

std::optional<obs::FlightDump> Client::flight_dump(bool deterministic) {
  obs::FlightRecorder* flight = service_.flight_recorder();
  if (flight == nullptr) return std::nullopt;
  return deterministic ? flight->deterministic_dump() : flight->dump();
}

cloud::ServiceStats Client::stats() const { return service_.stats(); }

obs::MetricsSnapshot Client::metrics() const {
  return service_.metrics().snapshot();
}

}  // namespace v1
}  // namespace crowdmap::api

// crowdmap::api::v2 — the cluster-aware facade (docs/API.md, docs/CLUSTER.md).
//
// v2 is the inline version: `api::Client` resolves here, `api::v2::Client`
// pins it. The client fronts a crowdmap::cluster::Cluster — N in-process
// nodes behind a consistent-hash router — instead of one CrowdMapService;
// with config.cluster.nodes == 1 (the default) it behaves exactly like v1
// and its plans are byte-identical to v1's over the same campaign.
//
// What changed from v1 (docs/API.md has the migration table):
//  - Responses carry a structured api::Status instead of a bare bool:
//    kRejectedChunks / kWrongShard / kShedding / kDeadlineExceeded /
//    kStorageUnavailable, each caller-actionable.
//  - Requests take RequestOptions with a request-scoped deadline (a logical
//    router tick bound, deterministic like everything else).
//  - The `service()` escape hatch is gone. Capabilities the facade models
//    are first-class (document_store(), shard_of(), node_stats(), ...);
//    anything else is a missing feature, not a reason to reach inside. The
//    crowdmap_lint `api-escape-hatch` rule flags service() calls outside
//    src/ to keep it that way.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "cluster/cluster.hpp"
#include "common/annotations.hpp"
#include "core/pipeline.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace crowdmap::api {
inline namespace v2 {

/// Client construction options. Defaults give a self-contained single-node
/// in-process backend; config.cluster.* sizes the topology.
struct ClientOptions {
  core::PipelineConfig config;
  /// Extraction/refresh worker threads per node.
  std::size_t workers_per_node = 2;
  /// Fallback decoder for payloads submit_video() did not register (a
  /// deployment's real codec). Shared cluster-wide so any replica can
  /// extract a replicated upload.
  cloud::VideoDecoder decoder;
  /// Wire chunk size for submit_upload/submit_video payload chunking.
  std::size_t chunk_bytes = 4096;
  /// Filesystem per-node durable stores write through (borrowed, must
  /// outlive the client); null uses the real posix env. Only consulted when
  /// config.storage.dir is non-empty (node i gets "<dir>/node-<i>").
  storage::Env* storage_env = nullptr;
};

/// Per-request knobs, shared by submit and build requests.
struct RequestOptions {
  /// Absolute router-tick deadline (Client::now_tick() frame); 0 = none.
  /// Checked at admission: a request arriving after its deadline fails
  /// with kDeadlineExceeded before touching any node.
  std::uint64_t deadline_tick = 0;
};

/// One chunked upload through a shard's ingestion front door.
struct SubmitUploadRequest {
  std::string upload_id;
  std::string building;
  int floor = 1;
  cloud::Blob payload;
  RequestOptions options;
};

struct SubmitUploadResponse {
  /// kOk when every chunk was accepted, the upload reassembled and its
  /// record committed to the shard log.
  Status status;
  std::size_t chunks_sent = 0;
  std::size_t chunks_rejected = 0;
  /// Acting primary the upload was routed to (valid for every status).
  std::size_t node = 0;
  /// Shard-log seqno of the committed record (0 when nothing committed).
  std::uint64_t seqno = 0;
};

/// Builds (or incrementally refreshes) one floor's plan on its shard.
struct BuildPlanRequest {
  std::string building;
  int floor = 1;
  /// Optional output frame (evaluation: align onto ground truth).
  std::optional<core::WorldFrame> frame;
  RequestOptions options;
};

struct BuildPlanResponse {
  Status status;
  /// Valid only when status.ok().
  core::PipelineResult result;
  /// == result.degradation, surfaced so callers need not dig.
  core::DegradationReport degradation;
  /// How much of the refresh replayed from the artifact cache.
  core::CacheReuseStats cache;
  /// Cluster-wide merged metrics snapshot after the build.
  obs::MetricsSnapshot metrics;
  /// Node the plan was built on.
  std::size_t node = 0;
};

/// The versioned entry point. Thread-safe; one instance per backend.
class Client {
 public:
  explicit Client(ClientOptions options = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits one pre-encoded upload payload in chunks through its shard's
  /// ingestion front door; the reassembled record is committed to the shard
  /// log and replicated before the response comes back.
  SubmitUploadResponse submit_upload(const SubmitUploadRequest& request);

  /// Direct-to-node submission (a client with stale routing): fails with
  /// kWrongShard unless `node` is the shard's acting primary.
  SubmitUploadResponse submit_upload_to(std::size_t node,
                                        const SubmitUploadRequest& request);

  /// Convenience for simulation/evaluation: registers the video with the
  /// cluster-wide side-table decoder, then submits its serialized inertial
  /// stream as the wire payload (upload id "video-<video_id>"). Extraction
  /// is async — drain() or build_plan() to observe the result.
  SubmitUploadResponse submit_video(const sim::SensorRichVideo& video,
                                    const RequestOptions& options = {});

  /// Blocks until deliverable parked replication has flushed and every
  /// node's queued extraction (and background refresh) work finished.
  void drain();

  /// Routes to the floor's acting primary, resyncs it from the shard log,
  /// drains it, then refreshes the plan. Repeat builds reuse every artifact
  /// untouched by new uploads and stay byte-identical to a cold rebuild —
  /// at any node count (docs/CLUSTER.md has the determinism proof sketch).
  [[nodiscard]] BuildPlanResponse build_plan(const BuildPlanRequest& request);

  /// Last complete plan without forcing a rebuild (null before the first);
  /// pair with ClientOptions::config.incremental.background_refresh.
  [[nodiscard]] std::shared_ptr<const core::PipelineResult> latest_plan(
      const std::string& building, int floor = 1) const;

  /// Admitted trajectories of one floor in canonical (video_id) order,
  /// served by the floor's acting primary after a shard-log resync.
  [[nodiscard]] std::vector<trajectory::Trajectory> trajectories(
      const std::string& building, int floor = 1) const;

  /// Snapshots one floor's artifact cache into its primary's document
  /// store; warm_artifact_cache_from() on a future client restores it.
  bool persist_artifact_cache(const std::string& building, int floor = 1);
  std::size_t warm_artifact_cache_from(const cloud::DocumentStore& store);

  /// Replays every node's durable store (config.storage.dir) back into the
  /// backend; reports are aggregated. Never throws; "storage.disabled" when
  /// persistence is off (docs/DURABILITY.md).
  common::Expected<storage::RecoveryReport> recover_storage();

  /// Drains, persists artifact caches, snapshots every node's store and
  /// compacts its WAL — the clean-shutdown/flush path.
  storage::Status checkpoint_storage();

  /// Durable-store facts aggregated over nodes (stats().durability).
  [[nodiscard]] cloud::DurabilityStats durability_stats() const;

  // ------------------------------------------------ cluster topology ---

  /// Nodes currently in the routing ring.
  [[nodiscard]] std::size_t nodes() const;
  [[nodiscard]] std::string node_name(std::size_t node) const;
  /// Shard ownership of one floor: ring preference order, primary first.
  [[nodiscard]] cluster::ShardView shard_of(const std::string& building,
                                            int floor = 1) const;
  /// Node join/leave with (config.cluster.rebalance) eager shard resync.
  std::size_t add_node();
  bool remove_node(std::size_t node);
  /// Current router logical tick — the frame deadline_tick lives in.
  [[nodiscard]] std::uint64_t now_tick() const noexcept;

  // ------------------------------------- narrow versioned accessors ---
  // v2 deliberately has no service() escape hatch; these cover what the
  // in-tree callers of v1's escape hatch actually needed.

  /// One node's document store (read-only).
  [[nodiscard]] const cloud::DocumentStore& document_store(
      std::size_t node = 0) const;
  /// Health counters summed over live nodes / of one node.
  [[nodiscard]] cloud::ServiceStats stats() const;
  [[nodiscard]] cloud::ServiceStats node_stats(std::size_t node) const;
  /// Merged snapshot: router families plus every node's families with a
  /// {"node", "node-<i>"} label appended.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>&
  metrics_registry() const noexcept {
    return cluster_.router_registry();
  }

  /// On-demand dump of one node's flight-recorder rings; std::nullopt when
  /// ClientOptions::config.flight.enabled == false.
  [[nodiscard]] std::optional<obs::FlightDump> flight_dump(
      std::size_t node = 0, bool deterministic = false);
  /// The router's own rings (routing, replication, shedding).
  [[nodiscard]] std::optional<obs::FlightDump> router_flight_dump(
      bool deterministic = false);

  /// The backing cluster, for tests that drive topology/fault seams the
  /// facade does not model (shard logs, per-node registries). Versioned —
  /// part of the v2 surface, unlike v1's unversioned service().
  [[nodiscard]] cluster::Cluster& cluster() noexcept { return cluster_; }

 private:
  std::optional<sim::SensorRichVideo> decode(const cloud::Document& doc);
  [[nodiscard]] static cluster::ClusterOptions make_cluster_options(
      ClientOptions&& options, Client* self);
  SubmitUploadResponse to_response(const cluster::UploadTicket& ticket) const;

  cloud::VideoDecoder fallback_decoder_;
  mutable common::Mutex mutex_;
  /// Cluster-wide side table for submit_video: upload id -> video,
  /// registered *before* the first chunk is delivered (extraction may start
  /// immediately after the last chunk lands — on any replica).
  std::map<std::string, sim::SensorRichVideo> videos_ CM_GUARDED_BY(mutex_);
  /// mutable: the cluster is internally synchronized, and const read paths
  /// (latest_plan, trajectories) still route — which ticks router counters.
  mutable cluster::Cluster cluster_;  // last: its decoder captures `this`
};

}  // namespace v2
}  // namespace crowdmap::api

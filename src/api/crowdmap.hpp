// crowdmap::api — the versioned public facade of the CrowdMap backend.
//
// Everything outside src/ (the CLI, the evaluation harness, service tests,
// embedders) talks to the system through api::Client. The newest version is
// the inline namespace — today `v2` (api/v2.hpp), the cluster-aware facade —
// while `api::v1::Client` pins this file's single-service surface for
// existing callers. Additive evolution happens in place; breaking changes
// introduce the next version alongside, and pinned callers keep compiling.
//
// v1 wraps one assembled cloud backend (CrowdMapService): chunked uploads
// through the real ingestion front door, asynchronous feature extraction,
// and per-floor incremental reconstruction with content-addressed artifact
// reuse (docs/API.md, docs/INCREMENTAL.md).
//
// Construction of core::CrowdMapPipeline directly is an internal concern;
// the crowdmap_lint `pipeline-construction` rule flags it outside src/.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/service.hpp"
#include "common/annotations.hpp"
#include "core/incremental.hpp"
#include "core/pipeline.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace crowdmap::api {
namespace v1 {

/// Client construction options. Defaults give a self-contained in-process
/// backend: fresh metrics registry, side-table video decoding, two workers.
struct ClientOptions {
  core::PipelineConfig config;
  /// Extraction/refresh worker threads of the backing service pool.
  std::size_t workers = 2;
  /// Shared registry (e.g. one exporter endpoint across services); null
  /// creates a client-local one.
  std::shared_ptr<obs::MetricsRegistry> registry;
  /// Fallback decoder for payloads submit_video() did not register (a
  /// deployment's real codec). Null: only submit_video uploads decode.
  cloud::VideoDecoder decoder;
  /// Wire chunk size for submit_upload/submit_video payload chunking.
  std::size_t chunk_bytes = 4096;
  /// Filesystem the durable store writes through (borrowed, must outlive
  /// the client); null uses the real posix env. Only consulted when
  /// config.storage.dir is non-empty. Chaos tests pass a storage::FaultEnv.
  storage::Env* storage_env = nullptr;
};

/// One chunked upload through the ingestion front door.
struct SubmitUploadRequest {
  std::string upload_id;
  std::string building;
  int floor = 1;
  cloud::Blob payload;
};

struct SubmitUploadResponse {
  /// Every chunk was accepted and the upload reassembled.
  bool accepted = false;
  std::size_t chunks_sent = 0;
  std::size_t chunks_rejected = 0;
};

/// Builds (or incrementally refreshes) one floor's plan.
struct BuildPlanRequest {
  std::string building;
  int floor = 1;
  /// Optional output frame (evaluation: align onto ground truth).
  std::optional<core::WorldFrame> frame;
};

struct BuildPlanResponse {
  core::PipelineResult result;
  /// What a degraded run salvaged/lost, front door included (== result
  /// .degradation; surfaced separately so callers need not dig).
  core::DegradationReport degradation;
  /// How much of the refresh replayed from the artifact cache.
  core::CacheReuseStats cache;
  /// Snapshot of the backend's metrics registry after the build.
  obs::MetricsSnapshot metrics;
};

/// The versioned entry point. Thread-safe; one instance per backend.
class Client {
 public:
  explicit Client(ClientOptions options = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits one pre-encoded upload payload in chunks through ingestion.
  SubmitUploadResponse submit_upload(const SubmitUploadRequest& request);

  /// Convenience for simulation/evaluation: registers the video with the
  /// side-table decoder, then submits its serialized inertial stream as the
  /// wire payload (upload id "video-<video_id>"). Extraction is async —
  /// drain() or build_plan() to observe the result.
  SubmitUploadResponse submit_video(const sim::SensorRichVideo& video);

  /// Blocks until queued extraction (and background refresh) work finished.
  void drain();

  /// Drains, then refreshes the floor's plan. Repeat builds reuse every
  /// artifact untouched by new uploads and stay byte-identical to a cold
  /// rebuild (docs/INCREMENTAL.md).
  [[nodiscard]] BuildPlanResponse build_plan(const BuildPlanRequest& request);

  /// Last complete plan without forcing a rebuild (null before the first);
  /// pair with ClientOptions::config.incremental.background_refresh.
  [[nodiscard]] std::shared_ptr<const core::PipelineResult> latest_plan(
      const std::string& building, int floor = 1) const;

  /// Admitted trajectories of one floor in canonical (video_id) order.
  [[nodiscard]] std::vector<trajectory::Trajectory> trajectories(
      const std::string& building, int floor = 1) const;

  /// Snapshots one floor's artifact cache into the service's document store;
  /// warm_artifact_cache_from() on a future client restores it.
  bool persist_artifact_cache(const std::string& building, int floor = 1);
  std::size_t warm_artifact_cache_from(const cloud::DocumentStore& store);

  /// Replays the durable store (config.storage.dir) back into the backend:
  /// snapshot + WAL with damaged tails quarantined, artifact-cache
  /// warm-start, extraction re-dispatch. Never throws; "storage.disabled"
  /// when persistence is off. Call once, before submitting new uploads
  /// (docs/DURABILITY.md).
  common::Expected<storage::RecoveryReport> recover_storage();

  /// Drains, persists artifact caches, snapshots the store and compacts the
  /// WAL — the clean-shutdown/flush path of a durable backend.
  storage::Status checkpoint_storage();

  /// Durable-store facts (stats().durability shorthand).
  [[nodiscard]] cloud::DurabilityStats durability_stats() const;

  /// On-demand dump of the backend's flight-recorder rings; std::nullopt
  /// when ClientOptions::config.flight.enabled == false. `deterministic`
  /// filters inherently racy kinds and zeroes wall/thread stamps so the
  /// dump is byte-stable across thread counts (docs/OBSERVABILITY.md).
  [[nodiscard]] std::optional<obs::FlightDump> flight_dump(
      bool deterministic = false);

  [[nodiscard]] cloud::ServiceStats stats() const;
  [[nodiscard]] obs::MetricsSnapshot metrics() const;
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics_registry()
      const noexcept {
    return service_.metrics_registry();
  }

  /// The backing store (read-only) — the narrow accessor callers should
  /// prefer over the service() escape hatch.
  [[nodiscard]] const cloud::DocumentStore& document_store() const noexcept {
    return service_.store();
  }

  /// Escape hatch to the backing service for capabilities the facade does
  /// not (yet) model. Carries no version guarantees. Deprecated: v2 removed
  /// it in favor of narrow versioned accessors, and the crowdmap_lint
  /// `api-escape-hatch` rule flags calls outside src/.
  [[nodiscard]] cloud::CrowdMapService& service() noexcept { return service_; }

 private:
  std::optional<sim::SensorRichVideo> decode(const cloud::Document& doc);

  std::size_t chunk_bytes_;
  cloud::VideoDecoder fallback_decoder_;
  mutable common::Mutex mutex_;
  /// Side table for submit_video: upload id -> video, registered *before*
  /// the first chunk is delivered (extraction may start immediately after
  /// the last chunk lands).
  std::map<std::string, sim::SensorRichVideo> videos_ CM_GUARDED_BY(mutex_);
  cloud::CrowdMapService service_;  // last: its decoder captures `this`
};

}  // namespace v1
}  // namespace crowdmap::api

// The current version: api::Client resolves to api::v2::Client.
#include "api/v2.hpp"  // IWYU pragma: export

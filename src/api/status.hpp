// api::Status — the structured error model of the v2 facade (docs/API.md).
// Version-independent: codes live directly in crowdmap::api so a future v3
// shares them, and each code names a caller-actionable condition (retry the
// rejected chunks, refresh routing, back off, fix the deployment) instead of
// a bare bool. v1's boolean `accepted` maps onto kOk / kRejectedChunks.
#pragma once

#include <string>
#include <string_view>

namespace crowdmap::api {

/// Stable, append-only catalog of request outcomes.
enum class StatusCode : int {
  kOk = 0,
  /// >=1 chunk was rejected or the upload never reassembled; retransmit.
  kRejectedChunks = 1,
  /// Direct-to-node request hit a non-primary for the shard; refresh
  /// routing (shard_of) and resend.
  kWrongShard = 2,
  /// The acting primary is over cluster.max_node_queue; back off and retry.
  kShedding = 3,
  /// The request-scoped deadline elapsed before admission.
  kDeadlineExceeded = 4,
  /// The durable store refused the operation (persistence disabled or the
  /// backing log failed); operator attention, not a retry.
  kStorageUnavailable = 5,
  /// The addressed entity (floor, node, document) does not exist.
  kNotFound = 6,
  /// No node can currently serve the shard (all replicas partitioned).
  kUnavailable = 7,
  /// Invariant violation inside the backend; report a bug.
  kInternal = 8,
};

/// Catalog name of a code ("ok", "rejected_chunks", ...); "unknown" for
/// junk input. Stable — exported into logs and CI artifacts.
[[nodiscard]] std::string_view to_string(StatusCode code) noexcept;

/// Outcome of one v2 request: a code plus a human-readable detail message
/// (empty on success). Cheap to copy; returned by value in every response.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return code == StatusCode::kOk; }

  [[nodiscard]] static Status Ok() { return {}; }
  [[nodiscard]] static Status Error(StatusCode code, std::string message) {
    return {code, std::move(message)};
  }

  friend bool operator==(const Status& a, const Status& b) = default;
};

}  // namespace crowdmap::api

#include "vision/lines.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>

#include "common/mathutil.hpp"

namespace crowdmap::vision {

double LineSegment::length() const noexcept {
  return std::hypot(x1 - x0, y1 - y0);
}

double LineSegment::angle() const noexcept {
  double a = std::atan2(y1 - y0, x1 - x0);
  if (a < 0) a += std::numbers::pi;
  if (a >= std::numbers::pi) a -= std::numbers::pi;
  return a;
}

std::vector<LineSegment> detect_line_segments(const imaging::Image& img,
                                              const LsdParams& params) {
  std::vector<LineSegment> segments;
  if (img.width() < 4 || img.height() < 4) return segments;
  const auto grads = imaging::sobel_gradients(img);
  const int w = img.width();
  const int h = img.height();

  // Level-line angle (perpendicular to gradient) and magnitude per pixel.
  std::vector<double> angle(static_cast<std::size_t>(w) * h, 0.0);
  std::vector<double> mag(static_cast<std::size_t>(w) * h, 0.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double gx = grads.gx.at(x, y);
      const double gy = grads.gy.at(x, y);
      const std::size_t idx = static_cast<std::size_t>(y) * w + x;
      mag[idx] = std::hypot(gx, gy);
      angle[idx] = std::atan2(gx, -gy);  // level-line direction
    }
  }

  // Visit pixels in decreasing magnitude order (pseudo-ordering by buckets,
  // as in LSD).
  std::vector<std::size_t> order(static_cast<std::size_t>(w) * h);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&mag](std::size_t a, std::size_t b) { return mag[a] > mag[b]; });

  std::vector<bool> used(static_cast<std::size_t>(w) * h, false);
  auto angle_close = [&](double a, double b) {
    double d = std::abs(a - b);
    while (d > std::numbers::pi) d = std::abs(d - 2.0 * std::numbers::pi);
    // Level-line angles are mod pi for segment purposes.
    if (d > std::numbers::pi / 2) d = std::numbers::pi - d;
    return d <= params.angle_tolerance;
  };

  for (const std::size_t seed : order) {
    if (used[seed] || mag[seed] < params.magnitude_threshold) continue;
    // Region growing.
    std::vector<std::size_t> region;
    std::deque<std::size_t> frontier{seed};
    used[seed] = true;
    double region_angle = angle[seed];
    double sum_cos = std::cos(2.0 * region_angle);
    double sum_sin = std::sin(2.0 * region_angle);
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      region.push_back(cur);
      const int cx = static_cast<int>(cur % w);
      const int cy = static_cast<int>(cur / w);
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = cx + dx;
          const int ny = cy + dy;
          if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
          const std::size_t nidx = static_cast<std::size_t>(ny) * w + nx;
          if (used[nidx] || mag[nidx] < params.magnitude_threshold) continue;
          if (!angle_close(angle[nidx], region_angle)) continue;
          used[nidx] = true;
          frontier.push_back(nidx);
          // Update the region angle (doubled-angle mean for mod-pi data).
          sum_cos += std::cos(2.0 * angle[nidx]);
          sum_sin += std::sin(2.0 * angle[nidx]);
          region_angle = 0.5 * std::atan2(sum_sin, sum_cos);
        }
      }
    }
    if (static_cast<int>(region.size()) < params.min_region_size) continue;

    // PCA fit of the region weighted by gradient magnitude.
    double wsum = 0.0;
    double mx = 0.0;
    double my = 0.0;
    for (const std::size_t idx : region) {
      const double wt = mag[idx];
      mx += wt * static_cast<double>(idx % w);
      my += wt * static_cast<double>(idx / w);
      wsum += wt;
    }
    mx /= wsum;
    my /= wsum;
    double sxx = 0.0;
    double syy = 0.0;
    double sxy = 0.0;
    for (const std::size_t idx : region) {
      const double wt = mag[idx];
      const double dx = static_cast<double>(idx % w) - mx;
      const double dy = static_cast<double>(idx / w) - my;
      sxx += wt * dx * dx;
      syy += wt * dy * dy;
      sxy += wt * dx * dy;
    }
    const double theta = 0.5 * std::atan2(2.0 * sxy, sxx - syy);
    const double ux = std::cos(theta);
    const double uy = std::sin(theta);
    double tmin = 0.0;
    double tmax = 0.0;
    for (const std::size_t idx : region) {
      const double t = (static_cast<double>(idx % w) - mx) * ux +
                       (static_cast<double>(idx / w) - my) * uy;
      tmin = std::min(tmin, t);
      tmax = std::max(tmax, t);
    }
    LineSegment seg;
    seg.x0 = mx + tmin * ux;
    seg.y0 = my + tmin * uy;
    seg.x1 = mx + tmax * ux;
    seg.y1 = my + tmax * uy;
    seg.strength = wsum;
    if (seg.length() >= params.min_length) segments.push_back(seg);
  }
  return segments;
}

std::vector<HoughLine> hough_lines(const std::vector<LineSegment>& segments,
                                   int theta_bins, double rho_resolution,
                                   std::size_t max_peaks) {
  std::vector<HoughLine> peaks;
  if (segments.empty()) return peaks;
  double max_rho = 0.0;
  for (const auto& s : segments) {
    max_rho = std::max({max_rho, std::hypot(s.x0, s.y0), std::hypot(s.x1, s.y1)});
  }
  const int rho_bins = std::max(4, static_cast<int>(2.0 * max_rho / rho_resolution) + 1);
  std::vector<double> acc(static_cast<std::size_t>(theta_bins) * rho_bins, 0.0);
  auto acc_at = [&](int t, int r) -> double& {
    return acc[static_cast<std::size_t>(t) * rho_bins + r];
  };
  for (const auto& s : segments) {
    // Each segment votes along its own normal direction with its strength.
    const double seg_angle = s.angle();
    double normal = seg_angle + std::numbers::pi / 2.0;
    if (normal >= std::numbers::pi) normal -= std::numbers::pi;
    const int t = std::min(theta_bins - 1,
                           static_cast<int>(normal / std::numbers::pi * theta_bins));
    const double midx = (s.x0 + s.x1) / 2.0;
    const double midy = (s.y0 + s.y1) / 2.0;
    const double theta = (t + 0.5) * std::numbers::pi / theta_bins;
    const double rho = midx * std::cos(theta) + midy * std::sin(theta);
    const int r = std::clamp(
        static_cast<int>((rho + max_rho) / rho_resolution), 0, rho_bins - 1);
    acc_at(t, r) += s.strength * s.length();
  }
  // Peak extraction with 3x3 non-max suppression.
  for (std::size_t n = 0; n < max_peaks; ++n) {
    double best = 0.0;
    int bt = -1;
    int br = -1;
    for (int t = 0; t < theta_bins; ++t) {
      for (int r = 0; r < rho_bins; ++r) {
        if (acc_at(t, r) > best) {
          best = acc_at(t, r);
          bt = t;
          br = r;
        }
      }
    }
    if (bt < 0 || best <= 0.0) break;
    HoughLine line;
    line.theta = (bt + 0.5) * std::numbers::pi / theta_bins;
    line.rho = br * rho_resolution - max_rho;
    line.votes = best;
    peaks.push_back(line);
    for (int dt = -2; dt <= 2; ++dt) {
      for (int dr = -2; dr <= 2; ++dr) {
        const int t = (bt + dt + theta_bins) % theta_bins;
        const int r = br + dr;
        if (r >= 0 && r < rho_bins) acc_at(t, r) = 0.0;
      }
    }
  }
  return peaks;
}

std::vector<double> vertical_line_columns(const std::vector<LineSegment>& segments,
                                          int image_width,
                                          double verticality_tolerance,
                                          std::size_t max_columns) {
  std::vector<double> votes(static_cast<std::size_t>(std::max(image_width, 1)), 0.0);
  for (const auto& s : segments) {
    const double a = s.angle();  // [0, pi); vertical is pi/2
    if (std::abs(a - std::numbers::pi / 2.0) > verticality_tolerance) continue;
    const int col = std::clamp(static_cast<int>((s.x0 + s.x1) / 2.0), 0,
                               image_width - 1);
    votes[static_cast<std::size_t>(col)] += s.strength * s.length();
  }
  std::vector<double> columns;
  const int suppress = std::max(2, image_width / 64);
  for (std::size_t n = 0; n < max_columns; ++n) {
    double best = 0.0;
    int bc = -1;
    for (int c = 0; c < image_width; ++c) {
      if (votes[static_cast<std::size_t>(c)] > best) {
        best = votes[static_cast<std::size_t>(c)];
        bc = c;
      }
    }
    if (bc < 0 || best <= 0.0) break;
    columns.push_back(static_cast<double>(bc));
    for (int c = std::max(0, bc - suppress);
         c <= std::min(image_width - 1, bc + suppress); ++c) {
      votes[static_cast<std::size_t>(c)] = 0.0;
    }
  }
  std::sort(columns.begin(), columns.end());
  return columns;
}

}  // namespace crowdmap::vision

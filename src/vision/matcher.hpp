// Algorithm 1 of the paper: mutual-nearest-neighbor SURF descriptor matching
// with a distance gate h_d, and the similarity score
//   S2(F1, F2) = |A| / |F1 ∪ F2|.
#pragma once

#include <cstddef>
#include <vector>

#include "vision/surf.hpp"

namespace crowdmap::vision {

/// A good match: indices into the two feature sets.
struct FeatureMatch {
  std::size_t index1 = 0;
  std::size_t index2 = 0;
  double distance = 0.0;
};

/// Mutual-nearest-neighbor matching (the paper's Algorithm 1):
/// f2 = NN(f1, F2); f* = NN(f2, F1); keep (f1, f2) iff f* == f1 and
/// d(f1, f2) < distance_threshold. The Laplacian sign is used as a fast
/// reject, as in the original SURF paper. `nn_ratio` additionally applies
/// Lowe's ratio test (d1/d2 < ratio against the second-nearest neighbor);
/// pass 1.0 to disable — the paper's Algorithm 1 uses the absolute gate
/// only, but repetitive indoor texture needs the ratio gate in practice.
[[nodiscard]] std::vector<FeatureMatch> mutual_nn_matches(
    const std::vector<SurfFeature>& f1, const std::vector<SurfFeature>& f2,
    double distance_threshold, double nn_ratio = 1.0);

/// S2 = |A| / |F1 ∪ F2| = |A| / (|F1| + |F2| - |A|)  (eq. 1).
/// The match set A is one-to-one, so |F1 ∪ F2| counts matched pairs once.
[[nodiscard]] double similarity_s2(std::size_t matches, std::size_t n1,
                                   std::size_t n2) noexcept;

/// Convenience: match then score.
[[nodiscard]] double match_score_s2(const std::vector<SurfFeature>& f1,
                                    const std::vector<SurfFeature>& f2,
                                    double distance_threshold,
                                    double nn_ratio = 1.0);

}  // namespace crowdmap::vision

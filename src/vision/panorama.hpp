// 360° panorama composition from overlapping frames with (noisy) headings —
// the AutoStitch stand-in of the room layout modeling module (§III.C.I).
//
// Frames are treated as angular slices (the synthetic camera is a cylindrical
// projection, so a frame spanning `fov` radians maps linearly onto panorama
// columns). Pairwise NCC alignment refines the inertial heading estimates,
// then the slices are feather-blended.
#pragma once

#include <vector>

#include "imaging/image.hpp"

namespace crowdmap::vision {

/// One input frame for stitching.
struct PanoFrame {
  imaging::Image image;    // grayscale frame
  double heading = 0.0;    // estimated camera heading (radians), from IMU
};

struct StitchParams {
  int output_width = 1024;     // panorama columns spanning 2*pi
  int output_height = 256;     // rows (frames are resampled vertically)
  double fov = 0.9495;         // 54.4 degrees, the paper's lens model
  int max_refine_px = 12;      // NCC heading-refinement search radius
  bool refine_alignment = true;
};

/// Stitching result.
struct Panorama {
  imaging::Image image;            // output_width x output_height
  std::vector<double> headings;    // refined per-frame headings
  double coverage = 0.0;           // fraction of columns covered by >= 1 frame
};

/// Composites frames into a 360° panorama. Frames may arrive in any order;
/// they are processed sorted by heading.
[[nodiscard]] Panorama stitch_panorama(std::vector<PanoFrame> frames,
                                       const StitchParams& params = {});

/// Checks the paper's two panorama-candidate criteria over a set of frame
/// headings: (i) adjacent frames overlap, (ii) the set covers 360°.
struct CoverageCheck {
  bool adjacent_overlap = false;
  bool full_cover = false;
  double max_gap = 0.0;  // largest angular gap between adjacent frames
};
[[nodiscard]] CoverageCheck check_angular_coverage(std::vector<double> headings,
                                                   double fov);

}  // namespace crowdmap::vision

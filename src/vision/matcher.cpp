#include "vision/matcher.hpp"

#include <limits>

namespace crowdmap::vision {

namespace {

struct TwoNearest {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::max();
  double second_dist = std::numeric_limits<double>::max();
};

/// Nearest and second-nearest neighbors of `query` in `set`, honoring the
/// Laplacian-sign fast reject. best == set.size() when no candidate exists.
[[nodiscard]] TwoNearest two_nearest(const SurfFeature& query,
                                     const std::vector<SurfFeature>& set) {
  TwoNearest out;
  out.best = set.size();
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].keypoint.laplacian_positive != query.keypoint.laplacian_positive) {
      continue;
    }
    const double d = descriptor_distance(query.descriptor, set[i].descriptor);
    if (d < out.best_dist) {
      out.second_dist = out.best_dist;
      out.best_dist = d;
      out.best = i;
    } else if (d < out.second_dist) {
      out.second_dist = d;
    }
  }
  return out;
}

}  // namespace

std::vector<FeatureMatch> mutual_nn_matches(const std::vector<SurfFeature>& f1,
                                            const std::vector<SurfFeature>& f2,
                                            double distance_threshold,
                                            double nn_ratio) {
  std::vector<FeatureMatch> matches;
  if (f1.empty() || f2.empty()) return matches;
  for (std::size_t i = 0; i < f1.size(); ++i) {
    const auto fwd = two_nearest(f1[i], f2);
    if (fwd.best >= f2.size()) continue;
    if (fwd.best_dist >= distance_threshold) continue;
    if (nn_ratio < 1.0 && fwd.second_dist > 0 &&
        fwd.best_dist / fwd.second_dist >= nn_ratio) {
      continue;  // ambiguous: nearly as close to a second feature
    }
    const auto back = two_nearest(f2[fwd.best], f1);
    if (back.best != i) continue;  // not mutual
    matches.push_back({i, fwd.best, fwd.best_dist});
  }
  return matches;
}

double similarity_s2(std::size_t matches, std::size_t n1, std::size_t n2) noexcept {
  const std::size_t uni = n1 + n2 - matches;
  return uni == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(uni);
}

double match_score_s2(const std::vector<SurfFeature>& f1,
                      const std::vector<SurfFeature>& f2,
                      double distance_threshold, double nn_ratio) {
  const auto matches = mutual_nn_matches(f1, f2, distance_threshold, nn_ratio);
  return similarity_s2(matches.size(), f1.size(), f2.size());
}

}  // namespace crowdmap::vision

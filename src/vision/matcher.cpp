#include "vision/matcher.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/simd.hpp"

namespace crowdmap::vision {

namespace {

namespace simd = common::simd;

/// At or below this many features on BOTH sides the matcher skips the SoA
/// blocks and scans descriptors directly: four block constructions (heap
/// allocations plus the dim-major fill) per call dominate the handful of
/// distance evaluations tiny frames need. The cutoff only picks between two
/// bit-identical implementations, so any value is result-invariant.
constexpr std::size_t kDirectScanMax = 32;

/// Nearest-two scan of `query` against a sign-matched SoA block: the blocked
/// SIMD kernel with partial-distance early exit. Candidate order inside the
/// block is ascending original index (build_descriptor_block preserves
/// feature order), and the kernel's strict-< update keeps the FIRST minimum,
/// so ties resolve exactly as the old linear AoS scan did.
[[nodiscard]] simd::NearestTwo nearest2(const DescriptorBlock& block,
                                        const SurfDescriptor& query) {
  return simd::nearest2_soa_f32(block.data.data(), block.stride,
                                kSurfDescriptorDims, block.count,
                                query.data());
}

/// Small-N twin of the blocked scan: ascending-index walk over the features
/// whose Laplacian sign is `positive`, with the same strict-< /
/// else-if-strict-< update. descriptor_distance_sq is the metric the SoA
/// kernel reproduces bit-for-bit, so the returned (best, best_d2, second_d2)
/// triple is identical to the blocked path's — except `best` is already an
/// original feature index. `cands.size()` in `best` means no candidate.
[[nodiscard]] simd::NearestTwo nearest2_direct(
    const std::vector<SurfFeature>& cands, bool positive,
    const SurfDescriptor& query) {
  simd::NearestTwo out;
  out.best = cands.size();
  for (std::size_t j = 0; j < cands.size(); ++j) {
    if (cands[j].keypoint.laplacian_positive != positive) continue;
    const float d = descriptor_distance_sq(query, cands[j].descriptor);
    if (d < out.best_d2) {
      out.second_d2 = out.best_d2;
      out.best_d2 = d;
      out.best = j;
    } else if (d < out.second_d2) {
      out.second_d2 = d;
    }
  }
  return out;
}

}  // namespace

std::vector<FeatureMatch> mutual_nn_matches(const std::vector<SurfFeature>& f1,
                                            const std::vector<SurfFeature>& f2,
                                            double distance_threshold,
                                            double nn_ratio) {
  std::vector<FeatureMatch> matches;
  if (f1.empty() || f2.empty()) return matches;

  const bool direct =
      f1.size() <= kDirectScanMax && f2.size() <= kDirectScanMax;

  // SoA blocks partitioned by Laplacian sign: the partition replaces the
  // per-candidate sign branch of the scalar scan, and the dim-major layout
  // feeds the vectorized distance kernel. Tiny inputs take the direct scan
  // instead and never build the blocks.
  DescriptorBlock f1_pos, f1_neg, f2_pos, f2_neg;
  if (!direct) {
    f1_pos = build_descriptor_block(f1, true);
    f1_neg = build_descriptor_block(f1, false);
    f2_pos = build_descriptor_block(f2, true);
    f2_neg = build_descriptor_block(f2, false);
  }

  // Backward pass once per f2 feature (the old code redid it per forward
  // candidate): nearest same-sign f1 feature, for the mutual check.
  constexpr std::uint32_t kNoBack = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> back_best(f2.size(), kNoBack);
  for (std::size_t j = 0; j < f2.size(); ++j) {
    const bool positive = f2[j].keypoint.laplacian_positive;
    if (direct) {
      const auto back = nearest2_direct(f1, positive, f2[j].descriptor);
      if (back.best < f1.size()) {
        back_best[j] = static_cast<std::uint32_t>(back.best);
      }
    } else {
      const DescriptorBlock& targets = positive ? f1_pos : f1_neg;
      const auto back = nearest2(targets, f2[j].descriptor);
      if (back.best < targets.count) back_best[j] = targets.index[back.best];
    }
  }

  for (std::size_t i = 0; i < f1.size(); ++i) {
    const bool positive = f1[i].keypoint.laplacian_positive;
    simd::NearestTwo fwd;
    std::size_t j = 0;
    if (direct) {
      fwd = nearest2_direct(f2, positive, f1[i].descriptor);
      if (fwd.best >= f2.size()) continue;
      j = fwd.best;
    } else {
      const DescriptorBlock& targets = positive ? f2_pos : f2_neg;
      fwd = nearest2(targets, f1[i].descriptor);
      if (fwd.best >= targets.count) continue;
      j = targets.index[fwd.best];
    }
    const double best_dist = std::sqrt(static_cast<double>(fwd.best_d2));
    if (best_dist >= distance_threshold) continue;
    if (nn_ratio < 1.0 &&
        fwd.second_d2 < std::numeric_limits<float>::max()) {
      // With no second candidate the old scan's DBL_MAX second distance made
      // the ratio pass trivially; skipping the test preserves that.
      const double second_dist = std::sqrt(static_cast<double>(fwd.second_d2));
      if (second_dist > 0 && best_dist / second_dist >= nn_ratio) {
        continue;  // ambiguous: nearly as close to a second feature
      }
    }
    if (back_best[j] != i) continue;  // not mutual
    matches.push_back({i, j, best_dist});
  }
  return matches;
}

double similarity_s2(std::size_t matches, std::size_t n1, std::size_t n2) noexcept {
  const std::size_t uni = n1 + n2 - matches;
  return uni == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(uni);
}

double match_score_s2(const std::vector<SurfFeature>& f1,
                      const std::vector<SurfFeature>& f2,
                      double distance_threshold, double nn_ratio) {
  const auto matches = mutual_nn_matches(f1, f2, distance_threshold, nn_ratio);
  return similarity_s2(matches.size(), f1.size(), f2.size());
}

}  // namespace crowdmap::vision

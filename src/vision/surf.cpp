#include "vision/surf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/simd.hpp"

namespace crowdmap::vision {

namespace {

namespace simd = common::simd;
using imaging::IntegralImage;

/// Box-filter approximations of second-order Gaussian derivatives, as in the
/// original SURF paper. `size` is the odd filter side (9, 15, 21, ...).
struct HessianResponse {
  double det = 0.0;
  double trace = 0.0;
};

/// All box accesses below are provably inside the image for the positions
/// the detector visits (x, y at least `margin` = filter/2 + 1 from every
/// edge), so they use IntegralImage::box_sum_fast — same value and FP order
/// as box_sum, minus 8 clamp branches per box.
[[nodiscard]] HessianResponse hessian_at(const IntegralImage& ii, int x, int y,
                                         int size) {
  const int lobe = size / 3;            // e.g. 3 for the 9x9 filter
  const int half = size / 2;
  const double area = static_cast<double>(size) * size;

  // The outer size x size box is shared by Dyy and Dxx (it appears in both
  // three-lobe stacks); box_sum is pure, so computing it once is exact.
  const double big = ii.box_sum_fast(x - half, y - half, x + half, y + half);
  // Dyy: three stacked horizontal lobes (middle weighted -2).
  const double dyy =
      big -
      3.0 * ii.box_sum_fast(x - half, y - lobe / 2 - (lobe - 1) / 2, x + half,
                            y + lobe / 2 + (lobe - 1) / 2);
  // Dxx: transpose.
  const double dxx =
      big -
      3.0 * ii.box_sum_fast(x - lobe / 2 - (lobe - 1) / 2, y - half,
                            x + lobe / 2 + (lobe - 1) / 2, y + half);
  // Dxy: four diagonal lobes.
  const double dxy = ii.box_sum_fast(x - lobe, y - lobe, x - 1, y - 1) +
                     ii.box_sum_fast(x + 1, y + 1, x + lobe, y + lobe) -
                     ii.box_sum_fast(x + 1, y - lobe, x + lobe, y - 1) -
                     ii.box_sum_fast(x - lobe, y + 1, x - 1, y + lobe);

  const double nxx = dxx / area;
  const double nyy = dyy / area;
  const double nxy = dxy / area;
  HessianResponse r;
  // 0.81 = (0.9)^2 weight balancing the box-filter approximation (SURF paper).
  r.det = nxx * nyy - 0.81 * nxy * nxy;
  r.trace = nxx + nyy;
  return r;
}

/// Fills one response-map row at vertical position y, horizontal positions
/// x0 + k for k in [0, n), step 1 (the full-resolution octave). The 4-wide
/// body evaluates the identical floating-point tree as hessian_at — the
/// same box corners combined in the same order, per position — so its
/// output is bit-for-bit equal to the scalar path on every backend; the
/// n % 4 tail simply calls hessian_at.
void hessian_row(const IntegralImage& ii, int y, int x0, int n, int size,
                 double* det_out, std::uint8_t* lap_out) {
  const int lobe = size / 3;
  const int half = size / 2;
  const int mid = lobe / 2 + (lobe - 1) / 2;  // half-extent of the -2 lobe
  const double area = static_cast<double>(size) * size;
  // Integral-table rows touched by the five boxes at this y.
  const double* top_big = ii.row(y - half);
  const double* bot_big = ii.row(y + half + 1);
  const double* top_mid = ii.row(y - mid);
  const double* bot_mid = ii.row(y + mid + 1);
  const double* top_lobe = ii.row(y - lobe);
  const double* row_y0 = ii.row(y);
  const double* row_y1 = ii.row(y + 1);
  const double* bot_lobe = ii.row(y + lobe + 1);
  const int lanes = static_cast<int>(simd::kF64Lanes);
  const int main_n = n - n % lanes;
  simd::dispatch([&](auto tag) {
    using D4 = typename decltype(tag)::f64x4;
    const D4 three = D4::broadcast(3.0);
    const D4 w = D4::broadcast(0.81);
    const D4 varea = D4::broadcast(area);
    // box_sum_fast's tree — ((s11 - s01) - s10) + s00 — over the inclusive
    // x-range [xa, xb] on the given top/bottom table-row pair.
    const auto box = [](const double* top, const double* bot, int xa, int xb) {
      const D4 s11 = D4::load(bot + xb + 1);
      const D4 s01 = D4::load(bot + xa);
      const D4 s10 = D4::load(top + xb + 1);
      const D4 s00 = D4::load(top + xa);
      return ((s11 - s01) - s10) + s00;
    };
    for (int k = 0; k < main_n; k += lanes) {
      const int x = x0 + k;
      const D4 big = box(top_big, bot_big, x - half, x + half);
      const D4 dyy = big - three * box(top_mid, bot_mid, x - half, x + half);
      const D4 dxx = big - three * box(top_big, bot_big, x - mid, x + mid);
      const D4 dxy = ((box(top_lobe, row_y0, x - lobe, x - 1) +
                       box(row_y1, bot_lobe, x + 1, x + lobe)) -
                      box(top_lobe, row_y0, x + 1, x + lobe)) -
                     box(row_y1, bot_lobe, x - lobe, x - 1);
      const D4 nxx = dxx / varea;
      const D4 nyy = dyy / varea;
      const D4 nxy = dxy / varea;
      const D4 wxy = w * nxy;
      const D4 det = nxx * nyy - wxy * nxy;
      const D4 trace = nxx + nyy;
      det.store(det_out + k);
      double tr[simd::kF64Lanes];
      trace.store(tr);
      for (int l = 0; l < lanes; ++l) {
        lap_out[k + l] = tr[l] > 0.0 ? 1 : 0;
      }
    }
  });
  for (int k = main_n; k < n; ++k) {
    const auto h = hessian_at(ii, x0 + k, y, size);
    det_out[k] = h.det;
    lap_out[k] = h.trace > 0.0 ? 1 : 0;
  }
}

/// Haar wavelet responses (dx, dy) of side `s` at integer position. Callers
/// bounds-check (x, y) against a margin of at least s/2 first, so the
/// unclamped box path applies.
[[nodiscard]] std::pair<double, double> haar_xy(const IntegralImage& ii, int x,
                                                int y, int s) {
  const int half = s / 2;
  const double dx = ii.box_sum_fast(x, y - half, x + half - 1, y + half - 1) -
                    ii.box_sum_fast(x - half, y - half, x - 1, y + half - 1);
  const double dy = ii.box_sum_fast(x - half, y, x + half - 1, y + half - 1) -
                    ii.box_sum_fast(x - half, y - half, x + half - 1, y - 1);
  const double norm = static_cast<double>(s) * s / 2.0;
  return {dx / norm, dy / norm};
}

/// exp(-r2 / (2 * 2.5^2)) for r2 = i^2 + j^2 <= 36 — the orientation
/// window's Gaussian weight, tabulated once. Same std::exp inputs as the
/// inline formula it replaces, so the values are bit-identical.
[[nodiscard]] const std::array<double, 37>& orientation_gauss() {
  static const std::array<double, 37> table = [] {
    std::array<double, 37> t{};
    for (int r2 = 0; r2 <= 36; ++r2) {
      t[static_cast<std::size_t>(r2)] = std::exp(-r2 / (2.0 * 2.5 * 2.5));
    }
    return t;
  }();
  return table;
}

/// exp(-(u^2 + v^2) / (2 * 3.3^2)) over the descriptor's fixed 20x20 sample
/// grid, u = (ku - 10 + 0.5) * 0.8 — tabulated once, bit-identical to the
/// inline formula.
[[nodiscard]] const std::array<std::array<double, 20>, 20>&
descriptor_gauss() {
  static const std::array<std::array<double, 20>, 20> table = [] {
    std::array<std::array<double, 20>, 20> t{};
    for (int ku = 0; ku < 20; ++ku) {
      for (int kv = 0; kv < 20; ++kv) {
        const double u = (ku - 10 + 0.5) * 0.8;
        const double v = (kv - 10 + 0.5) * 0.8;
        t[static_cast<std::size_t>(ku)][static_cast<std::size_t>(kv)] =
            std::exp(-(u * u + v * v) / (2.0 * 3.3 * 3.3));
      }
    }
    return t;
  }();
  return table;
}

/// Dominant orientation from Haar responses in a circular neighborhood,
/// using the sliding-window (pi/3) scheme of the SURF paper.
[[nodiscard]] double assign_orientation(const IntegralImage& ii,
                                        const SurfKeypoint& kp) {
  const int s = std::max(2, static_cast<int>(std::lround(kp.scale)));
  struct Sample {
    double angle;
    double dx;
    double dy;
  };
  std::vector<Sample> samples;
  for (int j = -6; j <= 6; ++j) {
    for (int i = -6; i <= 6; ++i) {
      if (i * i + j * j > 36) continue;
      const int px = static_cast<int>(std::lround(kp.x)) + i * s;
      const int py = static_cast<int>(std::lround(kp.y)) + j * s;
      if (px < 2 * s || py < 2 * s || px >= ii.width() - 2 * s ||
          py >= ii.height() - 2 * s) {
        continue;
      }
      auto [dx, dy] = haar_xy(ii, px, py, 4 * s);
      // Gaussian weighting by distance from the keypoint.
      const double g = orientation_gauss()[static_cast<std::size_t>(i * i + j * j)];
      dx *= g;
      dy *= g;
      if (std::abs(dx) + std::abs(dy) > 1e-12) {
        samples.push_back({std::atan2(dy, dx), dx, dy});
      }
    }
  }
  if (samples.empty()) return 0.0;
  double best_mag = -1.0;
  double best_angle = 0.0;
  constexpr double kWindow = std::numbers::pi / 3.0;
  for (int step = 0; step < 42; ++step) {
    const double window_start = -std::numbers::pi + step * (2.0 * std::numbers::pi / 42.0);
    double sum_dx = 0.0;
    double sum_dy = 0.0;
    for (const auto& smp : samples) {
      double delta = smp.angle - window_start;
      while (delta < 0) delta += 2.0 * std::numbers::pi;
      if (delta < kWindow) {
        sum_dx += smp.dx;
        sum_dy += smp.dy;
      }
    }
    const double mag = sum_dx * sum_dx + sum_dy * sum_dy;
    if (mag > best_mag) {
      best_mag = mag;
      best_angle = std::atan2(sum_dy, sum_dx);
    }
  }
  return best_angle;
}

/// 64-d descriptor: 4x4 subregions of 5x5 samples; each subregion stores
/// (Σdx, Σdy, Σ|dx|, Σ|dy|) in the keypoint-oriented frame; L2 normalized.
[[nodiscard]] SurfDescriptor compute_descriptor(const IntegralImage& ii,
                                                const SurfKeypoint& kp) {
  SurfDescriptor desc{};
  const double s = std::max(1.0, kp.scale);
  const double co = std::cos(kp.orientation);
  const double si = std::sin(kp.orientation);
  int idx = 0;
  for (int sub_y = -2; sub_y < 2; ++sub_y) {
    for (int sub_x = -2; sub_x < 2; ++sub_x) {
      double sum_dx = 0.0;
      double sum_dy = 0.0;
      double sum_adx = 0.0;
      double sum_ady = 0.0;
      for (int jy = 0; jy < 5; ++jy) {
        for (int jx = 0; jx < 5; ++jx) {
          // Sample position in the keypoint frame (units of scale).
          const double u = (sub_x * 5 + jx + 0.5) * 0.8;
          const double v = (sub_y * 5 + jy + 0.5) * 0.8;
          // Rotate into image frame.
          const double px = kp.x + (co * u - si * v) * s;
          const double py = kp.y + (si * u + co * v) * s;
          const int ipx = static_cast<int>(std::lround(px));
          const int ipy = static_cast<int>(std::lround(py));
          const int hs = std::max(2, static_cast<int>(std::lround(2 * s)));
          if (ipx < hs || ipy < hs || ipx >= ii.width() - hs ||
              ipy >= ii.height() - hs) {
            continue;
          }
          auto [rdx, rdy] = haar_xy(ii, ipx, ipy, hs);
          // Rotate the response into the keypoint frame.
          const double dx = co * rdx + si * rdy;
          const double dy = -si * rdx + co * rdy;
          const double g =
              descriptor_gauss()[static_cast<std::size_t>(sub_x * 5 + jx + 10)]
                                [static_cast<std::size_t>(sub_y * 5 + jy + 10)];
          sum_dx += dx * g;
          sum_dy += dy * g;
          sum_adx += std::abs(dx) * g;
          sum_ady += std::abs(dy) * g;
        }
      }
      desc[idx++] = static_cast<float>(sum_dx);
      desc[idx++] = static_cast<float>(sum_dy);
      desc[idx++] = static_cast<float>(sum_adx);
      desc[idx++] = static_cast<float>(sum_ady);
    }
  }
  double norm_sq = 0.0;
  for (const float v : desc) norm_sq += static_cast<double>(v) * v;
  const double norm = std::sqrt(norm_sq) + 1e-9;
  for (float& v : desc) v = static_cast<float>(v / norm);
  return desc;
}

}  // namespace

std::vector<SurfFeature> detect_and_describe(const imaging::Image& img,
                                             const SurfParams& params) {
  if (img.width() < 32 || img.height() < 32) return {};
  const IntegralImage ii(img);

  // Filter-size ladder per octave: SURF uses 9,15,21,27 then 15,27,39,51.
  std::vector<std::vector<int>> octave_sizes;
  octave_sizes.push_back({9, 15, 21, 27});
  if (params.octaves >= 2) octave_sizes.push_back({15, 27, 39, 51});
  if (params.octaves >= 3) octave_sizes.push_back({27, 51, 75, 99});

  struct Candidate {
    SurfKeypoint kp;
  };
  std::vector<Candidate> candidates;

  for (const auto& sizes : octave_sizes) {
    const int step = sizes[0] >= 15 ? 2 : 1;  // coarser sampling at big scales
    // Response maps for the 4 filter sizes of this octave.
    const int margin = sizes.back() / 2 + 1;
    if (img.width() <= 2 * margin || img.height() <= 2 * margin) continue;
    const int rw = (img.width() - 2 * margin) / step + 1;
    const int rh = (img.height() - 2 * margin) / step + 1;
    std::vector<std::vector<double>> det(
        sizes.size(), std::vector<double>(static_cast<std::size_t>(rw) * rh, 0.0));
    std::vector<std::vector<std::uint8_t>> lap(
        sizes.size(),
        std::vector<std::uint8_t>(static_cast<std::size_t>(rw) * rh, 0));
    for (std::size_t layer = 0; layer < sizes.size(); ++layer) {
      if (step == 1) {
        // Full-resolution octave: contiguous x positions — the vectorized
        // row kernel applies (bit-identical to hessian_at per position).
        for (int ry = 0; ry < rh; ++ry) {
          hessian_row(ii, margin + ry, margin, rw, sizes[layer],
                      det[layer].data() + static_cast<std::size_t>(ry) * rw,
                      lap[layer].data() + static_cast<std::size_t>(ry) * rw);
        }
        continue;
      }
      for (int ry = 0; ry < rh; ++ry) {
        for (int rx = 0; rx < rw; ++rx) {
          const int x = margin + rx * step;
          const int y = margin + ry * step;
          const auto h = hessian_at(ii, x, y, sizes[layer]);
          det[layer][static_cast<std::size_t>(ry) * rw + rx] = h.det;
          lap[layer][static_cast<std::size_t>(ry) * rw + rx] =
              h.trace > 0 ? 1 : 0;
        }
      }
    }
    // Non-maximum suppression in the middle layers across 3x3x3 blocks.
    for (std::size_t layer = 1; layer + 1 < sizes.size(); ++layer) {
      for (int ry = 1; ry + 1 < rh; ++ry) {
        for (int rx = 1; rx + 1 < rw; ++rx) {
          const double v = det[layer][static_cast<std::size_t>(ry) * rw + rx];
          if (v < params.hessian_threshold) continue;
          bool is_max = true;
          for (std::size_t l = layer - 1; l <= layer + 1 && is_max; ++l) {
            for (int dy = -1; dy <= 1 && is_max; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                if (l == layer && dx == 0 && dy == 0) continue;
                if (det[l][static_cast<std::size_t>(ry + dy) * rw + (rx + dx)] >= v) {
                  is_max = false;
                  break;
                }
              }
            }
          }
          if (!is_max) continue;
          SurfKeypoint kp;
          kp.x = margin + rx * step;
          kp.y = margin + ry * step;
          kp.scale = 1.2 * sizes[layer] / 9.0;  // SURF scale convention
          kp.response = v;
          kp.laplacian_positive =
              lap[layer][static_cast<std::size_t>(ry) * rw + rx] != 0;
          candidates.push_back({kp});
        }
      }
    }
  }

  // Keep the strongest N.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.kp.response > b.kp.response;
            });
  if (static_cast<int>(candidates.size()) > params.max_features) {
    candidates.resize(static_cast<std::size_t>(params.max_features));
  }

  std::vector<SurfFeature> features;
  features.reserve(candidates.size());
  for (auto& cand : candidates) {
    if (!params.upright) {
      cand.kp.orientation = assign_orientation(ii, cand.kp);
    }
    SurfFeature f;
    f.keypoint = cand.kp;
    f.descriptor = compute_descriptor(ii, cand.kp);
    features.push_back(f);
  }
  return features;
}

DescriptorBlock build_descriptor_block(const std::vector<SurfFeature>& features,
                                       bool laplacian_positive) {
  DescriptorBlock block;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (features[i].keypoint.laplacian_positive == laplacian_positive) {
      block.index.push_back(static_cast<std::uint32_t>(i));
    }
  }
  block.count = block.index.size();
  if (block.count == 0) return block;
  const std::size_t rem = block.count % simd::kF32Lanes;
  block.stride = block.count + (rem == 0 ? 0 : simd::kF32Lanes - rem);
  block.data.assign(kSurfDescriptorDims * block.stride, DescriptorBlock::kPad);
  for (std::size_t j = 0; j < block.count; ++j) {
    const SurfDescriptor& d = features[block.index[j]].descriptor;
    for (std::size_t dim = 0; dim < kSurfDescriptorDims; ++dim) {
      block.data[dim * block.stride + j] = d[dim];
    }
  }
  return block;
}

float descriptor_distance_sq(const SurfDescriptor& a,
                             const SurfDescriptor& b) noexcept {
  // Sequential float accumulation with explicit sub/mul/add steps — the
  // exact op sequence the SoA matcher kernel runs per candidate.
  float d2 = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = a[i] - b[i];
    const float sq = diff * diff;
    d2 = d2 + sq;
  }
  return d2;
}

double descriptor_distance(const SurfDescriptor& a,
                           const SurfDescriptor& b) noexcept {
  return std::sqrt(static_cast<double>(descriptor_distance_sq(a, b)));
}

}  // namespace crowdmap::vision

#include "vision/similarity.hpp"

#include <algorithm>

namespace crowdmap::vision {

CheapDescriptors compute_cheap_descriptors(const imaging::ColorImage& frame) {
  CheapDescriptors out;
  out.color_hist = imaging::color_histogram(frame);
  const imaging::Image gray = frame.to_gray();
  out.shape = imaging::shape_descriptor(gray);
  out.wavelet = imaging::wavelet_signature(gray);
  return out;
}

double similarity_s1(const CheapDescriptors& a, const CheapDescriptors& b,
                     const S1Weights& weights) {
  const double color = imaging::histogram_intersection(a.color_hist, b.color_hist);
  const double shape = imaging::shape_similarity(a.shape, b.shape);
  const double wavelet = imaging::wavelet_similarity(a.wavelet, b.wavelet);
  const double s1 =
      weights.color * color + weights.shape * shape + weights.wavelet * wavelet;
  return std::clamp(s1, 0.0, 1.0);
}

}  // namespace crowdmap::vision

// First-stage (cheap) key-frame similarity S1: a weighted linear combination
// of color-indexing histogram intersection, shape matching and wavelet
// signature similarity (§III.B.I "Key-frame Comparison", step 1).
#pragma once

#include "imaging/descriptors.hpp"
#include "imaging/image.hpp"

namespace crowdmap::vision {

/// Weights for the linear combination; the paper assigns "a weight for each
/// of the algorithm". Defaults treat the three channels equally.
struct S1Weights {
  double color = 1.0 / 3.0;
  double shape = 1.0 / 3.0;
  double wavelet = 1.0 / 3.0;
};

/// Precomputed cheap descriptors of one frame (computed once per key-frame,
/// reused across all pairwise comparisons).
struct CheapDescriptors {
  std::vector<float> color_hist;
  std::vector<float> shape;
  imaging::WaveletSignature wavelet;
};

/// Computes the three cheap descriptors of a frame.
[[nodiscard]] CheapDescriptors compute_cheap_descriptors(
    const imaging::ColorImage& frame);

/// S1 in [0, 1].
[[nodiscard]] double similarity_s1(const CheapDescriptors& a,
                                   const CheapDescriptors& b,
                                   const S1Weights& weights = {});

}  // namespace crowdmap::vision

// Line-segment detection (LSD-style gradient-orientation region growing, von
// Gioi et al.) and a Hough transform for dominant/vanishing line directions.
// Used by the room layout modeling module (§III.C.II, Fig. 5).
#pragma once

#include <vector>

#include "imaging/image.hpp"

namespace crowdmap::vision {

/// Detected 2D line segment in pixel coordinates.
struct LineSegment {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;
  double strength = 0.0;  // accumulated gradient magnitude

  [[nodiscard]] double length() const noexcept;
  [[nodiscard]] double angle() const noexcept;  // [0, pi)
};

struct LsdParams {
  double magnitude_threshold = 0.08;  // min gradient magnitude
  double angle_tolerance = 0.3927;    // 22.5 degrees, as in LSD
  int min_region_size = 12;           // pixels per region
  double min_length = 6.0;            // pixels
};

/// LSD-style detector: groups pixels of similar gradient orientation into
/// line-support regions and fits a segment to each via PCA.
[[nodiscard]] std::vector<LineSegment> detect_line_segments(
    const imaging::Image& img, const LsdParams& params = {});

/// Classical (rho, theta) Hough transform over the detected segments
/// (segments vote with their strength). Returns accumulator peaks as
/// (theta, rho, votes), strongest first.
struct HoughLine {
  double theta = 0.0;  // [0, pi)
  double rho = 0.0;
  double votes = 0.0;
};
[[nodiscard]] std::vector<HoughLine> hough_lines(
    const std::vector<LineSegment>& segments, int theta_bins = 180,
    double rho_resolution = 2.0, std::size_t max_peaks = 8);

/// Columns of a panorama where vertical (wall-corner) lines concentrate:
/// histogram of near-vertical segment midpoints over panorama columns with
/// non-max suppression. These are the "five line segments along the
/// vanishing direction" candidates of the paper.
[[nodiscard]] std::vector<double> vertical_line_columns(
    const std::vector<LineSegment>& segments, int image_width,
    double verticality_tolerance = 0.35, std::size_t max_columns = 16);

}  // namespace crowdmap::vision

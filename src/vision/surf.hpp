// SURF-style interest points (Bay et al., ECCV'06): Hessian blob detection on
// integral-image box filters, orientation assignment, and a 64-dimensional
// Haar-response descriptor. This is the paper's second-stage key-frame
// matching feature (§III.B.I, Algorithm 1).
//
// Implemented from scratch; faithful to the SURF design (box-filter Hessian,
// 4x4 subregions of (Σdx, Σdy, Σ|dx|, Σ|dy|)) at reduced octave count, which
// is sufficient for the 64–256 px frames the simulator produces.
#pragma once

#include <array>
#include <vector>

#include "imaging/image.hpp"
#include "imaging/integral.hpp"

namespace crowdmap::vision {

/// Detected interest point.
struct SurfKeypoint {
  double x = 0.0;
  double y = 0.0;
  double scale = 1.2;       // approximated Gaussian scale of the filter
  double orientation = 0.0; // radians
  double response = 0.0;    // Hessian determinant response
  bool laplacian_positive = false;  // sign of trace, speeds up matching
};

/// 64-dimensional SURF descriptor.
using SurfDescriptor = std::array<float, 64>;

/// Keypoint with descriptor.
struct SurfFeature {
  SurfKeypoint keypoint;
  SurfDescriptor descriptor{};
};

/// Detector/descriptor parameters.
struct SurfParams {
  double hessian_threshold = 4e-4;  // on normalized det(H)
  int octaves = 2;                  // box filter sizes 9,15,21,27 / 15,27,39,51
  int max_features = 400;           // keep strongest N
  bool upright = false;             // skip orientation (U-SURF) when true
};

/// Detects keypoints and computes descriptors.
[[nodiscard]] std::vector<SurfFeature> detect_and_describe(
    const imaging::Image& img, const SurfParams& params = {});

/// Euclidean distance between descriptors.
[[nodiscard]] double descriptor_distance(const SurfDescriptor& a,
                                         const SurfDescriptor& b) noexcept;

}  // namespace crowdmap::vision

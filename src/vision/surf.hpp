// SURF-style interest points (Bay et al., ECCV'06): Hessian blob detection on
// integral-image box filters, orientation assignment, and a 64-dimensional
// Haar-response descriptor. This is the paper's second-stage key-frame
// matching feature (§III.B.I, Algorithm 1).
//
// Implemented from scratch; faithful to the SURF design (box-filter Hessian,
// 4x4 subregions of (Σdx, Σdy, Σ|dx|, Σ|dy|)) at reduced octave count, which
// is sufficient for the 64–256 px frames the simulator produces.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "imaging/image.hpp"
#include "imaging/integral.hpp"

namespace crowdmap::vision {

/// Detected interest point.
struct SurfKeypoint {
  double x = 0.0;
  double y = 0.0;
  double scale = 1.2;       // approximated Gaussian scale of the filter
  double orientation = 0.0; // radians
  double response = 0.0;    // Hessian determinant response
  bool laplacian_positive = false;  // sign of trace, speeds up matching
};

/// Descriptor dimensionality (4x4 subregions x 4 sums).
inline constexpr std::size_t kSurfDescriptorDims = 64;

/// 64-dimensional SURF descriptor.
using SurfDescriptor = std::array<float, kSurfDescriptorDims>;

/// Keypoint with descriptor.
struct SurfFeature {
  SurfKeypoint keypoint;
  SurfDescriptor descriptor{};
};

/// Detector/descriptor parameters.
struct SurfParams {
  double hessian_threshold = 4e-4;  // on normalized det(H)
  int octaves = 2;                  // box filter sizes 9,15,21,27 / 15,27,39,51
  int max_features = 400;           // keep strongest N
  bool upright = false;             // skip orientation (U-SURF) when true
};

/// Detects keypoints and computes descriptors.
[[nodiscard]] std::vector<SurfFeature> detect_and_describe(
    const imaging::Image& img, const SurfParams& params = {});

/// Dim-major (structure-of-arrays) descriptor storage: `data` holds
/// kSurfDescriptorDims rows of `stride` floats, where lane j of every row
/// belongs to the j-th stored descriptor. `stride` is `count` rounded up to
/// the SIMD lane count so vector loads stay in-bounds; lanes in
/// [count, stride) hold kPad, which puts them at squared distance >= 6e7
/// from any unit-norm descriptor (real pairs are <= 4) so padding can never
/// win a nearest-neighbor scan. `index[j]` maps lane j back to the original
/// feature index the block was built from.
struct DescriptorBlock {
  static constexpr float kPad = 1.0e3f;
  std::size_t count = 0;             // real descriptors
  std::size_t stride = 0;            // padded lane count (multiple of 8)
  std::vector<float> data;           // dim-major, dims x stride
  std::vector<std::uint32_t> index;  // lane -> original feature index
};

/// Builds the SoA block over the features whose Laplacian sign equals
/// `laplacian_positive` (the matcher's fast-reject partition), preserving
/// feature order within the block.
[[nodiscard]] DescriptorBlock build_descriptor_block(
    const std::vector<SurfFeature>& features, bool laplacian_positive);

/// Squared Euclidean distance between descriptors, accumulated SEQUENTIALLY
/// in float over dims 0..63. This is the canonical matching metric: the SoA
/// matcher kernel (common::simd::l2sq_soa_accum_f32) reproduces it
/// bit-for-bit on every backend.
[[nodiscard]] float descriptor_distance_sq(const SurfDescriptor& a,
                                           const SurfDescriptor& b) noexcept;

/// Euclidean distance between descriptors. Defined as
/// sqrt(double(descriptor_distance_sq(a, b))) so the rooted and squared
/// forms always agree on ordering.
[[nodiscard]] double descriptor_distance(const SurfDescriptor& a,
                                         const SurfDescriptor& b) noexcept;

}  // namespace crowdmap::vision

#include "vision/panorama.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/mathutil.hpp"
#include "common/simd.hpp"
#include "imaging/ncc.hpp"

namespace crowdmap::vision {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Panorama column of a global angle, with wraparound.
[[nodiscard]] int column_of(double angle, int width) {
  double a = std::fmod(angle, kTwoPi);
  if (a < 0) a += kTwoPi;
  return static_cast<int>(a / kTwoPi * width) % width;
}

}  // namespace

CoverageCheck check_angular_coverage(std::vector<double> headings, double fov) {
  CoverageCheck out;
  if (headings.empty()) return out;
  for (double& h : headings) h = crowdmap::common::wrap_angle_2pi(h);
  std::sort(headings.begin(), headings.end());
  double max_gap = 0.0;
  for (std::size_t i = 0; i < headings.size(); ++i) {
    const double next =
        i + 1 < headings.size() ? headings[i + 1] : headings[0] + kTwoPi;
    max_gap = std::max(max_gap, next - headings[i]);
  }
  out.max_gap = max_gap;
  out.adjacent_overlap = max_gap < fov;   // frame centers closer than one FoV
  out.full_cover = max_gap < fov;         // then the union covers 360 degrees
  return out;
}

Panorama stitch_panorama(std::vector<PanoFrame> frames, const StitchParams& params) {
  Panorama out;
  out.image = imaging::Image(params.output_width, params.output_height, 0.0f);
  if (frames.empty()) return out;

  std::sort(frames.begin(), frames.end(), [](const PanoFrame& a, const PanoFrame& b) {
    return crowdmap::common::wrap_angle_2pi(a.heading) <
           crowdmap::common::wrap_angle_2pi(b.heading);
  });

  // Resample every frame to a canonical angular slice: fov worth of panorama
  // columns at output height.
  const int slice_width = std::max(
      2, static_cast<int>(std::lround(params.fov / kTwoPi * params.output_width)));
  std::vector<imaging::Image> slices;
  slices.reserve(frames.size());
  for (const auto& f : frames) {
    slices.push_back(f.image.resized(slice_width, params.output_height));
  }

  // Refine headings pairwise: the NCC-optimal column shift between adjacent
  // overlapping slices corrects gyro error, like AutoStitch's feature
  // alignment. The first frame anchors the chain.
  std::vector<double> headings;
  headings.reserve(frames.size());
  for (const auto& f : frames) {
    headings.push_back(crowdmap::common::wrap_angle_2pi(f.heading));
  }
  if (params.refine_alignment && frames.size() > 1) {
    const double col_angle = kTwoPi / params.output_width;
    for (std::size_t i = 1; i < frames.size(); ++i) {
      const double gap = headings[i] - headings[i - 1];
      const int gap_cols = static_cast<int>(std::lround(gap / col_angle));
      if (gap_cols >= slice_width) continue;  // no overlap, keep IMU heading
      double best_ncc = -2.0;
      int best_shift = 0;
      for (int shift = -params.max_refine_px; shift <= params.max_refine_px; ++shift) {
        const double ncc =
            imaging::shifted_ncc(slices[i - 1], slices[i], gap_cols + shift, 0);
        if (ncc > best_ncc) {
          best_ncc = ncc;
          best_shift = shift;
        }
      }
      if (best_ncc > 0.2) headings[i] += best_shift * col_angle;
    }
  }

  // Feather-blended composite, restructured row-outer so each slice row
  // becomes one or two contiguous SIMD segments (split at the wrap column).
  // Every output cell receives exactly the same addends in the same order as
  // the old per-pixel loop — one addend per overlapping slice, slices in
  // ascending index, acc updated as acc + (wgt * src) — so the composite is
  // bit-identical to the scalar form.
  const int pano_w = params.output_width;
  std::vector<float> acc(static_cast<std::size_t>(pano_w) *
                             params.output_height,
                         0.0f);
  std::vector<float> weight(acc.size(), 0.0f);
  // Feather weight: triangular, peaking at slice center. Depends only on the
  // slice column, so it is precomputed once (same expression per element).
  std::vector<float> feather(static_cast<std::size_t>(slice_width));
  for (int sc = 0; sc < slice_width; ++sc) {
    feather[static_cast<std::size_t>(sc)] =
        1.0f - std::abs(2.0f * sc / slice_width - 1.0f) * 0.9f;
  }
  const std::vector<float> ones(static_cast<std::size_t>(slice_width), 1.0f);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const int start_col = column_of(headings[i] - params.fov / 2.0, pano_w);
    if (slice_width > pano_w) {
      // Degenerate (> 360-degree slice): columns alias; keep the old loop.
      for (int sc = 0; sc < slice_width; ++sc) {
        const int pc = (start_col + sc) % pano_w;
        const float wgt = feather[static_cast<std::size_t>(sc)];
        for (int row = 0; row < params.output_height; ++row) {
          const std::size_t idx = static_cast<std::size_t>(row) * pano_w + pc;
          acc[idx] += wgt * slices[i].at(sc, row);
          weight[idx] += wgt;
        }
      }
      continue;
    }
    const int len_a = std::min(slice_width, pano_w - start_col);
    const int len_b = slice_width - len_a;  // wrapped tail, lands at column 0
    for (int row = 0; row < params.output_height; ++row) {
      float* acc_row = acc.data() + static_cast<std::size_t>(row) * pano_w;
      float* wgt_row = weight.data() + static_cast<std::size_t>(row) * pano_w;
      const float* src = slices[i].row(row);
      common::simd::weighted_accumulate_f32(
          acc_row + start_col, feather.data(), src,
          static_cast<std::size_t>(len_a));
      common::simd::weighted_accumulate_f32(
          wgt_row + start_col, feather.data(), ones.data(),
          static_cast<std::size_t>(len_a));
      if (len_b > 0) {
        common::simd::weighted_accumulate_f32(acc_row, feather.data() + len_a,
                                              src + len_a,
                                              static_cast<std::size_t>(len_b));
        common::simd::weighted_accumulate_f32(wgt_row, feather.data() + len_a,
                                              ones.data() + len_a,
                                              static_cast<std::size_t>(len_b));
      }
    }
  }
  int covered = 0;
  if (params.output_height > 0) {
    for (int row = 0; row < params.output_height; ++row) {
      // out = weight > 0 ? acc / weight : 0 — the image is zero-filled, so
      // this matches the old "write only covered cells" loop bit-for-bit.
      common::simd::normalize_by_weight_f32(
          out.image.row(row), acc.data() + static_cast<std::size_t>(row) * pano_w,
          weight.data() + static_cast<std::size_t>(row) * pano_w,
          static_cast<std::size_t>(pano_w));
    }
    for (int col = 0; col < pano_w; ++col) {
      // Every slice adds its feather weight to all rows of a column, so
      // weight is row-invariant: row 0 decides coverage for the column.
      covered += weight[static_cast<std::size_t>(col)] > 0 ? 1 : 0;
    }
  }
  out.coverage = static_cast<double>(covered) / params.output_width;
  out.headings = std::move(headings);
  return out;
}

}  // namespace crowdmap::vision

#include "vision/panorama.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/mathutil.hpp"
#include "imaging/ncc.hpp"

namespace crowdmap::vision {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Panorama column of a global angle, with wraparound.
[[nodiscard]] int column_of(double angle, int width) {
  double a = std::fmod(angle, kTwoPi);
  if (a < 0) a += kTwoPi;
  return static_cast<int>(a / kTwoPi * width) % width;
}

}  // namespace

CoverageCheck check_angular_coverage(std::vector<double> headings, double fov) {
  CoverageCheck out;
  if (headings.empty()) return out;
  for (double& h : headings) h = crowdmap::common::wrap_angle_2pi(h);
  std::sort(headings.begin(), headings.end());
  double max_gap = 0.0;
  for (std::size_t i = 0; i < headings.size(); ++i) {
    const double next =
        i + 1 < headings.size() ? headings[i + 1] : headings[0] + kTwoPi;
    max_gap = std::max(max_gap, next - headings[i]);
  }
  out.max_gap = max_gap;
  out.adjacent_overlap = max_gap < fov;   // frame centers closer than one FoV
  out.full_cover = max_gap < fov;         // then the union covers 360 degrees
  return out;
}

Panorama stitch_panorama(std::vector<PanoFrame> frames, const StitchParams& params) {
  Panorama out;
  out.image = imaging::Image(params.output_width, params.output_height, 0.0f);
  if (frames.empty()) return out;

  std::sort(frames.begin(), frames.end(), [](const PanoFrame& a, const PanoFrame& b) {
    return crowdmap::common::wrap_angle_2pi(a.heading) <
           crowdmap::common::wrap_angle_2pi(b.heading);
  });

  // Resample every frame to a canonical angular slice: fov worth of panorama
  // columns at output height.
  const int slice_width = std::max(
      2, static_cast<int>(std::lround(params.fov / kTwoPi * params.output_width)));
  std::vector<imaging::Image> slices;
  slices.reserve(frames.size());
  for (const auto& f : frames) {
    slices.push_back(f.image.resized(slice_width, params.output_height));
  }

  // Refine headings pairwise: the NCC-optimal column shift between adjacent
  // overlapping slices corrects gyro error, like AutoStitch's feature
  // alignment. The first frame anchors the chain.
  std::vector<double> headings;
  headings.reserve(frames.size());
  for (const auto& f : frames) {
    headings.push_back(crowdmap::common::wrap_angle_2pi(f.heading));
  }
  if (params.refine_alignment && frames.size() > 1) {
    const double col_angle = kTwoPi / params.output_width;
    for (std::size_t i = 1; i < frames.size(); ++i) {
      const double gap = headings[i] - headings[i - 1];
      const int gap_cols = static_cast<int>(std::lround(gap / col_angle));
      if (gap_cols >= slice_width) continue;  // no overlap, keep IMU heading
      double best_ncc = -2.0;
      int best_shift = 0;
      for (int shift = -params.max_refine_px; shift <= params.max_refine_px; ++shift) {
        const double ncc =
            imaging::shifted_ncc(slices[i - 1], slices[i], gap_cols + shift, 0);
        if (ncc > best_ncc) {
          best_ncc = ncc;
          best_shift = shift;
        }
      }
      if (best_ncc > 0.2) headings[i] += best_shift * col_angle;
    }
  }

  // Feather-blended composite.
  std::vector<float> acc(static_cast<std::size_t>(params.output_width) *
                             params.output_height,
                         0.0f);
  std::vector<float> weight(acc.size(), 0.0f);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const int start_col =
        column_of(headings[i] - params.fov / 2.0, params.output_width);
    for (int sc = 0; sc < slice_width; ++sc) {
      const int pc = (start_col + sc) % params.output_width;
      // Feather weight: triangular, peaking at slice center.
      const float wgt = 1.0f - std::abs(2.0f * sc / slice_width - 1.0f) * 0.9f;
      for (int row = 0; row < params.output_height; ++row) {
        const std::size_t idx =
            static_cast<std::size_t>(row) * params.output_width + pc;
        acc[idx] += wgt * slices[i].at(sc, row);
        weight[idx] += wgt;
      }
    }
  }
  int covered = 0;
  for (int col = 0; col < params.output_width; ++col) {
    bool any = false;
    for (int row = 0; row < params.output_height; ++row) {
      const std::size_t idx = static_cast<std::size_t>(row) * params.output_width + col;
      if (weight[idx] > 0) {
        out.image.at(col, row) = acc[idx] / weight[idx];
        any = true;
      }
    }
    covered += any;
  }
  out.coverage = static_cast<double>(covered) / params.output_width;
  out.headings = std::move(headings);
  return out;
}

}  // namespace crowdmap::vision

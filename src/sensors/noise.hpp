// Inertial noise models used by the simulator: white noise plus bias random
// walk (gyro drift is the dominant trajectory error source the paper's
// key-frame calibration corrects).
#pragma once

#include "common/rng.hpp"

namespace crowdmap::sensors {

/// First-order sensor error model: y = x + bias(t) + white, where bias
/// follows a random walk.
class NoiseModel {
 public:
  NoiseModel(double white_sigma, double bias_walk_sigma, common::Rng rng)
      : white_sigma_(white_sigma), bias_walk_sigma_(bias_walk_sigma), rng_(rng) {}

  /// Corrupts one sample; dt advances the bias random walk.
  [[nodiscard]] double corrupt(double value, double dt) noexcept {
    bias_ += rng_.normal(0.0, bias_walk_sigma_ * std::max(dt, 0.0));
    return value + bias_ + rng_.normal(0.0, white_sigma_);
  }

  [[nodiscard]] double bias() const noexcept { return bias_; }

 private:
  double white_sigma_;
  double bias_walk_sigma_;
  double bias_ = 0.0;
  common::Rng rng_;
};

/// Default error magnitudes for a consumer smartphone IMU (values consistent
/// with the dead-reckoning literature the paper builds on [2], [12]).
struct ImuNoiseConfig {
  double gyro_white_sigma = 0.005;     // rad/s
  double gyro_bias_walk = 0.0012;      // rad/s per sqrt(s)
  double compass_white_sigma = 0.12;   // rad (indoor magnetic disturbance)
  double accel_white_sigma = 0.25;     // m/s^2
  double stride_length_sigma = 0.06;   // relative stride-length error
};

}  // namespace crowdmap::sensors

// Step counting from accelerometer magnitude — the walking-distance estimator
// of the SWS task (paper §III.A: "the walking distance |AB| is calculated by
// the step counting method").
#pragma once

#include <vector>

#include "sensors/imu.hpp"

namespace crowdmap::sensors {

struct StepDetectorParams {
  double peak_threshold = 10.8;   // m/s^2 above which a peak may be a step
  double min_step_interval = 0.3; // seconds between steps (max ~3.3 steps/s)
  int smoothing_window = 7;       // moving-average samples
};

/// Detected heel strikes (times in stream coordinates).
struct StepEvents {
  std::vector<double> times;
  [[nodiscard]] std::size_t count() const noexcept { return times.size(); }
};

/// Peak detection on the smoothed accelerometer magnitude.
[[nodiscard]] StepEvents detect_steps(const ImuStream& stream,
                                      const StepDetectorParams& params = {});

/// Weinberg-style stride length estimate from the bounce amplitude around a
/// step; returns meters. `amplitude` is max-min accel magnitude in the step
/// window.
[[nodiscard]] double stride_length_from_amplitude(double amplitude,
                                                  double k = 0.41);

}  // namespace crowdmap::sensors

// Pedestrian dead reckoning: steps + per-step heading + stride length →
// the user trajectory triples {(x_i, y_i, t_i)} of the SWS task (§III.A).
#pragma once

#include <vector>

#include "geometry/vec2.hpp"
#include "sensors/heading.hpp"
#include "sensors/imu.hpp"
#include "sensors/step_detector.hpp"

namespace crowdmap::sensors {

/// One dead-reckoned trajectory sample.
struct TrackPoint {
  geometry::Vec2 position;
  double t = 0.0;
  double heading = 0.0;
};

struct DeadReckoningParams {
  StepDetectorParams step;
  HeadingFilterParams heading;
  double default_stride = 0.7;  // meters, used when amplitude is degenerate
  bool amplitude_stride = true; // Weinberg stride from bounce amplitude
};

/// Reconstructs a trajectory from an inertial stream. The first point is the
/// local origin (0,0) at the stream start; one point is emitted per step
/// plus the start and end stay points.
[[nodiscard]] std::vector<TrackPoint> dead_reckon(
    const ImuStream& stream, const DeadReckoningParams& params = {});

/// Total travelled distance of a track.
[[nodiscard]] double track_length(const std::vector<TrackPoint>& track);

}  // namespace crowdmap::sensors

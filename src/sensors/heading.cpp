#include "sensors/heading.hpp"

#include "common/mathutil.hpp"

namespace crowdmap::sensors {

std::vector<double> estimate_headings(const ImuStream& stream,
                                      const HeadingFilterParams& params) {
  std::vector<double> headings;
  const auto& s = stream.samples;
  headings.reserve(s.size());
  if (s.empty()) return headings;

  double heading = params.use_compass_initial ? s.front().compass
                                              : params.initial_heading;
  headings.push_back(heading);
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double dt = s[i].t - s[i - 1].t;
    heading += s[i].gyro_z * dt;
    // Pull toward the compass proportionally to elapsed time.
    const double error = common::angle_diff(s[i].compass, heading);
    heading += params.compass_gain * dt * error;
    heading = common::wrap_angle(heading);
    headings.push_back(heading);
  }
  return headings;
}

double integrated_rotation(const ImuStream& stream) {
  const auto& s = stream.samples;
  double total = 0.0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    total += s[i].gyro_z * (s[i].t - s[i - 1].t);
  }
  return total;
}

}  // namespace crowdmap::sensors

// Inertial sensor sample types. The mobile front-end records accelerometer,
// gyroscope and compass alongside the video (paper §III.A, Task 2).
#pragma once

#include <vector>

namespace crowdmap::sensors {

/// One synchronized inertial sample. The simulator and the dead-reckoning
/// stack use a planar model: gyro_z is the yaw rate; accel_magnitude carries
/// the gait signal used for step counting.
struct ImuSample {
  double t = 0.0;                // seconds since recording start
  double accel_magnitude = 9.81; // |a| in m/s^2 (gravity + gait bounce)
  double gyro_z = 0.0;           // yaw rate, rad/s
  double compass = 0.0;          // absolute heading, radians (noisy, disturbed)
};

/// A recorded inertial stream at (approximately) fixed rate.
struct ImuStream {
  std::vector<ImuSample> samples;
  double sample_rate_hz = 100.0;

  [[nodiscard]] bool empty() const noexcept { return samples.empty(); }
  [[nodiscard]] double duration() const noexcept {
    return samples.empty() ? 0.0 : samples.back().t - samples.front().t;
  }
};

}  // namespace crowdmap::sensors

#include "sensors/serialize.hpp"

namespace crowdmap::sensors {

namespace {

constexpr std::uint32_t kImuMagic = 0x434D4931;  // "CMI1"
constexpr std::uint32_t kVersion = 1;

}  // namespace

io::Bytes encode_imu(const ImuStream& stream) {
  io::Writer w;
  w.u32(kImuMagic);
  w.u32(kVersion);
  w.f64(stream.sample_rate_hz);
  w.u32(static_cast<std::uint32_t>(stream.samples.size()));
  for (const auto& s : stream.samples) {
    w.f64(s.t);
    w.f64(s.accel_magnitude);
    w.f64(s.gyro_z);
    w.f64(s.compass);
  }
  return std::move(w).take();
}

ImuStream decode_imu(const io::Bytes& data) {
  io::Reader r(data);
  if (r.u32() != kImuMagic) throw io::DecodeError("not an IMU stream");
  if (r.u32() != kVersion) throw io::DecodeError("unsupported IMU version");
  ImuStream stream;
  stream.sample_rate_hz = r.f64();
  const std::uint32_t n = r.u32();
  io::check_count(n, "imu samples");
  stream.samples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ImuSample s;
    s.t = r.f64();
    s.accel_magnitude = r.f64();
    s.gyro_z = r.f64();
    s.compass = r.f64();
    stream.samples.push_back(s);
  }
  return stream;
}

common::Expected<ImuStream> try_decode_imu(const io::Bytes& data) {
  return io::expected_decode([&] { return decode_imu(data); });
}

}  // namespace crowdmap::sensors

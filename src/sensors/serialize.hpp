// Versioned binary codec for inertial streams ("CMI1"). Little-endian,
// magic-tagged; decoding validates structure and throws io::DecodeError on
// malformed input rather than reading garbage. Lives with the sensor types
// (not in io/) so serialization never pulls domain modules into the io
// layer — see docs/STATIC_ANALYSIS.md for the layering contract.
#pragma once

#include "io/serialize.hpp"
#include "sensors/imu.hpp"

namespace crowdmap::sensors {

/// Inertial stream <-> bytes.
[[nodiscard]] io::Bytes encode_imu(const ImuStream& stream);
[[nodiscard]] ImuStream decode_imu(const io::Bytes& data);

/// Non-throwing variant for callers that degrade on malformed input (the
/// cloud backend quarantines rather than crashes): a DecodeError becomes an
/// Error with code "io.decode".
[[nodiscard]] common::Expected<ImuStream> try_decode_imu(const io::Bytes& data);

}  // namespace crowdmap::sensors

#include "sensors/dead_reckoning.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::sensors {

std::vector<TrackPoint> dead_reckon(const ImuStream& stream,
                                    const DeadReckoningParams& params) {
  std::vector<TrackPoint> track;
  const auto& samples = stream.samples;
  if (samples.empty()) return track;

  const auto steps = detect_steps(stream, params.step);
  const auto headings = estimate_headings(stream, params.heading);

  // Index into samples for a given time (samples are time-ordered).
  auto sample_index = [&samples](double t) -> std::size_t {
    const auto it = std::lower_bound(
        samples.begin(), samples.end(), t,
        [](const ImuSample& s, double tt) { return s.t < tt; });
    return std::min(static_cast<std::size_t>(it - samples.begin()),
                    samples.size() - 1);
  };

  TrackPoint origin;
  origin.t = samples.front().t;
  origin.heading = headings.front();
  track.push_back(origin);

  geometry::Vec2 pos;
  double prev_step_time = samples.front().t;
  for (const double step_time : steps.times) {
    const std::size_t idx = sample_index(step_time);
    const double heading = headings[idx];

    double stride = params.default_stride;
    if (params.amplitude_stride) {
      // Bounce amplitude inside the step window.
      const std::size_t lo = sample_index(prev_step_time);
      double amax = samples[lo].accel_magnitude;
      double amin = samples[lo].accel_magnitude;
      for (std::size_t i = lo; i <= idx; ++i) {
        amax = std::max(amax, samples[i].accel_magnitude);
        amin = std::min(amin, samples[i].accel_magnitude);
      }
      const double est = stride_length_from_amplitude(amax - amin);
      if (est > 0.2 && est < 1.2) stride = est;
    }

    pos += geometry::Vec2::from_angle(heading) * stride;
    track.push_back({pos, step_time, heading});
    prev_step_time = step_time;
  }

  // Closing stay point at stream end.
  TrackPoint last;
  last.position = pos;
  last.t = samples.back().t;
  last.heading = headings.back();
  track.push_back(last);
  return track;
}

double track_length(const std::vector<TrackPoint>& track) {
  double acc = 0.0;
  for (std::size_t i = 1; i < track.size(); ++i) {
    acc += track[i].position.distance_to(track[i - 1].position);
  }
  return acc;
}

}  // namespace crowdmap::sensors

#include "sensors/step_detector.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::sensors {

StepEvents detect_steps(const ImuStream& stream, const StepDetectorParams& params) {
  StepEvents events;
  const auto& s = stream.samples;
  if (s.size() < 3) return events;

  // Moving-average smoothing of |a|.
  const int w = std::max(1, params.smoothing_window);
  std::vector<double> smooth(s.size());
  double acc = 0.0;
  std::size_t lo = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    acc += s[i].accel_magnitude;
    if (i >= static_cast<std::size_t>(w)) {
      acc -= s[i - w].accel_magnitude;
      lo = i - w + 1;
    }
    smooth[i] = acc / static_cast<double>(i - lo + 1);
  }

  double last_step_time = -1e9;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    const bool is_peak = smooth[i] > smooth[i - 1] && smooth[i] >= smooth[i + 1];
    if (!is_peak) continue;
    if (smooth[i] < params.peak_threshold) continue;
    if (s[i].t - last_step_time < params.min_step_interval) continue;
    events.times.push_back(s[i].t);
    last_step_time = s[i].t;
  }
  return events;
}

double stride_length_from_amplitude(double amplitude, double k) {
  // Weinberg: L = k * (a_max - a_min)^(1/4).
  return k * std::pow(std::max(amplitude, 0.0), 0.25);
}

}  // namespace crowdmap::sensors

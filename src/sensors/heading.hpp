// Heading estimation: gyro integration corrected toward the compass with a
// complementary filter — "the direction change of each step Δω is calculated
// by jointly using compass, gyroscope and accelerometer" (paper §III.A,
// following Roy et al. [12]).
#pragma once

#include <vector>

#include "sensors/imu.hpp"

namespace crowdmap::sensors {

struct HeadingFilterParams {
  /// Complementary-filter gain pulling the integrated gyro heading toward
  /// the compass per second. 0 disables compass correction (pure gyro).
  double compass_gain = 0.05;
  double initial_heading = 0.0;
  bool use_compass_initial = true;  // seed from the first compass sample
};

/// Per-sample heading estimates for a stream.
[[nodiscard]] std::vector<double> estimate_headings(
    const ImuStream& stream, const HeadingFilterParams& params = {});

/// Total rotation angle over the stream from gyro integration alone — the
/// SRS task's spin angle ω, which the paper reads from the gyroscope.
[[nodiscard]] double integrated_rotation(const ImuStream& stream);

}  // namespace crowdmap::sensors

// Map-constrained pedestrian localization — the downstream application the
// paper motivates ("[a floor plan] plays an essential role in many indoor
// mobile applications, such as localization and navigation"). A particle
// filter tracks a walker from step events (stride + heading) alone, using
// the reconstructed floor plan as the constraint: particles that walk
// through walls die, and the corridor topology disambiguates position.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "floorplan/floorplan.hpp"
#include "geometry/raster.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::localize {

using geometry::BoolRaster;
using geometry::Vec2;

struct LocalizerConfig {
  int particle_count = 1500;
  double stride_sigma = 0.10;   // relative stride noise per step
  double heading_sigma = 0.10;  // radians of heading noise per step
  /// Resample when the effective sample size falls below this fraction.
  double resample_threshold = 0.5;
};

/// Current belief summary.
struct BeliefEstimate {
  Vec2 position;        // weighted mean
  double spread = 0.0;  // RMS distance of particles from the mean (meters)
  double in_map_fraction = 0.0;  // surviving probability mass
};

/// Walkable-space raster of a floor plan: the hallway skeleton plus every
/// placed room footprint.
[[nodiscard]] BoolRaster walkable_space(const floorplan::FloorPlan& plan);

class MapLocalizer {
 public:
  /// The walkable raster constrains motion. Throws std::invalid_argument if
  /// it has no walkable cells.
  MapLocalizer(BoolRaster walkable, LocalizerConfig config, common::Rng rng);

  /// Scatters particles uniformly over walkable cells (unknown start).
  void initialize_uniform();

  /// Initializes around a known position (e.g. an entrance).
  void initialize_at(Vec2 position, double sigma = 1.0);

  /// One detected step of the tracked user: advances every particle by the
  /// (noisy) stride along the (noisy) absolute heading, kills wall-crossers,
  /// and resamples when the belief degenerates.
  void on_step(double stride, double heading);

  [[nodiscard]] BeliefEstimate estimate() const;
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return particles_.size();
  }

 private:
  struct Particle {
    Vec2 position;
    double weight = 1.0;
  };

  [[nodiscard]] bool walkable_at(Vec2 p) const;
  void normalize_and_maybe_resample();

  BoolRaster walkable_;
  LocalizerConfig config_;
  common::Rng rng_;
  std::vector<Particle> particles_;
  std::vector<Vec2> walkable_cells_;  // centers, for uniform initialization
};

}  // namespace crowdmap::localize

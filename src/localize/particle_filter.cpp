#include "localize/particle_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace crowdmap::localize {

BoolRaster walkable_space(const floorplan::FloorPlan& plan) {
  BoolRaster walkable = plan.hallway;
  for (const auto& room : plan.rooms) {
    walkable.fill_polygon(room.footprint());
  }
  return walkable;
}

MapLocalizer::MapLocalizer(BoolRaster walkable, LocalizerConfig config,
                           common::Rng rng)
    : walkable_(std::move(walkable)), config_(config), rng_(rng) {
  for (int row = 0; row < walkable_.height(); ++row) {
    for (int col = 0; col < walkable_.width(); ++col) {
      if (walkable_.at(col, row)) {
        walkable_cells_.push_back(walkable_.cell_center(col, row));
      }
    }
  }
  if (walkable_cells_.empty()) {
    throw std::invalid_argument("MapLocalizer: no walkable cells");
  }
}

void MapLocalizer::initialize_uniform() {
  particles_.clear();
  particles_.reserve(static_cast<std::size_t>(config_.particle_count));
  const double half = walkable_.cell_size() / 2.0;
  for (int i = 0; i < config_.particle_count; ++i) {
    const auto& cell = walkable_cells_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(walkable_cells_.size()) - 1))];
    particles_.push_back(
        {cell + Vec2{rng_.uniform(-half, half), rng_.uniform(-half, half)}, 1.0});
  }
}

void MapLocalizer::initialize_at(Vec2 position, double sigma) {
  particles_.clear();
  particles_.reserve(static_cast<std::size_t>(config_.particle_count));
  for (int i = 0; i < config_.particle_count; ++i) {
    particles_.push_back(
        {position + Vec2{rng_.normal(0.0, sigma), rng_.normal(0.0, sigma)}, 1.0});
  }
}

bool MapLocalizer::walkable_at(Vec2 p) const {
  const auto [col, row] = walkable_.cell_of(p);
  return walkable_.in_bounds(col, row) && walkable_.at(col, row);
}

void MapLocalizer::on_step(double stride, double heading) {
  if (particles_.empty()) initialize_uniform();
  for (auto& particle : particles_) {
    if (particle.weight <= 0) continue;
    const double s = stride * (1.0 + rng_.normal(0.0, config_.stride_sigma));
    const double h = heading + rng_.normal(0.0, config_.heading_sigma);
    const Vec2 next = particle.position + Vec2::from_angle(h) * s;
    // Wall constraint: both the destination and the midpoint must stay in
    // walkable space (a cheap swept test at step scale).
    if (walkable_at(next) &&
        walkable_at(particle.position + (next - particle.position) * 0.5)) {
      particle.position = next;
    } else {
      particle.weight = 0.0;
    }
  }
  normalize_and_maybe_resample();
}

void MapLocalizer::normalize_and_maybe_resample() {
  double total = 0.0;
  for (const auto& p : particles_) total += p.weight;
  if (total <= 0) {
    // Belief died (all particles hit walls): recover by re-scattering.
    initialize_uniform();
    return;
  }
  double sum_sq = 0.0;
  for (auto& p : particles_) {
    p.weight /= total;
    sum_sq += p.weight * p.weight;
  }
  const double effective = 1.0 / sum_sq;
  if (effective >= config_.resample_threshold * particles_.size()) return;

  // Systematic resampling.
  std::vector<Particle> next;
  next.reserve(particles_.size());
  const double step = 1.0 / static_cast<double>(particles_.size());
  double cursor = rng_.uniform(0.0, step);
  double cumulative = 0.0;
  std::size_t index = 0;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    while (cumulative + particles_[index].weight < cursor &&
           index + 1 < particles_.size()) {
      cumulative += particles_[index].weight;
      ++index;
    }
    Particle p = particles_[index];
    p.weight = 1.0;
    // Tiny roughening to avoid sample impoverishment.
    p.position += {rng_.normal(0.0, 0.05), rng_.normal(0.0, 0.05)};
    next.push_back(p);
    cursor += step;
  }
  particles_ = std::move(next);
}

BeliefEstimate MapLocalizer::estimate() const {
  BeliefEstimate out;
  if (particles_.empty()) return out;
  double total = 0.0;
  Vec2 mean;
  for (const auto& p : particles_) {
    mean += p.position * p.weight;
    total += p.weight;
  }
  if (total <= 0) return out;
  mean = mean / total;
  double var = 0.0;
  for (const auto& p : particles_) {
    var += p.weight * mean.distance_to(p.position) * mean.distance_to(p.position);
  }
  out.position = mean;
  out.spread = std::sqrt(var / total);
  out.in_map_fraction =
      total / static_cast<double>(particles_.size());
  return out;
}

}  // namespace crowdmap::localize

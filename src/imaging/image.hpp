// Image containers for the vision stack: single-channel float images (all
// feature extraction) and 3-channel color images (color-indexing histograms,
// lighting simulation).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace crowdmap::imaging {

/// Row-major single-channel float image. Pixel values are nominally in
/// [0, 1] but the container does not enforce it (gradients go negative).
class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t pixel_count() const noexcept { return data_.size(); }

  [[nodiscard]] float at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  float& at(int x, int y) {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  /// Clamped access: out-of-bounds coordinates are clamped to the border.
  [[nodiscard]] float at_clamped(int x, int y) const noexcept;
  /// Bilinear sample at sub-pixel coordinates (clamped).
  [[nodiscard]] float sample_bilinear(double x, double y) const noexcept;

  [[nodiscard]] const std::vector<float>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<float>& data() noexcept { return data_; }

  /// Raw pointer to pixel row y — contiguous width() floats, for the SIMD
  /// row kernels in common/simd.hpp.
  [[nodiscard]] const float* row(int y) const noexcept {
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }
  [[nodiscard]] float* row(int y) noexcept {
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }

  /// Nearest/bilinear resize.
  [[nodiscard]] Image resized(int new_width, int new_height) const;
  /// Sub-rectangle copy; clamps to bounds.
  [[nodiscard]] Image crop(int x0, int y0, int w, int h) const;
  /// 3x3 box blur, `iterations` times.
  [[nodiscard]] Image box_blurred(int iterations = 1) const;

  [[nodiscard]] float mean() const noexcept;
  [[nodiscard]] float stddev() const noexcept;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

/// Sobel gradients: returns (gx, gy) image pair.
struct Gradients {
  Image gx;
  Image gy;
};
[[nodiscard]] Gradients sobel_gradients(const Image& img);

/// Gradient magnitude image from Sobel gradients.
[[nodiscard]] Image gradient_magnitude(const Gradients& g);

/// RGB color image, values nominally in [0,1].
class ColorImage {
 public:
  ColorImage() = default;
  ColorImage(int width, int height, std::array<float, 3> fill = {0, 0, 0});

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] const std::array<float, 3>& at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  std::array<float, 3>& at(int x, int y) {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Luminance (Rec. 601) grayscale conversion.
  [[nodiscard]] Image to_gray() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::array<float, 3>> data_;
};

}  // namespace crowdmap::imaging

#include "imaging/descriptors.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/simd.hpp"

namespace crowdmap::imaging {

std::vector<float> color_histogram(const ColorImage& img, int bins_per_channel) {
  if (bins_per_channel <= 0) throw std::invalid_argument("bad bins_per_channel");
  std::vector<float> hist(static_cast<std::size_t>(bins_per_channel) *
                              bins_per_channel * bins_per_channel,
                          0.0f);
  if (img.empty()) return hist;
  auto bin_of = [bins_per_channel](float v) {
    const int b = static_cast<int>(std::clamp(v, 0.0f, 0.999f) * bins_per_channel);
    return std::min(b, bins_per_channel - 1);
  };
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const auto& px = img.at(x, y);
      const std::size_t idx =
          (static_cast<std::size_t>(bin_of(px[0])) * bins_per_channel +
           bin_of(px[1])) *
              bins_per_channel +
          bin_of(px[2]);
      hist[idx] += 1.0f;
    }
  }
  const float total = static_cast<float>(img.width()) * img.height();
  for (float& v : hist) v /= total;
  return hist;
}

double histogram_intersection(const std::vector<float>& a,
                              const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("histogram size mismatch");
  return common::simd::sum_min_f32(a.data(), b.data(), a.size());
}

std::vector<float> shape_descriptor(const Image& img, int grid) {
  if (grid <= 0) throw std::invalid_argument("bad grid");
  constexpr int kBins = 8;
  std::vector<float> desc(static_cast<std::size_t>(grid) * grid * kBins, 0.0f);
  if (img.empty()) return desc;
  const auto grads = sobel_gradients(img);
  std::vector<float> mag_row(static_cast<std::size_t>(img.width()));
  std::vector<float> ang_row(static_cast<std::size_t>(img.width()));
  for (int y = 0; y < img.height(); ++y) {
    const int cy = std::min(y * grid / img.height(), grid - 1);
    // Row-strip magnitude + polynomial atan2 (common::simd::mag_angle_f32);
    // the bin index is clamped below, so the polynomial's ~1e-5 rad error is
    // deterministic and harmless.
    common::simd::mag_angle_f32(grads.gx.row(y), grads.gy.row(y),
                                mag_row.data(), ang_row.data(),
                                static_cast<std::size_t>(img.width()));
    for (int x = 0; x < img.width(); ++x) {
      const int cx = std::min(x * grid / img.width(), grid - 1);
      const double mag = mag_row[static_cast<std::size_t>(x)];
      if (mag < 1e-6) continue;
      double angle = ang_row[static_cast<std::size_t>(x)];  // (-pi, pi]
      if (angle < 0) angle += 2.0 * 3.14159265358979323846;
      const int bin =
          std::min(kBins - 1, static_cast<int>(angle / (2.0 * 3.14159265358979323846) * kBins));
      desc[(static_cast<std::size_t>(cy) * grid + cx) * kBins + bin] +=
          static_cast<float>(mag);
    }
  }
  const double norm_sq =
      common::simd::dot_f32(desc.data(), desc.data(), desc.size());
  const double norm = std::sqrt(norm_sq) + 1e-9;
  for (float& v : desc) v = static_cast<float>(v / norm);
  return desc;
}

double shape_similarity(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("shape size mismatch");
  const double dist_sq = common::simd::l2sq_f32(a.data(), b.data(), a.size());
  // Both descriptors are unit-norm, so distance is in [0, 2].
  return std::max(0.0, 1.0 - std::sqrt(dist_sq) / 2.0);
}

void haar_decompose(Image& img) {
  const int n = img.width();
  if (n != img.height() || (n & (n - 1)) != 0 || n == 0) {
    throw std::invalid_argument("haar_decompose needs a square power-of-two image");
  }
  std::vector<float> tmp(static_cast<std::size_t>(n));
  const float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
  for (int len = n; len > 1; len /= 2) {
    // Rows.
    for (int y = 0; y < len; ++y) {
      for (int i = 0; i < len / 2; ++i) {
        const float a = img.at(2 * i, y);
        const float b = img.at(2 * i + 1, y);
        tmp[i] = (a + b) * inv_sqrt2;
        tmp[len / 2 + i] = (a - b) * inv_sqrt2;
      }
      for (int i = 0; i < len; ++i) img.at(i, y) = tmp[i];
    }
    // Columns.
    for (int x = 0; x < len; ++x) {
      for (int i = 0; i < len / 2; ++i) {
        const float a = img.at(x, 2 * i);
        const float b = img.at(x, 2 * i + 1);
        tmp[i] = (a + b) * inv_sqrt2;
        tmp[len / 2 + i] = (a - b) * inv_sqrt2;
      }
      for (int i = 0; i < len; ++i) img.at(x, i) = tmp[i];
    }
  }
}

WaveletSignature wavelet_signature(const Image& img, int size, int keep) {
  if ((size & (size - 1)) != 0 || size <= 0) {
    throw std::invalid_argument("wavelet size must be a power of two");
  }
  WaveletSignature sig;
  sig.size = size;
  if (img.empty()) return sig;
  Image work = img.resized(size, size);
  haar_decompose(work);
  sig.dc = work.at(0, 0) / static_cast<float>(size);

  struct Coeff {
    int pos;
    float value;
  };
  std::vector<Coeff> coeffs;
  coeffs.reserve(static_cast<std::size_t>(size) * size - 1);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      if (x == 0 && y == 0) continue;  // DC handled separately
      coeffs.push_back({y * size + x, work.at(x, y)});
    }
  }
  const auto kth = coeffs.begin() + std::min<std::size_t>(keep, coeffs.size());
  std::partial_sort(coeffs.begin(), kth, coeffs.end(),
                    [](const Coeff& a, const Coeff& b) {
                      return std::abs(a.value) > std::abs(b.value);
                    });
  coeffs.erase(kth, coeffs.end());
  std::sort(coeffs.begin(), coeffs.end(),
            [](const Coeff& a, const Coeff& b) { return a.pos < b.pos; });
  for (const auto& c : coeffs) {
    sig.positions.push_back(c.pos);
    sig.signs.push_back(c.value >= 0 ? 1 : -1);
  }
  return sig;
}

double wavelet_similarity(const WaveletSignature& a, const WaveletSignature& b) {
  if (a.size != b.size) throw std::invalid_argument("wavelet size mismatch");
  if (a.positions.empty() && b.positions.empty()) return 1.0;
  // Count coefficients retained by both with matching sign.
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t matches = 0;
  while (i < a.positions.size() && j < b.positions.size()) {
    if (a.positions[i] == b.positions[j]) {
      if (a.signs[i] == b.signs[j]) ++matches;
      ++i;
      ++j;
    } else if (a.positions[i] < b.positions[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const double denom =
      static_cast<double>(std::max(a.positions.size(), b.positions.size()));
  const double coeff_score = denom > 0 ? static_cast<double>(matches) / denom : 1.0;
  const double dc_penalty = std::min(1.0, static_cast<double>(std::abs(a.dc - b.dc)));
  return std::max(0.0, coeff_score - 0.5 * dc_penalty);
}

}  // namespace crowdmap::imaging

// Integral image (summed-area table) — the backbone of the SURF-style
// detector's constant-time box filters.
#pragma once

#include "imaging/image.hpp"

namespace crowdmap::imaging {

/// Summed-area table: S(x, y) = sum of pixels in [0,x) x [0,y).
/// Stored with one extra row/column of zeros so box sums need no branches.
class IntegralImage {
 public:
  explicit IntegralImage(const Image& img);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  /// Sum of the inclusive pixel rectangle [x0, x1] x [y0, y1].
  /// Coordinates are clamped to the image bounds.
  [[nodiscard]] double box_sum(int x0, int y0, int x1, int y1) const noexcept;

  /// Mean over the same rectangle.
  [[nodiscard]] double box_mean(int x0, int y0, int x1, int y1) const noexcept;

 private:
  [[nodiscard]] double s(int x, int y) const noexcept {
    return table_[static_cast<std::size_t>(y) * (width_ + 1) + x];
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<double> table_;
};

}  // namespace crowdmap::imaging

// Integral image (summed-area table) — the backbone of the SURF-style
// detector's constant-time box filters.
#pragma once

#include "imaging/image.hpp"

namespace crowdmap::imaging {

/// Summed-area table: S(x, y) = sum of pixels in [0,x) x [0,y).
/// Stored with one extra row/column of zeros so box sums need no branches.
class IntegralImage {
 public:
  explicit IntegralImage(const Image& img);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  /// Sum of the inclusive pixel rectangle [x0, x1] x [y0, y1].
  /// Coordinates are clamped to the image bounds.
  [[nodiscard]] double box_sum(int x0, int y0, int x1, int y1) const noexcept;

  /// box_sum without the clamps, for callers that guarantee
  /// 0 <= x0 <= x1 < width and 0 <= y0 <= y1 < height (the SURF detector
  /// proves this from its margins). Same value AND same floating-point
  /// evaluation order as box_sum on in-bounds rectangles — the SURF hot
  /// loops depend on that bit-for-bit.
  [[nodiscard]] double box_sum_fast(int x0, int y0, int x1,
                                    int y1) const noexcept {
    return s(x1 + 1, y1 + 1) - s(x0, y1 + 1) - s(x1 + 1, y0) + s(x0, y0);
  }

  /// Raw pointer to table row y (row length width() + 1; y in
  /// [0, height()]). Row y holds prefix sums over pixel rows [0, y) —
  /// row(y)[x] == S(x, y). Exists for the vectorized Hessian row kernel in
  /// src/vision/surf.cpp, which needs contiguous loads.
  [[nodiscard]] const double* row(int y) const noexcept {
    return table_.data() + static_cast<std::size_t>(y) * (width_ + 1);
  }

  /// Mean over the same rectangle.
  [[nodiscard]] double box_mean(int x0, int y0, int x1, int y1) const noexcept;

 private:
  [[nodiscard]] double s(int x, int y) const noexcept {
    return table_[static_cast<std::size_t>(y) * (width_ + 1) + x];
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<double> table_;
};

}  // namespace crowdmap::imaging

#include "imaging/morphology.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace crowdmap::imaging {

namespace {

/// Offsets within a disc of the given radius.
[[nodiscard]] std::vector<std::pair<int, int>> disc_offsets(int radius) {
  std::vector<std::pair<int, int>> offsets;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy <= radius * radius) offsets.emplace_back(dx, dy);
    }
  }
  return offsets;
}

}  // namespace

BoolRaster dilate(const BoolRaster& src, int radius) {
  if (radius <= 0) return src;
  BoolRaster out(src.extent(), src.cell_size());
  const auto offsets = disc_offsets(radius);
  for (int r = 0; r < src.height(); ++r) {
    for (int c = 0; c < src.width(); ++c) {
      if (!src.at(c, r)) continue;
      for (const auto& [dx, dy] : offsets) out.set(c + dx, r + dy, true);
    }
  }
  return out;
}

BoolRaster erode(const BoolRaster& src, int radius) {
  if (radius <= 0) return src;
  BoolRaster out(src.extent(), src.cell_size());
  const auto offsets = disc_offsets(radius);
  for (int r = 0; r < src.height(); ++r) {
    for (int c = 0; c < src.width(); ++c) {
      bool all = true;
      for (const auto& [dx, dy] : offsets) {
        const int cc = c + dx;
        const int rr = r + dy;
        if (!src.in_bounds(cc, rr) || !src.at(cc, rr)) {
          all = false;
          break;
        }
      }
      out.set(c, r, all);
    }
  }
  return out;
}

BoolRaster close(const BoolRaster& src, int radius) {
  return erode(dilate(src, radius), radius);
}

BoolRaster open(const BoolRaster& src, int radius) {
  return dilate(erode(src, radius), radius);
}

Components connected_components(const BoolRaster& src) {
  Components out;
  const int w = src.width();
  const int h = src.height();
  out.labels.assign(static_cast<std::size_t>(w) * h, 0);
  out.sizes.push_back(0);  // label 0 placeholder
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      if (!src.at(c, r) || out.labels[static_cast<std::size_t>(r) * w + c] != 0) {
        continue;
      }
      const int label = ++out.count;
      std::size_t size = 0;
      std::deque<std::pair<int, int>> frontier{{c, r}};
      out.labels[static_cast<std::size_t>(r) * w + c] = label;
      while (!frontier.empty()) {
        const auto [cc, cr] = frontier.front();
        frontier.pop_front();
        ++size;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const int nc = cc + dx;
            const int nr = cr + dy;
            if (!src.in_bounds(nc, nr) || !src.at(nc, nr)) continue;
            auto& lbl = out.labels[static_cast<std::size_t>(nr) * w + nc];
            if (lbl == 0) {
              lbl = label;
              frontier.emplace_back(nc, nr);
            }
          }
        }
      }
      out.sizes.push_back(size);
    }
  }
  return out;
}

BoolRaster remove_small_components(const BoolRaster& src, std::size_t min_cells) {
  const auto comps = connected_components(src);
  BoolRaster out(src.extent(), src.cell_size());
  const int w = src.width();
  for (int r = 0; r < src.height(); ++r) {
    for (int c = 0; c < w; ++c) {
      const int label = comps.labels[static_cast<std::size_t>(r) * w + c];
      if (label > 0 && comps.sizes[static_cast<std::size_t>(label)] >= min_cells) {
        out.set(c, r, true);
      }
    }
  }
  return out;
}

BoolRaster bridge_gaps(const BoolRaster& src, int max_gap_cells) {
  BoolRaster out = src;
  for (int iteration = 0; iteration < 32; ++iteration) {  // hard safety bound
    const auto comps = connected_components(out);
    if (comps.count <= 1) break;
    // Find the closest pair of cells in distinct components.
    const int w = out.width();
    struct Cell {
      int c;
      int r;
      int label;
    };
    std::vector<Cell> cells;
    for (int r = 0; r < out.height(); ++r) {
      for (int c = 0; c < w; ++c) {
        const int label = comps.labels[static_cast<std::size_t>(r) * w + c];
        if (label > 0) cells.push_back({c, r, label});
      }
    }
    double best_dist = std::numeric_limits<double>::max();
    Cell best_a{0, 0, 0};
    Cell best_b{0, 0, 0};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      for (std::size_t j = i + 1; j < cells.size(); ++j) {
        if (cells[i].label == cells[j].label) continue;
        const double dc = cells[i].c - cells[j].c;
        const double dr = cells[i].r - cells[j].r;
        const double d = std::sqrt(dc * dc + dr * dr);
        if (d < best_dist) {
          best_dist = d;
          best_a = cells[i];
          best_b = cells[j];
        }
      }
    }
    if (best_dist > max_gap_cells) break;
    // Draw a straight bridge.
    const int steps = std::max(1, static_cast<int>(std::ceil(best_dist * 2)));
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      const int c = static_cast<int>(std::lround(best_a.c + t * (best_b.c - best_a.c)));
      const int r = static_cast<int>(std::lround(best_a.r + t * (best_b.r - best_a.r)));
      out.set(c, r, true);
    }
  }
  return out;
}

}  // namespace crowdmap::imaging

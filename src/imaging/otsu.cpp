#include "imaging/otsu.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace crowdmap::imaging {

namespace {

constexpr int kBins = 256;

/// Otsu on a histogram: returns the bin index maximizing between-class
/// variance (threshold is "<= bin" vs "> bin").
[[nodiscard]] int otsu_bin(const std::array<double, kBins>& hist, double total) {
  double sum_all = 0.0;
  for (int i = 0; i < kBins; ++i) sum_all += i * hist[i];
  double sum_b = 0.0;
  double w_b = 0.0;
  double best_var = -1.0;
  int best_bin = 0;
  for (int i = 0; i < kBins; ++i) {
    w_b += hist[i];
    if (w_b <= 0) continue;
    const double w_f = total - w_b;
    if (w_f <= 0) break;
    sum_b += i * hist[i];
    const double mean_b = sum_b / w_b;
    const double mean_f = (sum_all - sum_b) / w_f;
    const double var_between = w_b * w_f * (mean_b - mean_f) * (mean_b - mean_f);
    if (var_between > best_var) {
      best_var = var_between;
      best_bin = i;
    }
  }
  return best_bin;
}

}  // namespace

double otsu_threshold(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  const double max_v = *std::max_element(samples.begin(), samples.end());
  if (max_v <= 0.0) return 0.0;
  std::array<double, kBins> hist{};
  for (const double s : samples) {
    const int bin = std::min(kBins - 1, static_cast<int>(s / max_v * (kBins - 1)));
    hist[std::max(0, bin)] += 1.0;
  }
  const int bin = otsu_bin(hist, static_cast<double>(samples.size()));
  return (bin + 0.5) / (kBins - 1) * max_v;
}

float otsu_threshold(const Image& img) {
  std::vector<double> samples;
  samples.reserve(img.pixel_count());
  for (const float v : img.data()) samples.push_back(static_cast<double>(v));
  return static_cast<float>(otsu_threshold(std::span<const double>(samples)));
}

}  // namespace crowdmap::imaging

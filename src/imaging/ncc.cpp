#include "imaging/ncc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"

namespace crowdmap::imaging {

double normalized_cross_correlation(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("NCC: image size mismatch");
  }
  if (a.empty()) return 0.0;
  const double ma = a.mean();
  const double mb = b.mean();
  // The three mean-subtracted sums in one pass, pinned 4-lane order (see
  // common::simd::ncc_accum_f32).
  const auto s =
      common::simd::ncc_accum_f32(a.data().data(), b.data().data(), ma, mb,
                                  a.pixel_count());
  if (s.da < 1e-12 && s.db < 1e-12) return 1.0;  // both constant: identical up to offset
  if (s.da < 1e-12 || s.db < 1e-12) return 0.0;
  return s.num / std::sqrt(s.da * s.db);
}

double shifted_ncc(const Image& a, const Image& b, int dx, int dy) {
  // Overlap region in a's coordinates.
  const int x0 = std::max(0, dx);
  const int y0 = std::max(0, dy);
  const int x1 = std::min(a.width(), b.width() + dx);
  const int y1 = std::min(a.height(), b.height() + dy);
  if (x1 - x0 < 2 || y1 - y0 < 2) return 0.0;

  // The overlap rows are contiguous in both images, so each row runs the
  // pinned-order SIMD reduction; row results combine sequentially in double
  // (top to bottom) — a fixed order, deterministic on every backend.
  const std::size_t row_n = static_cast<std::size_t>(x1 - x0);
  const long n = static_cast<long>(x1 - x0) * (y1 - y0);
  double sa = 0.0;
  double sb = 0.0;
  for (int y = y0; y < y1; ++y) {
    sa += common::simd::sum_f32(a.row(y) + x0, row_n);
    sb += common::simd::sum_f32(b.row(y - dy) + (x0 - dx), row_n);
  }
  const double ma = sa / n;
  const double mb = sb / n;
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (int y = y0; y < y1; ++y) {
    const auto s = common::simd::ncc_accum_f32(
        a.row(y) + x0, b.row(y - dy) + (x0 - dx), ma, mb, row_n);
    num += s.num;
    da += s.da;
    db += s.db;
  }
  if (da < 1e-12 || db < 1e-12) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace crowdmap::imaging

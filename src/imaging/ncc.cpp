#include "imaging/ncc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crowdmap::imaging {

double normalized_cross_correlation(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("NCC: image size mismatch");
  }
  if (a.empty()) return 0.0;
  const double ma = a.mean();
  const double mb = b.mean();
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  const auto& ad = a.data();
  const auto& bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    const double va = ad[i] - ma;
    const double vb = bd[i] - mb;
    num += va * vb;
    da += va * va;
    db += vb * vb;
  }
  if (da < 1e-12 && db < 1e-12) return 1.0;  // both constant: identical up to offset
  if (da < 1e-12 || db < 1e-12) return 0.0;
  return num / std::sqrt(da * db);
}

double shifted_ncc(const Image& a, const Image& b, int dx, int dy) {
  // Overlap region in a's coordinates.
  const int x0 = std::max(0, dx);
  const int y0 = std::max(0, dy);
  const int x1 = std::min(a.width(), b.width() + dx);
  const int y1 = std::min(a.height(), b.height() + dy);
  if (x1 - x0 < 2 || y1 - y0 < 2) return 0.0;

  double sa = 0.0;
  double sb = 0.0;
  const long n = static_cast<long>(x1 - x0) * (y1 - y0);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      sa += a.at(x, y);
      sb += b.at(x - dx, y - dy);
    }
  }
  const double ma = sa / n;
  const double mb = sb / n;
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const double va = a.at(x, y) - ma;
      const double vb = b.at(x - dx, y - dy) - mb;
      num += va * vb;
      da += va * va;
      db += vb * vb;
    }
  }
  if (da < 1e-12 || db < 1e-12) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace crowdmap::imaging

#include "imaging/integral.hpp"

#include <algorithm>

namespace crowdmap::imaging {

IntegralImage::IntegralImage(const Image& img)
    : width_(img.width()), height_(img.height()) {
  table_.assign(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0.0);
  for (int y = 0; y < height_; ++y) {
    double row_sum = 0.0;
    for (int x = 0; x < width_; ++x) {
      row_sum += img.at(x, y);
      table_[static_cast<std::size_t>(y + 1) * (width_ + 1) + (x + 1)] =
          s(x + 1, y) + row_sum;
    }
  }
}

double IntegralImage::box_sum(int x0, int y0, int x1, int y1) const noexcept {
  x0 = std::clamp(x0, 0, width_ - 1);
  x1 = std::clamp(x1, 0, width_ - 1);
  y0 = std::clamp(y0, 0, height_ - 1);
  y1 = std::clamp(y1, 0, height_ - 1);
  if (x1 < x0 || y1 < y0) return 0.0;
  return s(x1 + 1, y1 + 1) - s(x0, y1 + 1) - s(x1 + 1, y0) + s(x0, y0);
}

double IntegralImage::box_mean(int x0, int y0, int x1, int y1) const noexcept {
  const int w = std::max(0, std::min(x1, width_ - 1) - std::max(x0, 0) + 1);
  const int h = std::max(0, std::min(y1, height_ - 1) - std::max(y0, 0) + 1);
  const long n = static_cast<long>(w) * h;
  return n == 0 ? 0.0 : box_sum(x0, y0, x1, y1) / static_cast<double>(n);
}

}  // namespace crowdmap::imaging

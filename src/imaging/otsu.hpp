// Otsu's automatic threshold selection (paper §III.B.II step 3: binarizing
// the occupancy grid's access probabilities).
#pragma once

#include <span>

#include "imaging/image.hpp"

namespace crowdmap::imaging {

/// Otsu threshold over arbitrary nonnegative samples. Builds a 256-bin
/// histogram over [0, max(sample)] and returns the threshold value that
/// maximizes between-class variance. Returns 0 for empty/constant input.
[[nodiscard]] double otsu_threshold(std::span<const double> samples);

/// Otsu threshold over image pixels (values assumed in [0, 1]).
[[nodiscard]] float otsu_threshold(const Image& img);

}  // namespace crowdmap::imaging

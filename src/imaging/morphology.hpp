// Binary morphology on BoolRaster: dilation/erosion/closing, connected
// components and gap bridging — the "repairing the unconnected paths" step
// of the floor path skeleton reconstruction (§III.B.II step 6).
#pragma once

#include <vector>

#include "geometry/raster.hpp"

namespace crowdmap::imaging {

using geometry::BoolRaster;

/// Dilation with a disc structuring element of `radius` cells.
[[nodiscard]] BoolRaster dilate(const BoolRaster& src, int radius);

/// Erosion with a disc structuring element of `radius` cells.
[[nodiscard]] BoolRaster erode(const BoolRaster& src, int radius);

/// Morphological closing: dilate then erode.
[[nodiscard]] BoolRaster close(const BoolRaster& src, int radius);

/// Morphological opening: erode then dilate.
[[nodiscard]] BoolRaster open(const BoolRaster& src, int radius);

/// 8-connected component labelling. Returns per-cell labels (0 = background,
/// components numbered from 1) and the number of components.
struct Components {
  std::vector<int> labels;  // row-major, size = width * height
  int count = 0;
  std::vector<std::size_t> sizes;  // indexed by label (sizes[0] unused)
};
[[nodiscard]] Components connected_components(const BoolRaster& src);

/// Removes set components smaller than `min_cells`.
[[nodiscard]] BoolRaster remove_small_components(const BoolRaster& src,
                                                 std::size_t min_cells);

/// Bridges distinct components whose nearest cells are within
/// `max_gap_cells` by drawing a straight 1-cell-wide path between them.
/// Repeats until no such pair remains. This implements the paper's path
/// normalization ("repairing the unconnected paths").
[[nodiscard]] BoolRaster bridge_gaps(const BoolRaster& src, int max_gap_cells);

}  // namespace crowdmap::imaging

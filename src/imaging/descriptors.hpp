// The three cheap retrieval descriptors of the paper's first-stage key-frame
// comparison (§III.B.I): color-indexing histograms (Swain–Ballard), shape
// matching (edge-orientation sketch, Kato et al.), and Haar wavelet
// signatures (Jacobs et al., "fast multiresolution image querying").
#pragma once

#include <vector>

#include "imaging/image.hpp"

namespace crowdmap::imaging {

// ---------------------------------------------------------------- color ---

/// 3D RGB histogram with `bins_per_channel`^3 cells, L1-normalized.
[[nodiscard]] std::vector<float> color_histogram(const ColorImage& img,
                                                 int bins_per_channel = 8);

/// Swain–Ballard histogram intersection in [0, 1].
[[nodiscard]] double histogram_intersection(const std::vector<float>& a,
                                            const std::vector<float>& b);

// ---------------------------------------------------------------- shape ---

/// Edge-orientation histogram over a spatial grid: the image is divided into
/// grid x grid cells; each cell contributes an 8-bin edge-direction
/// histogram weighted by gradient magnitude. L2-normalized.
[[nodiscard]] std::vector<float> shape_descriptor(const Image& img, int grid = 4);

/// Shape similarity in [0, 1]: 1 - normalized L2 distance.
[[nodiscard]] double shape_similarity(const std::vector<float>& a,
                                      const std::vector<float>& b);

// -------------------------------------------------------------- wavelet ---

/// Haar wavelet signature: the image is resized to a power-of-two square,
/// fully Haar-decomposed, and the `keep` largest-magnitude coefficients are
/// retained as (index, sign) pairs plus the DC average (Jacobs et al.).
struct WaveletSignature {
  float dc = 0.0f;                 // overall average intensity
  std::vector<int> positions;      // flattened coefficient indices, sorted
  std::vector<signed char> signs;  // +1 / -1 per retained coefficient
  int size = 0;                    // decomposition side length
};

[[nodiscard]] WaveletSignature wavelet_signature(const Image& img, int size = 64,
                                                 int keep = 60);

/// Similarity in [0, 1]: fraction of matching signed coefficients minus a
/// DC penalty (matching the spirit of the Jacobs scoring function).
[[nodiscard]] double wavelet_similarity(const WaveletSignature& a,
                                        const WaveletSignature& b);

/// Full in-place 2D Haar decomposition of a square power-of-two image.
/// Exposed for tests.
void haar_decompose(Image& img);

}  // namespace crowdmap::imaging

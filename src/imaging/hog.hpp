// Histogram of Oriented Gradients (Dalal & Triggs), used by the paper for
// key-frame selection: consecutive frames with near-identical HOG responses
// are collapsed (§III.B.I "Video Key-frame Selection").
#pragma once

#include <vector>

#include "imaging/image.hpp"

namespace crowdmap::imaging {

/// HOG parameters. Defaults follow the classic 8x8-cell, 9-bin,
/// 2x2-block/L2 normalization configuration.
struct HogParams {
  int cell_size = 8;        // pixels per cell side
  int bins = 9;             // orientation bins over [0, pi)
  int block_size = 2;       // cells per block side
  bool signed_gradients = false;
};

/// Dense HOG descriptor of the whole image, block-normalized, concatenated.
[[nodiscard]] std::vector<float> hog_descriptor(const Image& img,
                                                const HogParams& params = {});

/// Cosine similarity between two descriptors of equal length; 0 for empty.
[[nodiscard]] double descriptor_cosine_similarity(const std::vector<float>& a,
                                                  const std::vector<float>& b);

/// Euclidean distance between equal-length descriptors.
[[nodiscard]] double descriptor_distance(const std::vector<float>& a,
                                         const std::vector<float>& b);

}  // namespace crowdmap::imaging

// Normalized cross-correlation — the paper's frame-similarity score S_cc used
// during key-frame selection (§III.B.I).
#pragma once

#include "imaging/image.hpp"

namespace crowdmap::imaging {

/// Zero-mean normalized cross-correlation between two equal-size images.
/// Result in [-1, 1]; returns 0 when either image has zero variance and
/// 1 when both are constant and equal.
[[nodiscard]] double normalized_cross_correlation(const Image& a, const Image& b);

/// NCC of `b` against `a` shifted by (dx, dy); only the overlapping region
/// is scored. Used by the panorama compositor for fine alignment.
[[nodiscard]] double shifted_ncc(const Image& a, const Image& b, int dx, int dy);

}  // namespace crowdmap::imaging

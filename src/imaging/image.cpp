#include "imaging/image.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"

namespace crowdmap::imaging {

Image::Image(int width, int height, float fill)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) throw std::invalid_argument("negative image size");
  data_.assign(static_cast<std::size_t>(width) * height, fill);
}

float Image::at_clamped(int x, int y) const noexcept {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

float Image::sample_bilinear(double x, double y) const noexcept {
  x = std::clamp(x, 0.0, static_cast<double>(width_ - 1));
  y = std::clamp(y, 0.0, static_cast<double>(height_ - 1));
  const int x0 = static_cast<int>(x);
  const int y0 = static_cast<int>(y);
  const int x1 = std::min(x0 + 1, width_ - 1);
  const int y1 = std::min(y0 + 1, height_ - 1);
  const double fx = x - x0;
  const double fy = y - y0;
  const double top = at(x0, y0) * (1 - fx) + at(x1, y0) * fx;
  const double bot = at(x0, y1) * (1 - fx) + at(x1, y1) * fx;
  return static_cast<float>(top * (1 - fy) + bot * fy);
}

Image Image::resized(int new_width, int new_height) const {
  Image out(new_width, new_height);
  if (empty() || new_width == 0 || new_height == 0) return out;
  for (int y = 0; y < new_height; ++y) {
    const double sy = (y + 0.5) * height_ / new_height - 0.5;
    for (int x = 0; x < new_width; ++x) {
      const double sx = (x + 0.5) * width_ / new_width - 0.5;
      out.at(x, y) = sample_bilinear(sx, sy);
    }
  }
  return out;
}

Image Image::crop(int x0, int y0, int w, int h) const {
  x0 = std::clamp(x0, 0, width_);
  y0 = std::clamp(y0, 0, height_);
  w = std::clamp(w, 0, width_ - x0);
  h = std::clamp(h, 0, height_ - y0);
  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) out.at(x, y) = at(x0 + x, y0 + y);
  }
  return out;
}

Image Image::box_blurred(int iterations) const {
  Image src = *this;
  for (int it = 0; it < iterations; ++it) {
    Image dst(width_, height_);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        double acc = 0.0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            acc += src.at_clamped(x + dx, y + dy);
          }
        }
        dst.at(x, y) = static_cast<float>(acc / 9.0);
      }
    }
    src = std::move(dst);
  }
  return src;
}

float Image::mean() const noexcept {
  if (data_.empty()) return 0.0f;
  double acc = 0.0;
  for (const float v : data_) acc += v;
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

float Image::stddev() const noexcept {
  if (data_.size() < 2) return 0.0f;
  const double m = mean();
  double acc = 0.0;
  for (const float v : data_) acc += (v - m) * (v - m);
  return static_cast<float>(std::sqrt(acc / static_cast<double>(data_.size())));
}

Gradients sobel_gradients(const Image& img) {
  Gradients g{Image(img.width(), img.height()), Image(img.width(), img.height())};
  const int w = img.width();
  const int h = img.height();
  // Border (and tiny-image) fallback: the original clamped form.
  const auto edge = [&](int x, int y) {
    const float tl = img.at_clamped(x - 1, y - 1);
    const float tc = img.at_clamped(x, y - 1);
    const float tr = img.at_clamped(x + 1, y - 1);
    const float ml = img.at_clamped(x - 1, y);
    const float mr = img.at_clamped(x + 1, y);
    const float bl = img.at_clamped(x - 1, y + 1);
    const float bc = img.at_clamped(x, y + 1);
    const float br = img.at_clamped(x + 1, y + 1);
    g.gx.at(x, y) = (tr + 2 * mr + br) - (tl + 2 * ml + bl);
    g.gy.at(x, y) = (bl + 2 * bc + br) - (tl + 2 * tc + tr);
  };
  if (w < 3 || h < 3) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) edge(x, y);
    }
    return g;
  }
  // Interior pixels never clamp, so the row kernel applies; it evaluates the
  // same ((r + 2*c) + l)-grouped expression tree as `edge`, so the output is
  // bit-identical to the all-scalar loop.
  for (int y = 1; y + 1 < h; ++y) {
    common::simd::sobel_row_f32(img.row(y - 1) + 1, img.row(y) + 1,
                                img.row(y + 1) + 1, g.gx.row(y) + 1,
                                g.gy.row(y) + 1,
                                static_cast<std::size_t>(w - 2));
    edge(0, y);
    edge(w - 1, y);
  }
  for (int x = 0; x < w; ++x) {
    edge(x, 0);
    edge(x, h - 1);
  }
  return g;
}

Image gradient_magnitude(const Gradients& g) {
  Image out(g.gx.width(), g.gx.height());
  // sqrt(gx^2 + gy^2) computed in float — same value std::hypot produces on
  // these well-scaled gradients up to rounding; the kernel's expression tree
  // is identical on every backend, so the output is deterministic.
  common::simd::magnitude_f32(g.gx.data().data(), g.gy.data().data(),
                              out.data().data(), out.pixel_count());
  return out;
}

ColorImage::ColorImage(int width, int height, std::array<float, 3> fill)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) throw std::invalid_argument("negative image size");
  data_.assign(static_cast<std::size_t>(width) * height, fill);
}

Image ColorImage::to_gray() const {
  Image out(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const auto& px = at(x, y);
      out.at(x, y) = 0.299f * px[0] + 0.587f * px[1] + 0.114f * px[2];
    }
  }
  return out;
}

}  // namespace crowdmap::imaging

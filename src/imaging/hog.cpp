#include "imaging/hog.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/simd.hpp"

namespace crowdmap::imaging {

std::vector<float> hog_descriptor(const Image& img, const HogParams& params) {
  if (params.cell_size <= 0 || params.bins <= 0 || params.block_size <= 0) {
    throw std::invalid_argument("bad HOG params");
  }
  const int cells_x = img.width() / params.cell_size;
  const int cells_y = img.height() / params.cell_size;
  if (cells_x == 0 || cells_y == 0) return {};

  const auto grads = sobel_gradients(img);
  const double range = params.signed_gradients ? 2.0 * std::numbers::pi
                                               : std::numbers::pi;

  // Per-cell orientation histograms with linear bin interpolation.
  std::vector<float> cell_hist(
      static_cast<std::size_t>(cells_x) * cells_y * params.bins, 0.0f);
  auto hist_at = [&](int cx, int cy, int bin) -> float& {
    return cell_hist[(static_cast<std::size_t>(cy) * cells_x + cx) * params.bins + bin];
  };
  const int span_x = cells_x * params.cell_size;
  std::vector<float> mag_row(static_cast<std::size_t>(span_x));
  std::vector<float> ang_row(static_cast<std::size_t>(span_x));
  for (int y = 0; y < cells_y * params.cell_size; ++y) {
    // Magnitude and angle for the whole row at once. The angle comes from
    // the SIMD wrapper's polynomial atan2 (~1e-5 rad of libm's), identical
    // on every backend — see common::simd::mag_angle_f32.
    common::simd::mag_angle_f32(grads.gx.row(y), grads.gy.row(y),
                                mag_row.data(), ang_row.data(),
                                static_cast<std::size_t>(span_x));
    for (int x = 0; x < span_x; ++x) {
      const double mag = mag_row[static_cast<std::size_t>(x)];
      if (mag < 1e-9) continue;
      double angle = ang_row[static_cast<std::size_t>(x)];
      if (!params.signed_gradients && angle < 0) angle += std::numbers::pi;
      if (params.signed_gradients && angle < 0) angle += 2.0 * std::numbers::pi;
      const double bin_f = angle / range * params.bins;
      const int b0 = static_cast<int>(bin_f) % params.bins;
      const int b1 = (b0 + 1) % params.bins;
      const double frac = bin_f - std::floor(bin_f);
      hist_at(x / params.cell_size, y / params.cell_size, b0) +=
          static_cast<float>(mag * (1.0 - frac));
      hist_at(x / params.cell_size, y / params.cell_size, b1) +=
          static_cast<float>(mag * frac);
    }
  }

  // Block normalization (L2-hys style without clipping).
  std::vector<float> descriptor;
  const int blocks_x = cells_x - params.block_size + 1;
  const int blocks_y = cells_y - params.block_size + 1;
  if (blocks_x <= 0 || blocks_y <= 0) {
    // Image smaller than one block: return globally normalized cell hists.
    const double norm_sq =
        common::simd::dot_f32(cell_hist.data(), cell_hist.data(),
                              cell_hist.size());
    const double norm = std::sqrt(norm_sq) + 1e-6;
    for (float& v : cell_hist) v = static_cast<float>(v / norm);
    return cell_hist;
  }
  descriptor.reserve(static_cast<std::size_t>(blocks_x) * blocks_y *
                     params.block_size * params.block_size * params.bins);
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      const std::size_t start = descriptor.size();
      for (int cy = by; cy < by + params.block_size; ++cy) {
        for (int cx = bx; cx < bx + params.block_size; ++cx) {
          for (int b = 0; b < params.bins; ++b) {
            descriptor.push_back(hist_at(cx, cy, b));
          }
        }
      }
      const double norm_sq = common::simd::dot_f32(
          descriptor.data() + start, descriptor.data() + start,
          descriptor.size() - start);
      const double norm = std::sqrt(norm_sq) + 1e-6;
      for (std::size_t i = start; i < descriptor.size(); ++i) {
        descriptor[i] = static_cast<float>(descriptor[i] / norm);
      }
    }
  }
  return descriptor;
}

double descriptor_cosine_similarity(const std::vector<float>& a,
                                    const std::vector<float>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  const auto s = common::simd::dot3_f32(a.data(), b.data(), a.size());
  if (s.aa < 1e-12 || s.bb < 1e-12) {
    return s.aa < 1e-12 && s.bb < 1e-12 ? 1.0 : 0.0;
  }
  return s.ab / std::sqrt(s.aa * s.bb);
}

double descriptor_distance(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("descriptor size mismatch");
  return std::sqrt(common::simd::l2sq_f32(a.data(), b.data(), a.size()));
}

}  // namespace crowdmap::imaging

// Filesystem abstraction for the durable storage layer. Every byte the
// log-structured store persists flows through a storage::Env, which gives
// the tree exactly two implementations of durability:
//
//   * PosixEnv — the real filesystem (open/write/fsync/rename), used in
//     production and by the CLI's --storage-dir flag.
//   * FaultEnv — a deterministic in-memory filesystem driven by the
//     common::FaultInjector. It models the adversarial crash contract
//     ("any byte appended before the crash instant may have reached disk;
//     nothing after it did"), so kill-at-byte-N sweeps produce torn frames
//     at every possible boundary, plus fsync failures and read bit-rot —
//     all as pure functions of (seed, path, append ordinal), reproducible
//     at any thread count (docs/DURABILITY.md).
//
// The crowdmap_lint `raw-file-io` rule rejects raw fopen/ofstream/rename/
// unlink outside src/storage/ and src/io/, so this interface is the single
// audited seam where durable state touches the OS.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/expected.hpp"
#include "common/fault.hpp"
#include "io/serialize.hpp"

namespace crowdmap::storage {

/// Success-or-error result for operations with no payload. The value is
/// always `true`; callers branch on ok()/error() only.
using Status = common::Expected<bool>;

[[nodiscard]] inline Status ok_status() { return true; }

/// An open append-only file handle. append() buffers into the OS (or the
/// in-memory pending region); sync() is the durability barrier.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status append(const io::Bytes& data) = 0;
  virtual Status sync() = 0;
  virtual Status close() = 0;
};

/// Minimal filesystem surface the log-structured store needs. Paths are
/// plain strings; directories in FaultEnv are purely name prefixes.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending. `truncate` discards any existing content
  /// (new segment / tmp manifest); otherwise appends to the existing bytes.
  virtual common::Expected<std::unique_ptr<WritableFile>> open_writable(
      const std::string& path, bool truncate) = 0;

  /// Whole-file read. Error code "storage.not_found" when absent.
  [[nodiscard]] virtual common::Expected<io::Bytes> read_file(
      const std::string& path) = 0;

  [[nodiscard]] virtual bool file_exists(const std::string& path) = 0;

  /// Atomic replace: the install step of snapshots and manifests. After a
  /// crash either the old or the new content is visible, never a mix.
  virtual Status rename_file(const std::string& from,
                             const std::string& to) = 0;

  virtual Status remove_file(const std::string& path) = 0;

  /// Sorted names (not full paths) of the files directly under `dir`.
  [[nodiscard]] virtual common::Expected<std::vector<std::string>> list_dir(
      const std::string& dir) = 0;

  /// mkdir -p.
  virtual Status make_dirs(const std::string& dir) = 0;
};

/// Real-filesystem Env (POSIX fd API so sync() is a true fsync barrier).
class PosixEnv final : public Env {
 public:
  common::Expected<std::unique_ptr<WritableFile>> open_writable(
      const std::string& path, bool truncate) override;
  common::Expected<io::Bytes> read_file(const std::string& path) override;
  bool file_exists(const std::string& path) override;
  Status rename_file(const std::string& from, const std::string& to) override;
  Status remove_file(const std::string& path) override;
  common::Expected<std::vector<std::string>> list_dir(
      const std::string& dir) override;
  Status make_dirs(const std::string& dir) override;
};

/// Process-wide PosixEnv instance (the Env used when a service is given a
/// storage.dir but no explicit Env).
[[nodiscard]] Env& posix_env();

/// Deterministic in-memory Env with fault injection. Not an OS simulator:
/// just enough filesystem semantics for the WAL (append, atomic rename,
/// whole-file read, flat directories) plus the crash model above.
///
/// Fault points (armed through the injector; keys are stable hashes of
/// (path, per-file append ordinal) so decisions are thread-count-invariant):
///   fs.write_torn   — an append applies only a deterministic prefix and the
///                     env crashes (power cut mid-write).
///   fs.fsync_fail   — sync() reports failure; appended bytes stay pending.
///   fs.crash_at     — like write_torn with an independent probability knob.
///   fs.read_corrupt — read_file() flips one deterministic byte (bit-rot).
///
/// set_crash_at_bytes(N) is the exhaustive-sweep control: the env counts
/// every appended byte across all files and kills itself at byte N exactly,
/// so a test can iterate N over the whole write history. After a crash every
/// operation fails with "storage.crashed"; fork_survivor() yields the
/// post-restart filesystem (everything appended before the crash instant).
class FaultEnv final : public Env {
 public:
  explicit FaultEnv(common::FaultInjector* injector = nullptr)
      : injector_(injector) {}

  common::Expected<std::unique_ptr<WritableFile>> open_writable(
      const std::string& path, bool truncate) override CM_EXCLUDES(mutex_);
  common::Expected<io::Bytes> read_file(const std::string& path) override
      CM_EXCLUDES(mutex_);
  bool file_exists(const std::string& path) override CM_EXCLUDES(mutex_);
  Status rename_file(const std::string& from, const std::string& to) override
      CM_EXCLUDES(mutex_);
  Status remove_file(const std::string& path) override CM_EXCLUDES(mutex_);
  common::Expected<std::vector<std::string>> list_dir(
      const std::string& dir) override CM_EXCLUDES(mutex_);
  Status make_dirs(const std::string& dir) override CM_EXCLUDES(mutex_);

  /// Kill the env when the running total of appended bytes reaches `offset`
  /// (the append that crosses it applies only the bytes below the line).
  void set_crash_at_bytes(std::uint64_t offset) CM_EXCLUDES(mutex_);

  /// Swap the fault injector (not owned; may be null).
  void set_injector(common::FaultInjector* injector) CM_EXCLUDES(mutex_);

  [[nodiscard]] bool crashed() const CM_EXCLUDES(mutex_);
  /// Running total of bytes accepted by append() across all files — the
  /// coordinate system of set_crash_at_bytes().
  [[nodiscard]] std::uint64_t bytes_appended() const CM_EXCLUDES(mutex_);

  /// The filesystem a restarted process would see: a fresh, uncrashed
  /// FaultEnv holding every byte appended before the crash instant (or the
  /// full current state when no crash happened). No injector is attached.
  [[nodiscard]] std::unique_ptr<FaultEnv> fork_survivor() const
      CM_EXCLUDES(mutex_);

  static constexpr std::uint64_t kNoCrash = ~std::uint64_t{0};

 private:
  friend class FaultWritableFile;

  struct FileState {
    io::Bytes bytes;
    std::uint64_t append_ordinal = 0;  // fault-key component, monotonic
  };

  /// Appends under the crash/fault model; called by FaultWritableFile.
  Status append_entry(const std::string& path, const io::Bytes& data)
      CM_EXCLUDES(mutex_);
  Status sync_entry(const std::string& path) CM_EXCLUDES(mutex_);

  [[nodiscard]] common::Error crashed_error() const {
    return common::make_error("storage.crashed",
                              "FaultEnv crashed; operations rejected");
  }

  mutable common::Mutex mutex_;
  common::FaultInjector* injector_ CM_GUARDED_BY(mutex_) = nullptr;
  std::map<std::string, FileState> files_ CM_GUARDED_BY(mutex_);
  std::uint64_t appended_total_ CM_GUARDED_BY(mutex_) = 0;
  std::uint64_t crash_at_ CM_GUARDED_BY(mutex_) = kNoCrash;
  bool crashed_ CM_GUARDED_BY(mutex_) = false;
};

}  // namespace crowdmap::storage

// Log-structured persistence: an append-only sequence of CMWL segments plus
// periodic whole-state snapshots, tied together by a CRC-protected manifest
// that is only ever installed by atomic rename. Domain-agnostic: records and
// snapshot state are opaque byte strings; the op codec lives with the types
// it encodes (cloud/durable_store.*), the same split the io layer uses.
//
// Durability protocol (docs/DURABILITY.md):
//   * appends go to the active segment; with options.fsync each record is
//     synced before append() returns, so a record is either fully durable
//     or a torn tail that recovery truncates + quarantines.
//   * the manifest is rewritten manifest-first at every rotation and
//     checkpoint (tmp write + fsync + rename), so a listed-but-missing
//     segment can only ever be the never-created tail.
//   * checkpoint() writes the snapshot to a tmp file, renames it in,
//     installs a manifest pointing at it with a fresh empty segment, and
//     only then deletes the retired segments — a crash at any byte leaves
//     either the old or the new generation fully recoverable.
//
// Recovery (open) replays snapshot + every intact record in seqno order,
// never throws, and reports truncated/quarantined tail records with reasons.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/expected.hpp"
#include "io/serialize.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "storage/env.hpp"
#include "storage/wal.hpp"

namespace crowdmap::storage {

struct LogStoreOptions {
  std::string dir;                   // storage.dir
  std::size_t segment_bytes = std::size_t{4} << 20;  // storage.segment_bytes
  std::size_t snapshot_every = 0;    // storage.snapshot_every (0 = manual)
  bool fsync = true;                 // storage.fsync
};

/// A damaged record preserved (not dropped) by recovery.
struct QuarantinedRecord {
  std::string segment;   // segment file name
  std::uint64_t index = 0;
  std::string reason;    // wal.hpp damage reasons, or "bad_header"
  io::Bytes bytes;
};

struct RecoveryReport {
  bool snapshot_loaded = false;
  std::size_t segments_scanned = 0;
  std::size_t records_replayed = 0;
  std::vector<QuarantinedRecord> quarantined;

  /// Records lost to tail truncation == records preserved as quarantine
  /// evidence (the store never silently drops).
  [[nodiscard]] std::size_t truncated_records() const noexcept {
    return quarantined.size();
  }
};

class LogStructuredStore {
 public:
  LogStructuredStore(Env& env, LogStoreOptions options,
                     std::shared_ptr<obs::MetricsRegistry> registry = nullptr,
                     obs::FlightRecorder* flight = nullptr);

  using SnapshotRestore = std::function<Status(const io::Bytes&)>;
  using RecordApply = std::function<void(const io::Bytes&)>;

  /// Opens the store: replays the manifest's snapshot through `restore`,
  /// then every intact log record in order through `apply`, then starts a
  /// fresh active segment. Damage is truncated + quarantined into the
  /// report, never thrown. Errors (unreadable manifest/snapshot, env
  /// failures) come back as Expected errors.
  common::Expected<RecoveryReport> open(const SnapshotRestore& restore,
                                        const RecordApply& apply)
      CM_EXCLUDES(mutex_);

  /// Appends one durable record. After any env failure the store turns
  /// unhealthy and rejects further appends ("storage.unhealthy") — memory
  /// serving continues upstream, durability does not.
  Status append(const io::Bytes& record) CM_EXCLUDES(mutex_);

  /// Installs `state` as the new snapshot and retires every log segment.
  Status checkpoint(const io::Bytes& state) CM_EXCLUDES(mutex_);

  /// True once appends since the last checkpoint reached
  /// options.snapshot_every (callers export state outside the store's lock
  /// and then call checkpoint()).
  [[nodiscard]] bool checkpoint_due() const CM_EXCLUDES(mutex_);

  struct Stats {
    bool opened = false;
    bool healthy = false;
    std::uint64_t appends = 0;
    std::uint64_t append_failures = 0;
    std::uint64_t bytes_appended = 0;
    std::uint64_t segments_created = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t appends_since_checkpoint = 0;
    std::uint64_t live_segments = 0;
  };
  [[nodiscard]] Stats stats() const CM_EXCLUDES(mutex_);

  [[nodiscard]] bool healthy() const CM_EXCLUDES(mutex_);

 private:
  struct SegmentRef {
    std::string file;  // name within dir
    std::uint64_t seqno = 0;
  };

  [[nodiscard]] std::string full_path(const std::string& name) const;
  [[nodiscard]] static std::string segment_name(std::uint64_t seqno);
  [[nodiscard]] static std::string snapshot_name(std::uint64_t seqno);

  /// Serializes + installs the manifest (tmp write, sync, atomic rename).
  Status write_manifest_locked() CM_REQUIRES(mutex_);
  /// Starts a new active segment: registers it in the manifest first, then
  /// creates the file, so recovery treats a missing tail as "never written".
  Status start_segment_locked() CM_REQUIRES(mutex_);
  /// tmp write + sync + atomic rename of `bytes` into dir/`name`.
  Status install_file_locked(const std::string& name, const io::Bytes& bytes)
      CM_REQUIRES(mutex_);

  Env& env_;
  const LogStoreOptions options_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  obs::FlightRecorder* flight_ = nullptr;

  // Metric handles (null without a registry); registered once in the ctor.
  obs::Counter* appends_metric_ = nullptr;
  obs::Counter* append_failures_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Counter* segments_metric_ = nullptr;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Counter* replayed_metric_ = nullptr;
  obs::Counter* truncated_metric_ = nullptr;
  obs::Histogram* recovery_seconds_metric_ = nullptr;

  mutable common::Mutex mutex_;
  bool opened_ CM_GUARDED_BY(mutex_) = false;
  bool healthy_ CM_GUARDED_BY(mutex_) = false;
  std::uint64_t next_seqno_ CM_GUARDED_BY(mutex_) = 1;
  std::string snapshot_file_ CM_GUARDED_BY(mutex_);  // empty = none
  std::vector<SegmentRef> segments_ CM_GUARDED_BY(mutex_);
  std::unique_ptr<SegmentWriter> active_ CM_GUARDED_BY(mutex_);
  Stats stats_ CM_GUARDED_BY(mutex_);
};

}  // namespace crowdmap::storage

#include "storage/env.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

namespace crowdmap::storage {

namespace {

common::Error errno_error(const char* code, const std::string& what) {
  return common::make_error(code, what + ": " + std::strerror(errno));
}

// ---------------------------------------------------------------- posix ---

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }
  PosixWritableFile(const PosixWritableFile&) = delete;
  PosixWritableFile& operator=(const PosixWritableFile&) = delete;

  Status append(const io::Bytes& data) override {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_error("storage.io", "write failed");
      }
      off += static_cast<std::size_t>(n);
    }
    return ok_status();
  }

  Status sync() override {
    if (::fsync(fd_) != 0) return errno_error("storage.fsync", "fsync failed");
    return ok_status();
  }

  Status close() override {
    if (fd_ < 0) return ok_status();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return errno_error("storage.io", "close failed");
    return ok_status();
  }

 private:
  int fd_ = -1;
};

}  // namespace

common::Expected<std::unique_ptr<WritableFile>> PosixEnv::open_writable(
    const std::string& path, bool truncate) {
  const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return errno_error("storage.io", "open failed for " + path);
  return std::unique_ptr<WritableFile>(std::make_unique<PosixWritableFile>(fd));
}

common::Expected<io::Bytes> PosixEnv::read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return common::make_error("storage.not_found", "no such file: " + path);
    }
    return errno_error("storage.io", "open failed for " + path);
  }
  io::Bytes bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_error("storage.io", "read failed for " + path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

bool PosixEnv::file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status PosixEnv::rename_file(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return errno_error("storage.io", "rename failed " + from + " -> " + to);
  }
  return ok_status();
}

Status PosixEnv::remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // idempotent: missing file is success
  if (ec) {
    return common::make_error("storage.io",
                              "remove failed for " + path + ": " + ec.message());
  }
  return ok_status();
}

common::Expected<std::vector<std::string>> PosixEnv::list_dir(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return common::make_error("storage.io",
                              "list failed for " + dir + ": " + ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status PosixEnv::make_dirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return common::make_error("storage.io",
                              "mkdir failed for " + dir + ": " + ec.message());
  }
  return ok_status();
}

Env& posix_env() {
  static PosixEnv env;
  return env;
}

// ------------------------------------------------------------- fault env ---

namespace {

/// Stable fault key for the Nth append (or read) touching `path`. A pure
/// function of the identity pair, so fault decisions survive thread-count
/// changes and replays.
std::uint64_t fault_key(const std::string& path, const char* op,
                        std::uint64_t ordinal) {
  return common::stable_string_hash(path + op + std::to_string(ordinal));
}

}  // namespace

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status append(const io::Bytes& data) override {
    return env_->append_entry(path_, data);
  }
  Status sync() override { return env_->sync_entry(path_); }
  Status close() override { return ok_status(); }

 private:
  FaultEnv* env_;
  std::string path_;
};

common::Expected<std::unique_ptr<WritableFile>> FaultEnv::open_writable(
    const std::string& path, bool truncate) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  FileState& file = files_[path];
  if (truncate) file.bytes.clear();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path));
}

Status FaultEnv::append_entry(const std::string& path, const io::Bytes& data) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  if (data.empty()) return ok_status();
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return common::make_error("storage.io", "append to unopened file " + path);
  }
  FileState& file = it->second;
  const std::uint64_t ordinal = file.append_ordinal++;

  std::size_t apply = data.size();
  bool crash = false;
  std::string reason;
  if (injector_ != nullptr) {
    const std::uint64_t key = fault_key(path, "#append#", ordinal);
    if (injector_->should_fire(common::faults::kFsWriteTorn, key)) {
      apply = static_cast<std::size_t>(fault_key(path, "#torn#", ordinal) %
                                       data.size());
      crash = true;
      reason = "fault-injected torn write (fs.write_torn)";
    } else if (injector_->should_fire(common::faults::kFsCrashAt, key)) {
      apply = static_cast<std::size_t>(fault_key(path, "#crash#", ordinal) %
                                       data.size());
      crash = true;
      reason = "fault-injected crash mid-write (fs.crash_at)";
    }
  }
  if (crash_at_ != kNoCrash && appended_total_ + apply > crash_at_) {
    apply = crash_at_ > appended_total_
                ? static_cast<std::size_t>(crash_at_ - appended_total_)
                : 0;
    crash = true;
    reason = "crash_at byte limit reached";
  }

  file.bytes.insert(file.bytes.end(), data.begin(),
                    data.begin() + static_cast<std::ptrdiff_t>(apply));
  appended_total_ += apply;
  if (crash) {
    crashed_ = true;
    return common::make_error("storage.crashed", reason);
  }
  return ok_status();
}

Status FaultEnv::sync_entry(const std::string& path) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  const auto it = files_.find(path);
  const std::uint64_t ordinal =
      it == files_.end() ? 0 : it->second.append_ordinal;
  if (injector_ != nullptr &&
      injector_->should_fire(common::faults::kFsFsyncFail,
                             fault_key(path, "#sync#", ordinal))) {
    return common::make_error("storage.fsync",
                              "fault-injected fsync failure (fs.fsync_fail)");
  }
  return ok_status();
}

common::Expected<io::Bytes> FaultEnv::read_file(const std::string& path) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return common::make_error("storage.not_found", "no such file: " + path);
  }
  io::Bytes bytes = it->second.bytes;
  if (injector_ != nullptr && !bytes.empty() &&
      injector_->should_fire(common::faults::kFsReadCorrupt,
                             fault_key(path, "#read#", 0))) {
    const std::uint64_t where = fault_key(path, "#rot#", 0);
    bytes[static_cast<std::size_t>(where % bytes.size())] ^=
        static_cast<std::uint8_t>(1u << (where % 8));
  }
  return bytes;
}

bool FaultEnv::file_exists(const std::string& path) {
  common::MutexLock lock(mutex_);
  return files_.count(path) != 0;
}

Status FaultEnv::rename_file(const std::string& from, const std::string& to) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  const auto it = files_.find(from);
  if (it == files_.end()) {
    return common::make_error("storage.not_found", "no such file: " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return ok_status();
}

Status FaultEnv::remove_file(const std::string& path) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  files_.erase(path);  // idempotent, like PosixEnv
  return ok_status();
}

common::Expected<std::vector<std::string>> FaultEnv::list_dir(
    const std::string& dir) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, file] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // files_ is sorted by path, so names are sorted
}

Status FaultEnv::make_dirs(const std::string& /*dir*/) {
  common::MutexLock lock(mutex_);
  if (crashed_) return crashed_error();
  return ok_status();  // directories are name prefixes in this Env
}

void FaultEnv::set_crash_at_bytes(std::uint64_t offset) {
  common::MutexLock lock(mutex_);
  crash_at_ = offset;
}

void FaultEnv::set_injector(common::FaultInjector* injector) {
  common::MutexLock lock(mutex_);
  injector_ = injector;
}

bool FaultEnv::crashed() const {
  common::MutexLock lock(mutex_);
  return crashed_;
}

std::uint64_t FaultEnv::bytes_appended() const {
  common::MutexLock lock(mutex_);
  return appended_total_;
}

std::unique_ptr<FaultEnv> FaultEnv::fork_survivor() const {
  common::MutexLock lock(mutex_);
  auto survivor = std::make_unique<FaultEnv>();
  for (const auto& [path, file] : files_) {
    FileState copy;
    copy.bytes = file.bytes;
    survivor->files_[path] = std::move(copy);
  }
  return survivor;
}

}  // namespace crowdmap::storage

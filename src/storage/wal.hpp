// CMWL write-ahead-log segments: the append-only record framing under the
// log-structured store. A segment is
//
//   [u32 magic "CMWL"][u32 version][u64 seqno]          -- header, 16 bytes
//   ([u32 payload_len][u32 crc32c(payload)][payload])*  -- frames
//
// all little-endian, consistent with the CMC1/CMFD codec family
// (docs/DURABILITY.md has the full layout). Scanning never throws: the
// first damaged frame (torn header, torn payload, absurd length, CRC
// mismatch) truncates the scan, and the damaged tail bytes are surfaced as
// quarantined frames with reasons — recovery keeps the evidence, the way
// DocumentStore::quarantine keeps mangled uploads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "io/serialize.hpp"
#include "storage/env.hpp"

namespace crowdmap::storage {

inline constexpr std::uint32_t kWalMagic = 0x434D574Cu;  // "CMWL"
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderBytes = 16;
inline constexpr std::size_t kWalFrameOverhead = 8;  // len + crc
/// Frames larger than this are framing damage, not data (shares the io
/// decode bound so the cap stays one number).
inline constexpr std::uint32_t kWalMaxRecordBytes = io::kMaxDecodeCount;

/// Appends CRC-framed records to one segment file.
class SegmentWriter {
 public:
  SegmentWriter(Env& env, std::string path, std::uint64_t seqno, bool fsync);

  /// Creates/truncates the file and writes the segment header.
  Status create();
  /// Frames and appends one record (syncs when the writer was built with
  /// fsync). The record becomes recoverable only once fully appended.
  Status append(const io::Bytes& record);
  Status sync();
  Status close();

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t seqno() const noexcept { return seqno_; }

 private:
  Env& env_;
  std::string path_;
  std::uint64_t seqno_;
  bool fsync_;
  std::unique_ptr<WritableFile> file_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

/// One damaged (truncated/corrupt) frame kept as evidence.
struct DamagedFrame {
  std::uint64_t index = 0;  // frame position within the segment
  std::string reason;       // "torn_frame_header" | "torn_frame" |
                            // "bad_length" | "crc_mismatch"
  io::Bytes bytes;          // the raw damaged tail bytes
};

/// Result of scanning one segment's bytes.
struct SegmentScan {
  std::uint64_t seqno = 0;
  std::vector<io::Bytes> records;  // intact frames, in append order
  bool clean = true;               // false when the scan truncated a tail
  std::vector<DamagedFrame> damaged;
};

/// Parses segment bytes. Frame damage is reported in-band (clean=false +
/// `damaged`), never thrown; only an unreadable header (wrong magic or
/// version — the file is not a CMWL segment) is an error, code
/// "storage.segment_header".
[[nodiscard]] common::Expected<SegmentScan> scan_segment(
    const io::Bytes& bytes);

}  // namespace crowdmap::storage

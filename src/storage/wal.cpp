#include "storage/wal.hpp"

#include <utility>

#include "storage/crc32c.hpp"

namespace crowdmap::storage {

namespace {

std::uint32_t read_u32(const io::Bytes& bytes, std::size_t pos) {
  return static_cast<std::uint32_t>(bytes[pos]) |
         static_cast<std::uint32_t>(bytes[pos + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[pos + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[pos + 3]) << 24;
}

std::uint64_t read_u64(const io::Bytes& bytes, std::size_t pos) {
  return static_cast<std::uint64_t>(read_u32(bytes, pos)) |
         static_cast<std::uint64_t>(read_u32(bytes, pos + 4)) << 32;
}

}  // namespace

SegmentWriter::SegmentWriter(Env& env, std::string path, std::uint64_t seqno,
                             bool fsync)
    : env_(env), path_(std::move(path)), seqno_(seqno), fsync_(fsync) {}

Status SegmentWriter::create() {
  auto file = env_.open_writable(path_, /*truncate=*/true);
  if (!file) return file.error();
  file_ = std::move(file).take();
  io::Writer header;
  header.u32(kWalMagic);
  header.u32(kWalVersion);
  header.u64(seqno_);
  const io::Bytes bytes = std::move(header).take();
  if (Status s = file_->append(bytes); !s) return s;
  bytes_ += bytes.size();
  if (fsync_) return file_->sync();
  return ok_status();
}

Status SegmentWriter::append(const io::Bytes& record) {
  if (file_ == nullptr) {
    return common::make_error("storage.io", "segment writer not created");
  }
  io::Writer frame;
  frame.u32(static_cast<std::uint32_t>(record.size()));
  frame.u32(crc32c(record));
  frame.bytes_raw(record);
  const io::Bytes bytes = std::move(frame).take();
  if (Status s = file_->append(bytes); !s) return s;
  bytes_ += bytes.size();
  ++records_;
  if (fsync_) return file_->sync();
  return ok_status();
}

Status SegmentWriter::sync() {
  if (file_ == nullptr) return ok_status();
  return file_->sync();
}

Status SegmentWriter::close() {
  if (file_ == nullptr) return ok_status();
  Status s = file_->close();
  file_.reset();
  return s;
}

common::Expected<SegmentScan> scan_segment(const io::Bytes& bytes) {
  if (bytes.size() < kWalHeaderBytes || read_u32(bytes, 0) != kWalMagic ||
      read_u32(bytes, 4) != kWalVersion) {
    return common::make_error("storage.segment_header",
                              "not a CMWL v1 segment");
  }
  SegmentScan scan;
  scan.seqno = read_u64(bytes, 8);
  std::size_t pos = kWalHeaderBytes;
  std::uint64_t index = 0;
  const auto quarantine_tail = [&](const char* reason) {
    DamagedFrame frame;
    frame.index = index;
    frame.reason = reason;
    frame.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                       bytes.end());
    scan.damaged.push_back(std::move(frame));
    scan.clean = false;
  };
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kWalFrameOverhead) {
      quarantine_tail("torn_frame_header");
      break;
    }
    const std::uint32_t len = read_u32(bytes, pos);
    const std::uint32_t crc = read_u32(bytes, pos + 4);
    if (len > kWalMaxRecordBytes) {
      quarantine_tail("bad_length");
      break;
    }
    if (bytes.size() - pos - kWalFrameOverhead < len) {
      quarantine_tail("torn_frame");
      break;
    }
    const auto payload_begin =
        bytes.begin() + static_cast<std::ptrdiff_t>(pos + kWalFrameOverhead);
    io::Bytes payload(payload_begin, payload_begin + len);
    if (crc32c(payload) != crc) {
      // Frame boundaries after a corrupt frame cannot be trusted:
      // truncate here, keeping the whole suspect tail as evidence.
      quarantine_tail("crc_mismatch");
      break;
    }
    scan.records.push_back(std::move(payload));
    pos += kWalFrameOverhead + len;
    ++index;
  }
  return scan;
}

}  // namespace crowdmap::storage

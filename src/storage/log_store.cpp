#include "storage/log_store.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "storage/crc32c.hpp"

namespace crowdmap::storage {

namespace {

constexpr std::uint32_t kManifestMagic = 0x434D4D46u;  // "CMMF"
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kSnapshotMagic = 0x434D5753u;  // "CMWS"
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

std::uint32_t read_u32(const io::Bytes& bytes, std::size_t pos) {
  return static_cast<std::uint32_t>(bytes[pos]) |
         static_cast<std::uint32_t>(bytes[pos + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[pos + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[pos + 3]) << 24;
}

std::uint64_t read_u64(const io::Bytes& bytes, std::size_t pos) {
  return static_cast<std::uint64_t>(read_u32(bytes, pos)) |
         static_cast<std::uint64_t>(read_u32(bytes, pos + 4)) << 32;
}

std::string padded(std::uint64_t seqno) {
  std::string digits = std::to_string(seqno);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return digits;
}

struct ParsedManifest {
  std::uint64_t next_seqno = 1;
  std::string snapshot;
  std::vector<std::pair<std::string, std::uint64_t>> segments;
};

}  // namespace

LogStructuredStore::LogStructuredStore(
    Env& env, LogStoreOptions options,
    std::shared_ptr<obs::MetricsRegistry> registry, obs::FlightRecorder* flight)
    : env_(env),
      options_(std::move(options)),
      registry_(std::move(registry)),
      flight_(flight) {
  if (registry_ != nullptr) {
    appends_metric_ = &registry_->counter(
        "crowdmap_wal_appends_total", {},
        "Records appended to the write-ahead log");
    append_failures_metric_ = &registry_->counter(
        "crowdmap_wal_append_failures_total", {},
        "WAL appends rejected by the storage Env; the store turns unhealthy "
        "on the first failure");
    bytes_metric_ = &registry_->counter(
        "crowdmap_wal_bytes_written_total", {},
        "Framed bytes appended to WAL segments");
    segments_metric_ = &registry_->counter(
        "crowdmap_wal_segments_created_total", {},
        "WAL segment files created (rotations, checkpoints, opens)");
    checkpoints_metric_ = &registry_->counter(
        "crowdmap_wal_checkpoints_total", {},
        "Snapshot+compaction checkpoints installed");
    replayed_metric_ = &registry_->counter(
        "crowdmap_recovery_records_replayed_total", {},
        "Intact WAL records replayed during recovery");
    truncated_metric_ = &registry_->counter(
        "crowdmap_recovery_truncated_records_total", {},
        "Damaged WAL tail records truncated and quarantined during recovery");
    recovery_seconds_metric_ = &registry_->histogram(
        "crowdmap_recovery_seconds", {}, {0.001, 0.01, 0.1, 1.0, 10.0},
        "Wall time of log-structured store recovery (manifest + snapshot + "
        "log replay)");
  }
}

std::string LogStructuredStore::full_path(const std::string& name) const {
  return options_.dir + "/" + name;
}

std::string LogStructuredStore::segment_name(std::uint64_t seqno) {
  return "wal-" + padded(seqno) + ".log";
}

std::string LogStructuredStore::snapshot_name(std::uint64_t seqno) {
  return "state-" + padded(seqno) + ".snap";
}

common::Expected<RecoveryReport> LogStructuredStore::open(
    const SnapshotRestore& restore, const RecordApply& apply) {
  const auto started = std::chrono::steady_clock::now();
  common::MutexLock lock(mutex_);
  if (opened_) {
    return common::make_error("storage.reopened", "store is already open");
  }
  if (Status s = env_.make_dirs(options_.dir); !s) return s.error();

  RecoveryReport report;
  const std::string manifest_path = full_path(kManifestName);
  if (env_.file_exists(manifest_path)) {
    auto manifest_or = env_.read_file(manifest_path);
    if (!manifest_or) return manifest_or.error();
    const io::Bytes& raw = manifest_or.value();
    if (raw.size() < 4 ||
        crc32c(raw.data(), raw.size() - 4) != read_u32(raw, raw.size() - 4)) {
      return common::make_error("storage.manifest_corrupt",
                                "manifest CRC mismatch");
    }
    const io::Bytes body(raw.begin(), raw.end() - 4);
    auto parsed = io::expected_decode([&] {
      io::Reader r(body);
      if (r.u32() != kManifestMagic) throw io::DecodeError("manifest magic");
      if (r.u32() != kManifestVersion) {
        throw io::DecodeError("manifest version");
      }
      ParsedManifest m;
      m.next_seqno = r.u64();
      if (r.u8() != 0) m.snapshot = r.str();
      const std::uint32_t count = r.u32();
      io::check_count(count, "manifest segments");
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string file = r.str();
        const std::uint64_t seqno = r.u64();
        m.segments.emplace_back(std::move(file), seqno);
      }
      if (!r.exhausted()) throw io::DecodeError("manifest trailing bytes");
      return m;
    });
    if (!parsed) {
      return common::make_error("storage.manifest_corrupt",
                                parsed.error().message);
    }
    const ParsedManifest& manifest = parsed.value();

    if (!manifest.snapshot.empty()) {
      auto snap_or = env_.read_file(full_path(manifest.snapshot));
      if (!snap_or) {
        return common::make_error(
            "storage.snapshot_corrupt",
            "snapshot unreadable: " + snap_or.error().message);
      }
      const io::Bytes& snap = snap_or.value();
      constexpr std::size_t kSnapHeader = 20;  // magic+version+len+crc
      if (snap.size() < kSnapHeader || read_u32(snap, 0) != kSnapshotMagic ||
          read_u32(snap, 4) != kSnapshotVersion ||
          read_u64(snap, 8) != snap.size() - kSnapHeader) {
        return common::make_error("storage.snapshot_corrupt",
                                  "snapshot framing damaged");
      }
      io::Bytes payload(snap.begin() + kSnapHeader, snap.end());
      if (crc32c(payload) != read_u32(snap, 16)) {
        return common::make_error("storage.snapshot_corrupt",
                                  "snapshot CRC mismatch");
      }
      if (Status s = restore(payload); !s) return s.error();
      report.snapshot_loaded = true;
    }

    for (const auto& [file, seqno] : manifest.segments) {
      const std::string path = full_path(file);
      if (!env_.file_exists(path)) {
        // Manifest-first segment registration: a listed-but-missing file is
        // the never-created tail; nothing after it can hold data.
        break;
      }
      auto seg_or = env_.read_file(path);
      if (!seg_or) return seg_or.error();
      ++report.segments_scanned;
      auto scan_or = scan_segment(seg_or.value());
      if (!scan_or) {
        // Unreadable header: the whole segment is damage evidence.
        report.quarantined.push_back(
            QuarantinedRecord{file, 0, "bad_header", seg_or.value()});
        if (flight_ != nullptr) {
          flight_->record(obs::FlightEventKind::kRecoveryTruncate, 0, seqno,
                          seg_or.value().size());
        }
        break;
      }
      const SegmentScan& scan = scan_or.value();
      for (const io::Bytes& record : scan.records) {
        apply(record);
        ++report.records_replayed;
      }
      for (const DamagedFrame& frame : scan.damaged) {
        report.quarantined.push_back(
            QuarantinedRecord{file, frame.index, frame.reason, frame.bytes});
        if (flight_ != nullptr) {
          flight_->record(obs::FlightEventKind::kRecoveryTruncate, 0, seqno,
                          frame.bytes.size());
        }
      }
      // The first damaged frame truncates recovery: frame boundaries after
      // it cannot be trusted. The owner checkpoints immediately after a
      // dirty recovery (durable_store), which retires the damaged segment.
      if (!scan.clean) break;
    }

    next_seqno_ = manifest.next_seqno;
    snapshot_file_ = manifest.snapshot;
    for (const auto& [file, seqno] : manifest.segments) {
      segments_.push_back(SegmentRef{file, seqno});
    }
  }

  opened_ = true;
  healthy_ = true;
  if (Status s = start_segment_locked(); !s) {
    healthy_ = false;
    return s.error();
  }

  // Best-effort orphan sweep: files from interrupted checkpoints (stray
  // snapshots/tmp files) that the installed manifest does not reference.
  if (auto names = env_.list_dir(options_.dir)) {
    std::set<std::string> live{kManifestName};
    if (!snapshot_file_.empty()) live.insert(snapshot_file_);
    for (const SegmentRef& ref : segments_) live.insert(ref.file);
    for (const std::string& name : names.value()) {
      if (live.count(name) == 0) env_.remove_file(full_path(name));
    }
  }

  if (replayed_metric_ != nullptr) {
    replayed_metric_->increment(report.records_replayed);
  }
  if (truncated_metric_ != nullptr) {
    truncated_metric_->increment(report.truncated_records());
  }
  if (recovery_seconds_metric_ != nullptr) {
    recovery_seconds_metric_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  }
  return report;
}

Status LogStructuredStore::append(const io::Bytes& record) {
  common::MutexLock lock(mutex_);
  if (!opened_ || !healthy_) {
    return common::make_error("storage.unhealthy",
                              "store is closed or failed; append rejected");
  }
  if (Status s = active_->append(record); !s) {
    healthy_ = false;
    ++stats_.append_failures;
    if (append_failures_metric_ != nullptr) {
      append_failures_metric_->increment();
    }
    return s;
  }
  ++stats_.appends;
  ++stats_.appends_since_checkpoint;
  stats_.bytes_appended += record.size() + kWalFrameOverhead;
  if (appends_metric_ != nullptr) appends_metric_->increment();
  if (bytes_metric_ != nullptr) {
    bytes_metric_->increment(record.size() + kWalFrameOverhead);
  }
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::kWalAppend, 0, active_->seqno(),
                    record.size());
  }
  if (active_->bytes() >= options_.segment_bytes) {
    active_->close();
    if (Status s = start_segment_locked(); !s) {
      healthy_ = false;
      ++stats_.append_failures;
      if (append_failures_metric_ != nullptr) {
        append_failures_metric_->increment();
      }
      return s;
    }
  }
  return ok_status();
}

Status LogStructuredStore::checkpoint(const io::Bytes& state) {
  common::MutexLock lock(mutex_);
  if (!opened_ || !healthy_) {
    return common::make_error("storage.unhealthy",
                              "store is closed or failed; checkpoint rejected");
  }
  const std::uint64_t snap_seqno = next_seqno_++;
  const std::string snap_name = snapshot_name(snap_seqno);
  io::Writer blob;
  blob.u32(kSnapshotMagic);
  blob.u32(kSnapshotVersion);
  blob.u64(state.size());
  blob.u32(crc32c(state));
  blob.bytes_raw(state);
  if (Status s = install_file_locked(snap_name, std::move(blob).take()); !s) {
    healthy_ = false;
    return s;
  }

  std::vector<SegmentRef> retired;
  retired.swap(segments_);
  const std::string old_snapshot = snapshot_file_;
  snapshot_file_ = snap_name;
  if (active_ != nullptr) {
    active_->close();
    active_.reset();
  }
  // start_segment_locked installs the manifest that points at the new
  // snapshot + fresh segment; until that rename lands, the old generation
  // (old manifest, old snapshot, retired segments) is untouched on disk.
  if (Status s = start_segment_locked(); !s) {
    healthy_ = false;
    return s;
  }
  for (const SegmentRef& ref : retired) {
    env_.remove_file(full_path(ref.file));  // best-effort retirement
  }
  if (!old_snapshot.empty() && old_snapshot != snap_name) {
    env_.remove_file(full_path(old_snapshot));
  }
  ++stats_.checkpoints;
  stats_.appends_since_checkpoint = 0;
  if (checkpoints_metric_ != nullptr) checkpoints_metric_->increment();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::kWalCheckpoint, 0, snap_seqno,
                    retired.size());
  }
  return ok_status();
}

bool LogStructuredStore::checkpoint_due() const {
  common::MutexLock lock(mutex_);
  return opened_ && healthy_ && options_.snapshot_every > 0 &&
         stats_.appends_since_checkpoint >= options_.snapshot_every;
}

LogStructuredStore::Stats LogStructuredStore::stats() const {
  common::MutexLock lock(mutex_);
  Stats out = stats_;
  out.opened = opened_;
  out.healthy = healthy_;
  out.live_segments = segments_.size();
  return out;
}

bool LogStructuredStore::healthy() const {
  common::MutexLock lock(mutex_);
  return opened_ && healthy_;
}

Status LogStructuredStore::write_manifest_locked() {
  io::Writer body;
  body.u32(kManifestMagic);
  body.u32(kManifestVersion);
  body.u64(next_seqno_);
  body.u8(snapshot_file_.empty() ? 0 : 1);
  if (!snapshot_file_.empty()) body.str(snapshot_file_);
  body.u32(static_cast<std::uint32_t>(segments_.size()));
  for (const SegmentRef& ref : segments_) {
    body.str(ref.file);
    body.u64(ref.seqno);
  }
  const io::Bytes bytes = std::move(body).take();
  io::Writer full;
  full.bytes_raw(bytes);
  full.u32(crc32c(bytes));
  return install_file_locked(kManifestName, std::move(full).take());
}

Status LogStructuredStore::start_segment_locked() {
  const std::uint64_t seqno = next_seqno_++;
  segments_.push_back(SegmentRef{segment_name(seqno), seqno});
  if (Status s = write_manifest_locked(); !s) return s;
  active_ = std::make_unique<SegmentWriter>(
      env_, full_path(segment_name(seqno)), seqno, options_.fsync);
  if (Status s = active_->create(); !s) return s;
  ++stats_.segments_created;
  if (segments_metric_ != nullptr) segments_metric_->increment();
  return ok_status();
}

Status LogStructuredStore::install_file_locked(const std::string& name,
                                               const io::Bytes& bytes) {
  const std::string tmp = full_path(name + ".tmp");
  auto file_or = env_.open_writable(tmp, /*truncate=*/true);
  if (!file_or) return file_or.error();
  WritableFile& file = *file_or.value();
  if (Status s = file.append(bytes); !s) return s;
  if (options_.fsync) {
    if (Status s = file.sync(); !s) return s;
  }
  if (Status s = file.close(); !s) return s;
  return env_.rename_file(tmp, full_path(name));
}

}  // namespace crowdmap::storage

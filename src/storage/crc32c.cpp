#include "storage/crc32c.hpp"

#include <array>

namespace crowdmap::storage {

namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial
/// 0x82F63B78, built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace crowdmap::storage

// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the frame checksum of the
// CMWL write-ahead log. Software table implementation: the WAL appends are
// dominated by fsync cost, not checksumming, so a hardware SSE4.2 path is
// deliberately out of scope (and would need a runtime dispatch story the
// SIMD wrapper does not yet cover for scalar integer CRC).
#pragma once

#include <cstddef>
#include <cstdint>

#include "io/serialize.hpp"

namespace crowdmap::storage {

/// CRC32C of `size` bytes starting at `data`. `seed` chains incremental
/// computations: crc32c(b, crc32c(a)) == crc32c(a + b).
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t size,
                                   std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32c(const io::Bytes& bytes,
                                          std::uint32_t seed = 0) noexcept {
  return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace crowdmap::storage

// Versioned binary codec for reconstructed floor plans ("CMP1"): hallway
// raster (bit-packed), placed rooms, layout scores. This byte stream is the
// repo's determinism yardstick — test_determinism compares it across thread
// counts, nodes and cache states. Lives with the floorplan types (not in
// io/) so serialization never pulls domain modules into the io layer — see
// docs/STATIC_ANALYSIS.md for the layering contract.
#pragma once

#include "floorplan/floorplan.hpp"
#include "io/serialize.hpp"

namespace crowdmap::floorplan {

/// Floor plan <-> bytes.
[[nodiscard]] io::Bytes encode_floorplan(const FloorPlan& plan);
[[nodiscard]] FloorPlan decode_floorplan(const io::Bytes& data);

/// Non-throwing variant for callers that degrade on malformed input: a
/// DecodeError becomes an Error with code "io.decode".
[[nodiscard]] common::Expected<FloorPlan> try_decode_floorplan(
    const io::Bytes& data);

}  // namespace crowdmap::floorplan

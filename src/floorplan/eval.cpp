#include "floorplan/eval.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"

namespace crowdmap::floorplan {

std::optional<Pose2> kabsch_align(std::span<const Vec2> from,
                                  std::span<const Vec2> to) {
  if (from.size() != to.size() || from.size() < 2) return std::nullopt;
  Vec2 cf;
  Vec2 ct;
  for (std::size_t i = 0; i < from.size(); ++i) {
    cf += from[i];
    ct += to[i];
  }
  cf = cf / static_cast<double>(from.size());
  ct = ct / static_cast<double>(to.size());
  double sxx = 0.0;  // sum of dot products
  double sxy = 0.0;  // sum of cross products
  for (std::size_t i = 0; i < from.size(); ++i) {
    const Vec2 p = from[i] - cf;
    const Vec2 q = to[i] - ct;
    sxx += p.dot(q);
    sxy += p.cross(q);
  }
  const double theta = std::atan2(sxy, sxx);
  const Vec2 t = ct - cf.rotated(theta);
  return Pose2{t, theta};
}

std::optional<Pose2> align_to_truth(
    std::span<const trajectory::Trajectory> trajectories,
    const trajectory::AggregationResult& aggregation) {
  std::vector<Vec2> from;
  std::vector<Vec2> to;
  for (std::size_t i = 0;
       i < trajectories.size() && i < aggregation.global_pose.size(); ++i) {
    if (!aggregation.global_pose[i]) continue;
    for (const auto& kf : trajectories[i].keyframes) {
      from.push_back(aggregation.global_pose[i]->apply(kf.position));
      to.push_back(kf.true_position);
    }
  }
  auto estimate = kabsch_align(from, to);
  // Robustify: a single mis-merged trajectory must not skew the overlay.
  // Trim pairs whose residual exceeds 3x the median and re-fit.
  for (int round = 0; round < 2 && estimate && from.size() >= 4; ++round) {
    std::vector<double> residuals;
    residuals.reserve(from.size());
    for (std::size_t k = 0; k < from.size(); ++k) {
      residuals.push_back(estimate->apply(from[k]).distance_to(to[k]));
    }
    std::vector<double> sorted = residuals;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double cut = std::max(3.0 * sorted[sorted.size() / 2], 1.0);
    std::vector<Vec2> kept_from;
    std::vector<Vec2> kept_to;
    for (std::size_t k = 0; k < from.size(); ++k) {
      if (residuals[k] <= cut) {
        kept_from.push_back(from[k]);
        kept_to.push_back(to[k]);
      }
    }
    if (kept_from.size() == from.size() || kept_from.size() < 2) break;
    from = std::move(kept_from);
    to = std::move(kept_to);
    estimate = kabsch_align(from, to);
  }
  return estimate;
}

double aspect_ratio_error(double est_w, double est_d, double true_w,
                          double true_d) {
  if (est_d <= 0 || true_d <= 0 || est_w <= 0 || true_w <= 0) return 1.0;
  const double truth = true_w / true_d;
  const double direct = common::relative_error(est_w / est_d, truth);
  const double swapped = common::relative_error(est_d / est_w, truth);
  return std::min(direct, swapped);
}

std::vector<RoomError> evaluate_rooms(const FloorPlan& plan,
                                      const sim::FloorPlanSpec& spec,
                                      const Pose2& global_to_truth) {
  std::vector<RoomError> errors;
  for (const auto& room : plan.rooms) {
    if (room.true_room_id < 0) continue;
    const sim::RoomSpec* truth = nullptr;
    for (const auto& r : spec.rooms) {
      if (r.id == room.true_room_id) {
        truth = &r;
        break;
      }
    }
    if (truth == nullptr) continue;
    RoomError e;
    e.room_id = room.true_room_id;
    e.area_error =
        common::relative_error(room.width * room.depth, truth->area());
    e.aspect_error =
        aspect_ratio_error(room.width, room.depth, truth->width, truth->depth);
    e.location_error_m =
        global_to_truth.apply(room.center).distance_to(truth->center);
    errors.push_back(e);
  }
  return errors;
}

}  // namespace crowdmap::floorplan

// Force-directed room arrangement (§III.D, after Eades' spring heuristic):
// rooms are attracted to their evidence anchors and repelled by overlaps
// with neighboring rooms and with the hallway skeleton, iterated until each
// room experiences (near) zero net force.
#pragma once

#include <vector>

#include "floorplan/floorplan.hpp"

namespace crowdmap::floorplan {

struct ArrangeConfig {
  double spring_k = 1.0;        // attraction to the anchor per meter
  double room_repulsion = 2.5;  // per square meter of pairwise overlap
  double hall_repulsion = 2.0;  // per square meter of hallway intrusion
  double step = 0.15;           // integration step (meters per unit force)
  double converge_force = 0.02; // stop when max net force falls below this
  int max_iterations = 400;
};

/// Statistics of one arrangement run.
struct ArrangeStats {
  int iterations = 0;
  double final_max_force = 0.0;
  double total_room_overlap = 0.0;  // residual pairwise overlap area
};

/// Adjusts `rooms` centers in place; the hallway raster is the fixed
/// obstacle. Returns convergence statistics.
ArrangeStats arrange_rooms(std::vector<PlacedRoom>& rooms,
                           const BoolRaster& hallway,
                           const ArrangeConfig& config = {});

/// Pairwise overlap area of two placed rooms (convex clip).
[[nodiscard]] double room_overlap_area(const PlacedRoom& a, const PlacedRoom& b);

}  // namespace crowdmap::floorplan

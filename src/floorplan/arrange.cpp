#include "floorplan/arrange.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::floorplan {

double room_overlap_area(const PlacedRoom& a, const PlacedRoom& b) {
  const auto fa = a.footprint();
  const auto fb = b.footprint();
  if (!fa.bounding_box().intersects(fb.bounding_box())) return 0.0;
  return geometry::clip_convex(fa, fb).area();
}

namespace {

/// Hallway intrusion: area of the room footprint covered by hallway cells
/// and the centroid of that intrusion (sampled on the raster).
struct Intrusion {
  double area = 0.0;
  Vec2 centroid;
};

[[nodiscard]] Intrusion hallway_intrusion(const PlacedRoom& room,
                                          const BoolRaster& hallway) {
  Intrusion out;
  const auto poly = room.footprint();
  const auto box = poly.bounding_box();
  auto [c0, r0] = hallway.cell_of(box.min);
  auto [c1, r1] = hallway.cell_of(box.max);
  c0 = std::max(c0, 0);
  r0 = std::max(r0, 0);
  c1 = std::min(c1, hallway.width() - 1);
  r1 = std::min(r1, hallway.height() - 1);
  Vec2 sum;
  int n = 0;
  const double cell_area = hallway.cell_size() * hallway.cell_size();
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      if (!hallway.at(c, r)) continue;
      const Vec2 p = hallway.cell_center(c, r);
      if (!poly.contains(p)) continue;
      sum += p;
      ++n;
    }
  }
  if (n > 0) {
    out.area = n * cell_area;
    out.centroid = sum / static_cast<double>(n);
  }
  return out;
}

}  // namespace

ArrangeStats arrange_rooms(std::vector<PlacedRoom>& rooms,
                           const BoolRaster& hallway,
                           const ArrangeConfig& config) {
  ArrangeStats stats;
  if (rooms.empty()) return stats;
  std::vector<Vec2> forces(rooms.size());

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    stats.iterations = iter + 1;
    double max_force = 0.0;
    for (std::size_t i = 0; i < rooms.size(); ++i) {
      // Spring attraction toward the anchor.
      Vec2 f = (rooms[i].anchor - rooms[i].center) * config.spring_k;
      // Pairwise overlap repulsion.
      for (std::size_t j = 0; j < rooms.size(); ++j) {
        if (j == i) continue;
        const double overlap = room_overlap_area(rooms[i], rooms[j]);
        if (overlap <= 0) continue;
        Vec2 away = rooms[i].center - rooms[j].center;
        if (away.norm() < 1e-6) {
          // Coincident centers: break the tie deterministically but in
          // opposite directions for the two rooms.
          away = i < j ? Vec2{1.0, 0.0} : Vec2{-1.0, 0.0};
        }
        f += away.normalized() * (overlap * config.room_repulsion);
      }
      // Hallway intrusion repulsion.
      const auto intr = hallway_intrusion(rooms[i], hallway);
      if (intr.area > 0) {
        Vec2 away = rooms[i].center - intr.centroid;
        if (away.norm() < 1e-6) away = {0.0, 1.0};
        f += away.normalized() * (intr.area * config.hall_repulsion);
      }
      forces[i] = f;
      max_force = std::max(max_force, f.norm());
    }
    // Damped update.
    const double damping = 1.0 / (1.0 + iter * 0.01);
    for (std::size_t i = 0; i < rooms.size(); ++i) {
      Vec2 step = forces[i] * config.step * damping;
      const double cap = 0.5;  // meters per iteration
      if (step.norm() > cap) step = step.normalized() * cap;
      rooms[i].center += step;
    }
    stats.final_max_force = max_force;
    if (max_force < config.converge_force) break;
  }
  stats.total_room_overlap = 0.0;
  for (std::size_t i = 0; i < rooms.size(); ++i) {
    for (std::size_t j = i + 1; j < rooms.size(); ++j) {
      stats.total_room_overlap += room_overlap_area(rooms[i], rooms[j]);
    }
  }
  return stats;
}

}  // namespace crowdmap::floorplan

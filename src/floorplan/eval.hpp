// Floor plan evaluation (paper §V.B–C): room area / aspect-ratio errors
// against ground truth and room location error after rigidly aligning the
// reconstruction's arbitrary global frame onto the ground-truth frame.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "geometry/pose2.hpp"
#include "sim/spec.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::floorplan {

using geometry::Pose2;

/// Rigid 2D least-squares alignment (Kabsch) of point pairs: returns the
/// pose T minimizing sum |T(p_i) - q_i|^2. nullopt for < 2 pairs.
[[nodiscard]] std::optional<Pose2> kabsch_align(std::span<const Vec2> from,
                                                std::span<const Vec2> to);

/// Alignment of the aggregation's global frame onto ground truth, estimated
/// from key-frame (dead-reckoned global, true) position pairs. This mirrors
/// the paper's overlay of reconstructions onto the surveyed plan.
[[nodiscard]] std::optional<Pose2> align_to_truth(
    std::span<const trajectory::Trajectory> trajectories,
    const trajectory::AggregationResult& aggregation);

/// Per-room evaluation record.
struct RoomError {
  int room_id = -1;
  double area_error = 0.0;        // |est - true| / true
  double aspect_error = 0.0;      // |est - true| / true, orientation-resolved
  double location_error_m = 0.0;  // after global alignment
};

/// Compares placed rooms against the spec. Rooms with true_room_id < 0 are
/// skipped (no ground-truth identity). `global_to_truth` maps plan
/// coordinates into the spec frame for the location metric.
[[nodiscard]] std::vector<RoomError> evaluate_rooms(
    const FloorPlan& plan, const sim::FloorPlanSpec& spec,
    const Pose2& global_to_truth);

/// Aspect-ratio error with the width/depth labelling ambiguity resolved:
/// the estimate may have swapped axes, so the better of (w/d, d/w) is used.
[[nodiscard]] double aspect_ratio_error(double est_w, double est_d,
                                        double true_w, double true_d);

}  // namespace crowdmap::floorplan

#include "floorplan/serialize.hpp"

namespace crowdmap::floorplan {

namespace {

constexpr std::uint32_t kPlanMagic = 0x434D5031;  // "CMP1"
constexpr std::uint32_t kVersion = 1;

}  // namespace

io::Bytes encode_floorplan(const FloorPlan& plan) {
  io::Writer w;
  w.u32(kPlanMagic);
  w.u32(kVersion);
  w.f64(plan.hallway.extent().min.x);
  w.f64(plan.hallway.extent().min.y);
  w.f64(plan.hallway.extent().max.x);
  w.f64(plan.hallway.extent().max.y);
  w.f64(plan.hallway.cell_size());
  // Raster cells as a bit-packed row-major stream.
  const auto& cells = plan.hallway.data();
  w.u32(static_cast<std::uint32_t>(cells.size()));
  std::uint8_t acc = 0;
  int bit = 0;
  for (const auto c : cells) {
    acc |= static_cast<std::uint8_t>((c ? 1 : 0) << bit);
    if (++bit == 8) {
      w.u8(acc);
      acc = 0;
      bit = 0;
    }
  }
  if (bit != 0) w.u8(acc);

  w.u32(static_cast<std::uint32_t>(plan.rooms.size()));
  for (const auto& room : plan.rooms) {
    w.f64(room.center.x);
    w.f64(room.center.y);
    w.f64(room.width);
    w.f64(room.depth);
    w.f64(room.orientation);
    w.f64(room.anchor.x);
    w.f64(room.anchor.y);
    w.i32(room.true_room_id);
    w.f64(room.layout_score);
  }
  return std::move(w).take();
}

FloorPlan decode_floorplan(const io::Bytes& data) {
  io::Reader r(data);
  if (r.u32() != kPlanMagic) throw io::DecodeError("not a floor plan");
  if (r.u32() != kVersion) {
    throw io::DecodeError("unsupported floor plan version");
  }
  FloorPlan plan;
  geometry::Aabb extent;
  extent.min.x = r.f64();
  extent.min.y = r.f64();
  extent.max.x = r.f64();
  extent.max.y = r.f64();
  const double cell_size = r.f64();
  if (!(cell_size > 0) || !(extent.max.x > extent.min.x) ||
      !(extent.max.y > extent.min.y)) {
    throw io::DecodeError("invalid floor plan geometry");
  }
  plan.hallway = geometry::BoolRaster(extent, cell_size);
  const std::uint32_t n_cells = r.u32();
  io::check_count(n_cells, "raster cells");
  if (n_cells != plan.hallway.data().size()) {
    throw io::DecodeError("raster size does not match extent");
  }
  std::uint8_t acc = 0;
  int bit = 8;
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    if (bit == 8) {
      acc = r.u8();
      bit = 0;
    }
    plan.hallway.data()[i] = (acc >> bit) & 1;
    ++bit;
  }

  const std::uint32_t n_rooms = r.u32();
  io::check_count(n_rooms, "rooms");
  plan.rooms.reserve(n_rooms);
  for (std::uint32_t i = 0; i < n_rooms; ++i) {
    PlacedRoom room;
    room.center.x = r.f64();
    room.center.y = r.f64();
    room.width = r.f64();
    room.depth = r.f64();
    room.orientation = r.f64();
    room.anchor.x = r.f64();
    room.anchor.y = r.f64();
    room.true_room_id = r.i32();
    room.layout_score = r.f64();
    plan.rooms.push_back(room);
  }
  return plan;
}

common::Expected<FloorPlan> try_decode_floorplan(const io::Bytes& data) {
  return io::expected_decode([&] { return decode_floorplan(data); });
}

}  // namespace crowdmap::floorplan

#include "floorplan/floorplan.hpp"

#include <algorithm>
#include <sstream>

namespace crowdmap::floorplan {

std::string FloorPlan::to_ascii(int max_width) const {
  std::ostringstream out;
  const int w = hallway.width();
  const int h = hallway.height();
  if (w == 0 || h == 0) return out.str();
  const int stride = std::max(1, (w + max_width - 1) / max_width);

  auto room_mark = [this](Vec2 p) -> char {
    for (const auto& room : rooms) {
      const auto poly = room.footprint();
      if (!poly.contains(p)) continue;
      // Border when close to any edge.
      for (const auto& edge : poly.edges()) {
        if (geometry::distance_point_segment(p, edge) < 0.4) return '+';
      }
      return 'R';
    }
    return '\0';
  };

  for (int r = h - 1; r >= 0; r -= stride) {  // +y up
    for (int c = 0; c < w; c += stride) {
      const Vec2 p = hallway.cell_center(c, r);
      const char mark = room_mark(p);
      if (mark != '\0') {
        out << mark;
      } else if (hallway.at(c, r)) {
        out << '#';
      } else {
        out << '.';
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string FloorPlan::to_svg(double px_per_meter) const {
  std::ostringstream out;
  const auto& ext = hallway.extent();
  const double width_px = ext.width() * px_per_meter;
  const double height_px = ext.height() * px_per_meter;
  auto sx = [&](double x) { return (x - ext.min.x) * px_per_meter; };
  auto sy = [&](double y) { return height_px - (y - ext.min.y) * px_per_meter; };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
      << "\" height=\"" << height_px << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  // Hallway cells.
  const double cell_px = hallway.cell_size() * px_per_meter;
  for (int r = 0; r < hallway.height(); ++r) {
    for (int c = 0; c < hallway.width(); ++c) {
      if (!hallway.at(c, r)) continue;
      const Vec2 p = hallway.cell_center(c, r);
      out << "<rect x=\"" << sx(p.x) - cell_px / 2 << "\" y=\""
          << sy(p.y) - cell_px / 2 << "\" width=\"" << cell_px
          << "\" height=\"" << cell_px << "\" fill=\"#b0c4de\"/>\n";
    }
  }
  // Rooms.
  for (const auto& room : rooms) {
    out << "<polygon points=\"";
    const auto poly = room.footprint();
    for (const Vec2 v : poly.vertices()) {
      out << sx(v.x) << ',' << sy(v.y) << ' ';
    }
    out << "\" fill=\"none\" stroke=\"#333\" stroke-width=\"2\"/>\n";
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace crowdmap::floorplan

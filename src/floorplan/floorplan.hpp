// The final floor plan model (§III.D): hallway skeleton + placed rooms, with
// ASCII and SVG renderers for Fig. 6-style output.
#pragma once

#include <string>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::floorplan {

using geometry::BoolRaster;
using geometry::Polygon;
using geometry::Vec2;

/// A room placed on the floor plan.
struct PlacedRoom {
  Vec2 center;               // global frame
  double width = 0.0;
  double depth = 0.0;
  double orientation = 0.0;
  Vec2 anchor;               // where the evidence says the room should sit
  int true_room_id = -1;     // evaluation only
  double layout_score = 0.0; // surface-consistency of the winning layout

  [[nodiscard]] Polygon footprint() const {
    return Polygon::oriented_rectangle(center, width, depth, orientation);
  }
};

/// Complete reconstructed floor plan.
struct FloorPlan {
  BoolRaster hallway;
  std::vector<PlacedRoom> rooms;

  /// Character map: '#' hallway, 'R' room interior, '+' room border, '.' empty.
  [[nodiscard]] std::string to_ascii(int max_width = 100) const;

  /// Standalone SVG document (hallway cells + room rectangles).
  [[nodiscard]] std::string to_svg(double px_per_meter = 12.0) const;
};

}  // namespace crowdmap::floorplan

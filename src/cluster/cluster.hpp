// crowdmap::cluster — the sharded multi-node simulation behind api::v2
// (docs/CLUSTER.md): N in-process nodes, each a full CrowdMapService, a
// router sharding uploads by consistent hashing on (building, floor), and
// primary/replica replication through a deterministic CMWL-framed shard log
// (cluster/replication.hpp).
//
// Determinism contract (the ROADMAP's threads->nodes lift of PRs 2/4): the
// serialized FloorPlan of a floor is a pure function of the committed upload
// set and the pipeline config — NOT of the node count, the shard layout, or
// the failure schedule. Every committed upload is appended to its shard's
// authoritative log before the submit is acknowledged (classic WAL commit
// point), the log is never lost, and any node serves a floor only after
// replaying that log through the service front door; planner admission is
// idempotent by video id. So crash, partition, duplicate delivery and
// delayed replication reorder *work*, never *results*.
//
// Fault semantics (driven by the shared FaultInjector, points cluster.*):
//  - node_crash: the node's process state (service, planners, stores) is
//    wiped and rebuilt empty; its shards resync from the authoritative log
//    on next access — PR 9's durability story lifted to replication.
//  - partition: the node is unreachable for a window of submit epochs;
//    routing fails over to the next reachable ring node and deliveries to
//    it park in the network until the window expires.
//  - replication_delay: a replica delivery parks in the network and lands
//    on a later flush (replicas apply in seqno order, gaps replay first).
//  - replication_duplicate: a replica delivery is applied twice; the
//    per-shard applied watermark makes the second apply a no-op.
//
// Concurrency: the router serializes its own state under one mutex but
// delivers chunk payloads outside it, so concurrent submitters only contend
// on routing. When cluster fault points are armed the whole submit runs
// under the lock (a crash mid-delivery would otherwise destroy the service
// beneath another submitter); chaos schedules drive submissions serially.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/service.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/replication.hpp"
#include "common/annotations.hpp"
#include "common/fault.hpp"
#include "core/config.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace crowdmap::cluster {

struct ClusterOptions {
  /// config.cluster.* sizes the topology; the rest configures every node's
  /// service identically (a heterogeneous cluster would break the
  /// byte-determinism contract).
  core::PipelineConfig config;
  /// Cluster-wide payload decoder, shared by every node so any replica can
  /// extract a replicated upload (api::v2 passes its side-table decoder).
  cloud::VideoDecoder decoder;
  /// Extraction/refresh worker threads per node.
  std::size_t workers_per_node = 2;
  /// Wire chunk size of the client-facing ingestion path.
  std::size_t chunk_bytes = 4096;
  /// Filesystem for per-node durable stores (config.storage.dir non-empty
  /// gives node i the subdirectory "<dir>/node-<i>"). Borrowed.
  storage::Env* storage_env = nullptr;
};

enum class SubmitOutcome {
  kAccepted = 0,
  kRejectedChunks,   // >=1 chunk rejected or the upload never reassembled
  kWrongShard,       // direct-to-node submit hit a non-primary
  kShedding,         // acting primary over cluster.max_node_queue
  kDeadlineExceeded, // request deadline elapsed before admission
};

struct UploadTicket {
  SubmitOutcome outcome = SubmitOutcome::kAccepted;
  std::size_t chunks_sent = 0;
  std::size_t chunks_rejected = 0;
  /// Acting primary the upload was routed to (valid for every outcome).
  std::size_t node = 0;
  /// Shard-log seqno of the committed record (0 when nothing committed).
  std::uint64_t seqno = 0;
};

/// Shard ownership of one (building, floor): ring preference order, primary
/// first. `replicas` includes the primary and is clamped to
/// cluster.replication_factor and the live node count.
struct ShardView {
  std::size_t primary = 0;
  std::vector<std::size_t> replicas;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Nodes currently in the ring (excludes removed nodes).
  [[nodiscard]] std::size_t node_count() const CM_EXCLUDES(mutex_);
  /// Total node slots ever created (removed nodes keep their index).
  [[nodiscard]] std::size_t node_slots() const CM_EXCLUDES(mutex_);
  [[nodiscard]] std::string node_name(std::size_t node) const;

  /// Routes one chunked upload to its shard's acting primary, commits the
  /// reassembled document to the shard log and replicates it. `deadline`
  /// (0 = none) is a logical-clock tick bound checked at admission.
  UploadTicket submit_upload(const std::string& upload_id,
                             const std::string& building, int floor,
                             const cloud::Blob& payload,
                             std::uint64_t deadline = 0) CM_EXCLUDES(mutex_);

  /// Direct-to-node submission (a client with stale routing): refused with
  /// kWrongShard unless `node` is the shard's acting primary.
  UploadTicket submit_upload_to(std::size_t node, const std::string& upload_id,
                                const std::string& building, int floor,
                                const cloud::Blob& payload,
                                std::uint64_t deadline = 0)
      CM_EXCLUDES(mutex_);

  /// Flushes deliverable parked replication and drains every node's pool.
  void drain() CM_EXCLUDES(mutex_);

  /// Routes to the acting primary, resyncs it from the shard log, then
  /// builds. `built_on` (optional) reports the serving node.
  [[nodiscard]] core::PipelineResult build_floor_plan(
      const std::string& building, int floor,
      const std::optional<core::WorldFrame>& frame = std::nullopt,
      std::size_t* built_on = nullptr) CM_EXCLUDES(mutex_);

  [[nodiscard]] std::shared_ptr<const core::PipelineResult> latest_plan(
      const std::string& building, int floor) CM_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<trajectory::Trajectory> trajectories(
      const std::string& building, int floor) CM_EXCLUDES(mutex_);

  bool persist_artifact_cache(const std::string& building, int floor)
      CM_EXCLUDES(mutex_);
  /// Warms every node's planners from `store`; returns artifacts restored
  /// summed over nodes.
  std::size_t warm_artifact_cache_from(const cloud::DocumentStore& store)
      CM_EXCLUDES(mutex_);

  /// Recovers every node's durable store (aggregated report); error when
  /// any node fails or persistence is disabled ("storage.disabled").
  common::Expected<storage::RecoveryReport> recover_storage()
      CM_EXCLUDES(mutex_);
  storage::Status checkpoint_storage() CM_EXCLUDES(mutex_);

  /// Node join: appends a fresh node, rebuilds the ring and (with
  /// cluster.rebalance) eagerly resyncs re-homed shards. Returns its index.
  std::size_t add_node() CM_EXCLUDES(mutex_);
  /// Node leave: takes the node out of the ring (its slot stays, drained).
  /// False when it is already gone or the last live node.
  bool remove_node(std::size_t node) CM_EXCLUDES(mutex_);

  [[nodiscard]] ShardView shard_of(const std::string& building,
                                   int floor) const CM_EXCLUDES(mutex_);
  /// Committed records in one shard's log (0 before the first commit).
  [[nodiscard]] std::uint64_t shard_log_head(const std::string& building,
                                             int floor) const
      CM_EXCLUDES(mutex_);
  /// Copy of one shard's CMWL segment bytes (empty before the first
  /// commit) — replayable via ReplicationLog::replay / scan_segment.
  [[nodiscard]] io::Bytes shard_log_segment(const std::string& building,
                                            int floor) const
      CM_EXCLUDES(mutex_);

  /// Current logical time (advances once per routed request).
  [[nodiscard]] std::uint64_t now_tick() const noexcept {
    return clock_.now();
  }

  /// Health counters summed over live nodes.
  [[nodiscard]] cloud::ServiceStats stats() const CM_EXCLUDES(mutex_);
  [[nodiscard]] cloud::ServiceStats node_stats(std::size_t node) const;
  /// Merged snapshot: router families plus every live node's families with
  /// a {"node", "node-<i>"} label appended (per-node namespacing).
  [[nodiscard]] obs::MetricsSnapshot metrics() const CM_EXCLUDES(mutex_);
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>&
  router_registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] std::shared_ptr<obs::MetricsRegistry> node_registry(
      std::size_t node) const;
  [[nodiscard]] const cloud::DocumentStore& document_store(
      std::size_t node) const;
  [[nodiscard]] std::optional<obs::FlightDump> flight_dump(std::size_t node,
                                                           bool deterministic);
  /// The router's own flight rings (routing, replication, shedding).
  [[nodiscard]] std::optional<obs::FlightDump> router_flight_dump(
      bool deterministic);
  [[nodiscard]] cloud::DurabilityStats durability_stats() const;

 private:
  using FloorKey = std::pair<std::string, int>;

  struct Node {
    std::string name;
    std::shared_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<cloud::CrowdMapService> service;
    /// Borrowed handle onto the service's worker-queue gauge (backpressure).
    obs::Gauge* queue_depth = nullptr;
    /// Router-side routed-uploads counter, labeled {"node", name}.
    obs::Counter* routed = nullptr;
    bool alive = true;
    /// Unreachable until this submit epoch (partition fault window).
    std::uint64_t partitioned_until = 0;
    /// Per-shard applied watermark: log seqnos this node's service has
    /// ingested. Cleared on crash (process state is gone; the log is not).
    std::map<FloorKey, std::uint64_t> applied;
  };

  /// One replication delivery parked in the network (partitioned target or
  /// injected delay); flushed in FIFO order once the target is reachable.
  struct Parked {
    std::size_t node = 0;
    FloorKey key;
    std::uint64_t seqno = 0;
  };

  UploadTicket submit_impl(std::optional<std::size_t> forced_node,
                           const std::string& upload_id,
                           const std::string& building, int floor,
                           const cloud::Blob& payload, std::uint64_t deadline)
      CM_EXCLUDES(mutex_);

  void make_node_locked(std::size_t index) CM_REQUIRES(mutex_);
  std::unique_ptr<cloud::CrowdMapService> make_service(std::size_t index,
                                                       Node& node);
  [[nodiscard]] std::vector<std::size_t> alive_indices_locked() const
      CM_REQUIRES(mutex_);

  /// Interrogates cluster.node_crash / cluster.partition for every live
  /// node at this epoch (keys are (node, epoch), so decisions are a pure
  /// function of the plan and the request sequence).
  void tick_faults_locked(std::uint64_t epoch) CM_REQUIRES(mutex_);
  void crash_node_locked(std::size_t index) CM_REQUIRES(mutex_);
  [[nodiscard]] bool reachable_locked(std::size_t index,
                                      std::uint64_t epoch) const
      CM_REQUIRES(mutex_);

  [[nodiscard]] ShardView shard_view_locked(const FloorKey& key,
                                            std::uint64_t epoch) const
      CM_REQUIRES(mutex_);
  /// First reachable node of the shard's preference list (falls back to the
  /// ring primary when the whole shard is partitioned). Records a failover
  /// when that is not the ring primary.
  [[nodiscard]] std::size_t acting_primary_locked(const FloorKey& key,
                                                  std::uint64_t epoch)
      CM_REQUIRES(mutex_);

  ReplicationLog& log_for_locked(const FloorKey& key) CM_REQUIRES(mutex_);
  /// Replays the shard log through the node's front door until its applied
  /// watermark reaches the head. Returns records replayed.
  std::size_t sync_node_locked(std::size_t index, const FloorKey& key)
      CM_REQUIRES(mutex_);
  /// Applies one delivered record (replaying any gap first); duplicate
  /// seqnos are no-ops under the applied watermark.
  void apply_record_locked(std::size_t index, const FloorKey& key,
                           std::uint64_t seqno) CM_REQUIRES(mutex_);
  /// Routes one record to a replica: applies it, parks it (partition /
  /// injected delay), or re-applies it (injected duplicate).
  void deliver_record_locked(std::size_t index, const FloorKey& key,
                             std::uint64_t seqno, std::uint64_t epoch)
      CM_REQUIRES(mutex_);
  /// Commit point: appends the reassembled document to the shard log and
  /// fans it out to the replica set. Returns the record's seqno.
  std::uint64_t commit_upload_locked(std::size_t primary, const FloorKey& key,
                                     const cloud::Document& doc,
                                     std::uint64_t epoch) CM_REQUIRES(mutex_);
  /// Delivers every parked record whose target is reachable at `epoch`.
  void flush_network_locked(std::uint64_t epoch) CM_REQUIRES(mutex_);
  /// With cluster.rebalance: eagerly resyncs every shard onto its (possibly
  /// new) replica set after a membership change.
  void rebalance_locked() CM_REQUIRES(mutex_);

  [[nodiscard]] static std::uint64_t floor_hash(const FloorKey& key);

  ClusterOptions options_;
  std::size_t chunk_bytes_ = 4096;
  std::size_t replication_factor_ = 2;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  common::FaultInjector faults_;
  common::LogicalClock clock_;

  obs::Counter* records_total_ = nullptr;
  obs::Counter* delayed_total_ = nullptr;
  obs::Counter* duplicates_total_ = nullptr;
  obs::Counter* failovers_total_ = nullptr;
  obs::Counter* crashes_total_ = nullptr;
  obs::Counter* sheds_total_ = nullptr;
  obs::Counter* wrong_shard_total_ = nullptr;
  obs::Counter* rebalance_moves_total_ = nullptr;
  obs::Gauge* nodes_gauge_ = nullptr;

  mutable common::Mutex mutex_;
  std::vector<std::unique_ptr<Node>> nodes_ CM_GUARDED_BY(mutex_);
  HashRing ring_ CM_GUARDED_BY(mutex_);
  std::map<FloorKey, ReplicationLog> logs_ CM_GUARDED_BY(mutex_);
  std::vector<Parked> parked_ CM_GUARDED_BY(mutex_);
};

}  // namespace crowdmap::cluster

#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "cloud/chunking.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace crowdmap::cluster {

namespace {

/// Submit epochs a partitioned node stays unreachable (the fault models a
/// transient network split, not a decommission).
constexpr std::uint64_t kPartitionTicks = 8;

/// Decision key for per-(node, epoch) fault interrogations. The point
/// identity is mixed in by the injector itself, so crash and partition
/// decisions at the same (node, epoch) stay independent.
std::uint64_t node_epoch_key(std::uint64_t epoch, std::size_t node) noexcept {
  return common::hash_u64(epoch * 0x9E3779B97F4A7C15ull + node);
}

/// Decision key for per-delivery replication faults.
std::uint64_t delivery_key(std::uint64_t shard, std::uint64_t seqno,
                           std::size_t node) noexcept {
  return common::hash_u64(shard + seqno * 0x9E3779B97F4A7C15ull + node);
}

void accumulate_ingest(cloud::IngestStats& into,
                       const cloud::IngestStats& from) {
  into.sessions_opened += from.sessions_opened;
  into.uploads_completed += from.uploads_completed;
  into.uploads_rejected += from.uploads_rejected;
  into.chunks_received += from.chunks_received;
  into.bytes_received += from.bytes_received;
  into.chunks_duplicate += from.chunks_duplicate;
  into.chunks_rejected += from.chunks_rejected;
  into.unknown_session += from.unknown_session;
  into.sessions_expired += from.sessions_expired;
  into.uploads_quarantined += from.uploads_quarantined;
  into.retransmit_requests += from.retransmit_requests;
}

void accumulate_durability(cloud::DurabilityStats& into,
                           const cloud::DurabilityStats& from) {
  into.enabled = into.enabled || from.enabled;
  into.recovered = into.recovered || from.recovered;
  // A cluster is healthy only when every persistent node is; the first
  // accumulation seeds the flag.
  into.healthy = from.enabled ? (into.healthy && from.healthy) : into.healthy;
  into.wal_appends += from.wal_appends;
  into.wal_append_failures += from.wal_append_failures;
  into.wal_bytes += from.wal_bytes;
  into.segments_created += from.segments_created;
  into.live_segments += from.live_segments;
  into.checkpoints += from.checkpoints;
  into.recovery_snapshot_loaded =
      into.recovery_snapshot_loaded || from.recovery_snapshot_loaded;
  into.recovery_records_replayed += from.recovery_records_replayed;
  into.recovery_truncated_records += from.recovery_truncated_records;
}

void accumulate_stats(cloud::ServiceStats& into,
                      const cloud::ServiceStats& from) {
  into.uploads_completed += from.uploads_completed;
  into.uploads_rejected += from.uploads_rejected;
  into.videos_decoded += from.videos_decoded;
  into.decode_failures += from.decode_failures;
  into.trajectories_extracted += from.trajectories_extracted;
  into.trajectories_dropped += from.trajectories_dropped;
  into.sensor_dropouts += from.sensor_dropouts;
  accumulate_ingest(into.ingest, from.ingest);
  into.artifact_cache.hits += from.artifact_cache.hits;
  into.artifact_cache.misses += from.artifact_cache.misses;
  into.artifact_cache.invalidations += from.artifact_cache.invalidations;
  into.artifact_cache.entries += from.artifact_cache.entries;
  into.artifact_cache.bytes += from.artifact_cache.bytes;
  for (std::size_t f = 0; f < cache::kFamilyCount; ++f) {
    into.artifact_cache.family_hits[f] += from.artifact_cache.family_hits[f];
    into.artifact_cache.family_misses[f] +=
        from.artifact_cache.family_misses[f];
  }
  into.cache_warmstart_rejected += from.cache_warmstart_rejected;
  accumulate_durability(into.durability, from.durability);
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      chunk_bytes_(options_.chunk_bytes == 0 ? 4096 : options_.chunk_bytes),
      replication_factor_(
          std::max<std::size_t>(1, options_.config.cluster.replication_factor)),
      registry_(std::make_shared<obs::MetricsRegistry>()) {
  if (options_.config.flight.enabled) {
    obs::FlightOptions opts;
    opts.ring_capacity = options_.config.flight.ring_capacity;
    opts.dump_on_anomaly = options_.config.flight.dump_on_anomaly;
    flight_ = std::make_unique<obs::FlightRecorder>(opts);
  }
  records_total_ = &registry_->counter(
      "crowdmap_cluster_replication_records_total", {},
      "Upload records committed to shard replication logs");
  delayed_total_ = &registry_->counter(
      "crowdmap_cluster_replication_delayed_total", {},
      "Replica deliveries parked by the replication_delay fault");
  duplicates_total_ = &registry_->counter(
      "crowdmap_cluster_replication_duplicates_total", {},
      "Replica deliveries re-applied by the replication_duplicate fault");
  failovers_total_ = &registry_->counter(
      "crowdmap_cluster_failovers_total", {},
      "Routing decisions served by a non-primary ring node");
  crashes_total_ = &registry_->counter(
      "crowdmap_cluster_node_crashes_total", {},
      "Node crash/restart cycles injected by the chaos plan");
  sheds_total_ = &registry_->counter(
      "crowdmap_cluster_sheds_total", {},
      "Uploads shed for exceeding cluster.max_node_queue");
  wrong_shard_total_ = &registry_->counter(
      "crowdmap_cluster_wrong_shard_total", {},
      "Direct-to-node submissions refused as mis-routed");
  rebalance_moves_total_ = &registry_->counter(
      "crowdmap_cluster_rebalance_moves_total", {},
      "Shard resyncs that moved records during a rebalance");
  nodes_gauge_ = &registry_->gauge("crowdmap_cluster_nodes", {},
                                   "Nodes currently in the routing ring");
  faults_.arm(options_.config.faults);

  common::MutexLock lock(mutex_);
  const std::size_t count =
      std::max<std::size_t>(1, options_.config.cluster.nodes);
  for (std::size_t i = 0; i < count; ++i) make_node_locked(i);
  ring_.rebuild(alive_indices_locked());
  nodes_gauge_->set(static_cast<double>(count));
}

std::size_t Cluster::node_count() const {
  common::MutexLock lock(mutex_);
  return alive_indices_locked().size();
}

std::size_t Cluster::node_slots() const {
  common::MutexLock lock(mutex_);
  return nodes_.size();
}

std::string Cluster::node_name(std::size_t node) const {
  common::MutexLock lock(mutex_);
  return nodes_.at(node)->name;
}

void Cluster::make_node_locked(std::size_t index) {
  auto node = std::make_unique<Node>();
  node->name = "node-" + std::to_string(index);
  node->registry = std::make_shared<obs::MetricsRegistry>();
  node->routed = &registry_->counter(
      "crowdmap_cluster_uploads_routed_total", {{"node", node->name}},
      "Uploads routed to this node as acting primary");
  node->service = make_service(index, *node);
  nodes_.push_back(std::move(node));
}

std::unique_ptr<cloud::CrowdMapService> Cluster::make_service(
    std::size_t index, Node& node) {
  core::PipelineConfig config = options_.config;
  if (!config.storage.dir.empty()) {
    // Each node owns its own durable directory, the way each process of a
    // real deployment owns its own disk.
    config.storage.dir += "/node-" + std::to_string(index);
  }
  auto service = std::make_unique<cloud::CrowdMapService>(
      std::move(config), options_.decoder, options_.workers_per_node,
      node.registry, options_.storage_env);
  node.queue_depth = &node.registry->gauge(
      "crowdmap_worker_queue_depth", {},
      "Extraction tasks waiting in the pool");
  return service;
}

std::vector<std::size_t> Cluster::alive_indices_locked() const {
  std::vector<std::size_t> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->alive) out.push_back(i);
  }
  return out;
}

std::uint64_t Cluster::floor_hash(const FloorKey& key) {
  return common::stable_string_hash(key.first + "#" +
                                    std::to_string(key.second));
}

void Cluster::tick_faults_locked(std::uint64_t epoch) {
  if (!faults_.armed()) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    if (!node.alive) continue;
    const std::uint64_t key = node_epoch_key(epoch, i);
    if (faults_.should_fire(common::faults::kClusterNodeCrash, key)) {
      crash_node_locked(i);
    }
    if (faults_.should_fire(common::faults::kClusterPartition, key)) {
      node.partitioned_until = epoch + kPartitionTicks;
      if (flight_ != nullptr) {
        flight_->record_named(obs::FlightEventKind::kFaultFired,
                              static_cast<std::uint32_t>(i),
                              "cluster.partition", epoch);
      }
      CROWDMAP_LOG(kWarn, "cluster")
          << node.name << " partitioned until epoch "
          << node.partitioned_until;
    }
  }
}

void Cluster::crash_node_locked(std::size_t index) {
  Node& node = *nodes_[index];
  crashes_total_->increment();
  if (flight_ != nullptr) {
    flight_->record_named(obs::FlightEventKind::kFaultFired,
                          static_cast<std::uint32_t>(index),
                          "cluster.node_crash");
  }
  CROWDMAP_LOG(kWarn, "cluster") << node.name << " crashed; process state "
                                    "wiped, shard logs will resync";
  // The process dies and restarts empty: planners, stores and watermarks are
  // gone. The shard logs (and any durable directory) are not — the node
  // re-earns its shards by replaying them on next access.
  node.service.reset();
  node.applied.clear();
  node.service = make_service(index, node);
}

bool Cluster::reachable_locked(std::size_t index, std::uint64_t epoch) const {
  return epoch >= nodes_[index]->partitioned_until;
}

ShardView Cluster::shard_view_locked(const FloorKey& key,
                                     std::uint64_t /*epoch*/) const {
  ShardView view;
  view.replicas = ring_.preference(floor_hash(key), replication_factor_);
  if (!view.replicas.empty()) view.primary = view.replicas.front();
  return view;
}

std::size_t Cluster::acting_primary_locked(const FloorKey& key,
                                           std::uint64_t epoch) {
  const std::vector<std::size_t> preference =
      ring_.preference(floor_hash(key), nodes_.size());
  std::size_t acting = preference.empty() ? 0 : preference.front();
  for (const std::size_t candidate : preference) {
    if (reachable_locked(candidate, epoch)) {
      acting = candidate;
      break;
    }
  }
  if (!preference.empty() && acting != preference.front()) {
    failovers_total_->increment();
    if (flight_ != nullptr) {
      flight_->record(obs::FlightEventKind::kClusterFailover,
                      static_cast<std::uint32_t>(acting), floor_hash(key));
    }
  }
  return acting;
}

ReplicationLog& Cluster::log_for_locked(const FloorKey& key) {
  auto it = logs_.find(key);
  if (it == logs_.end()) {
    it = logs_.emplace(key, ReplicationLog(floor_hash(key))).first;
  }
  return it->second;
}

std::size_t Cluster::sync_node_locked(std::size_t index, const FloorKey& key) {
  const auto it = logs_.find(key);
  if (it == logs_.end()) return 0;
  const ReplicationLog& log = it->second;
  Node& node = *nodes_[index];
  std::uint64_t& applied = node.applied[key];
  std::size_t replayed = 0;
  while (applied < log.head()) {
    node.service->ingest_document(decode_record(log.record(applied + 1)));
    ++applied;
    ++replayed;
  }
  return replayed;
}

void Cluster::apply_record_locked(std::size_t index, const FloorKey& key,
                                  std::uint64_t seqno) {
  Node& node = *nodes_[index];
  if (!node.alive) return;
  std::uint64_t& applied = node.applied[key];
  if (applied >= seqno) return;  // duplicate delivery: idempotent no-op
  const ReplicationLog& log = logs_.at(key);
  // A delivery beyond the watermark replays the gap first (delayed earlier
  // records), so replicas always apply in seqno order.
  while (applied < seqno) {
    node.service->ingest_document(decode_record(log.record(applied + 1)));
    ++applied;
  }
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::kClusterReplicate,
                    static_cast<std::uint32_t>(index), floor_hash(key), seqno);
  }
}

void Cluster::deliver_record_locked(std::size_t index, const FloorKey& key,
                                    std::uint64_t seqno, std::uint64_t epoch) {
  const Node& node = *nodes_[index];
  if (!node.alive) return;
  if (!reachable_locked(index, epoch)) {
    parked_.push_back({index, key, seqno});
    return;
  }
  const std::uint64_t decision = delivery_key(floor_hash(key), seqno, index);
  if (faults_.should_fire(common::faults::kClusterReplicationDelay,
                          decision)) {
    delayed_total_->increment();
    parked_.push_back({index, key, seqno});
    return;
  }
  apply_record_locked(index, key, seqno);
  if (faults_.should_fire(common::faults::kClusterReplicationDuplicate,
                          decision)) {
    duplicates_total_->increment();
    apply_record_locked(index, key, seqno);
  }
}

std::uint64_t Cluster::commit_upload_locked(std::size_t primary,
                                            const FloorKey& key,
                                            const cloud::Document& doc,
                                            std::uint64_t epoch) {
  ReplicationLog& log = log_for_locked(key);
  const std::uint64_t seqno = log.append(encode_record(doc));
  // The acting primary ingested this document through the front door, so its
  // watermark advances without a replay — but only when it was actually in
  // step (concurrent submitters can commit interleaved seqnos; a stale
  // watermark is healed by the next sync, replays are idempotent).
  std::uint64_t& applied = nodes_[primary]->applied[key];
  if (applied == seqno - 1) applied = seqno;
  records_total_->increment();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::kClusterReplicate,
                    static_cast<std::uint32_t>(primary), floor_hash(key),
                    seqno);
  }
  const ShardView view = shard_view_locked(key, epoch);
  for (const std::size_t member : view.replicas) {
    if (member != primary) deliver_record_locked(member, key, seqno, epoch);
  }
  return seqno;
}

void Cluster::flush_network_locked(std::uint64_t epoch) {
  std::vector<Parked> keep;
  keep.reserve(parked_.size());
  for (const Parked& parked : parked_) {
    if (!nodes_[parked.node]->alive) continue;  // dropped with the node
    if (!reachable_locked(parked.node, epoch)) {
      keep.push_back(parked);
      continue;
    }
    apply_record_locked(parked.node, parked.key, parked.seqno);
  }
  parked_.swap(keep);
}

void Cluster::rebalance_locked() {
  for (const auto& [key, log] : logs_) {
    const ShardView view = shard_view_locked(key, clock_.now());
    for (const std::size_t member : view.replicas) {
      if (sync_node_locked(member, key) > 0) {
        rebalance_moves_total_->increment();
      }
    }
  }
}

UploadTicket Cluster::submit_upload(const std::string& upload_id,
                                    const std::string& building, int floor,
                                    const cloud::Blob& payload,
                                    std::uint64_t deadline) {
  return submit_impl(std::nullopt, upload_id, building, floor, payload,
                     deadline);
}

UploadTicket Cluster::submit_upload_to(std::size_t node,
                                       const std::string& upload_id,
                                       const std::string& building, int floor,
                                       const cloud::Blob& payload,
                                       std::uint64_t deadline) {
  return submit_impl(node, upload_id, building, floor, payload, deadline);
}

UploadTicket Cluster::submit_impl(std::optional<std::size_t> forced_node,
                                  const std::string& upload_id,
                                  const std::string& building, int floor,
                                  const cloud::Blob& payload,
                                  std::uint64_t deadline) {
  const FloorKey key{building, floor};
  UploadTicket ticket;
  cloud::CrowdMapService* service = nullptr;

  const auto deliver_chunks = [&](cloud::CrowdMapService& svc) {
    for (const auto& chunk :
         cloud::split_into_chunks(payload, upload_id, chunk_bytes_)) {
      ++ticket.chunks_sent;
      if (svc.deliver(chunk) == cloud::IngestStatus::kRejected) {
        ++ticket.chunks_rejected;
      }
    }
  };
  const auto finish_locked = [&](std::uint64_t epoch)
                                 CM_REQUIRES(mutex_) {
    const auto doc =
        nodes_[ticket.node]->service->store().get(upload_id);
    if (!doc) {
      // Never reassembled (dropped/rejected chunks): nothing to commit.
      ticket.outcome = SubmitOutcome::kRejectedChunks;
      return;
    }
    ticket.seqno = commit_upload_locked(ticket.node, key, *doc, epoch);
    ticket.outcome = ticket.chunks_rejected == 0
                         ? SubmitOutcome::kAccepted
                         : SubmitOutcome::kRejectedChunks;
  };

  {
    common::MutexLock lock(mutex_);
    // Cluster chaos serializes the submit under the router lock: a crash
    // interrogation must never destroy a service another thread is
    // delivering into. Disarmed plans take the concurrent path below.
    const bool serialized = faults_.armed();
    const std::uint64_t epoch = clock_.advance();
    tick_faults_locked(epoch);
    flush_network_locked(epoch);
    if (deadline != 0 && epoch > deadline) {
      ticket.outcome = SubmitOutcome::kDeadlineExceeded;
      return ticket;
    }
    const std::size_t primary = acting_primary_locked(key, epoch);
    ticket.node = primary;
    if (forced_node.has_value() && *forced_node != primary) {
      wrong_shard_total_->increment();
      ticket.outcome = SubmitOutcome::kWrongShard;
      return ticket;
    }
    Node& node = *nodes_[primary];
    const std::size_t max_queue = options_.config.cluster.max_node_queue;
    if (max_queue != 0 &&
        node.queue_depth->value() > static_cast<double>(max_queue)) {
      sheds_total_->increment();
      if (flight_ != nullptr) {
        flight_->record(
            obs::FlightEventKind::kClusterShed,
            static_cast<std::uint32_t>(primary),
            static_cast<std::uint64_t>(node.queue_depth->value()));
      }
      ticket.outcome = SubmitOutcome::kShedding;
      return ticket;
    }
    sync_node_locked(primary, key);
    node.routed->increment();
    node.service->open_session(upload_id, building, floor);
    service = node.service.get();
    if (serialized) {
      deliver_chunks(*service);
      finish_locked(epoch);
      return ticket;
    }
  }
  deliver_chunks(*service);
  {
    common::MutexLock lock(mutex_);
    finish_locked(clock_.now());
  }
  return ticket;
}

void Cluster::drain() {
  std::vector<cloud::CrowdMapService*> services;
  {
    common::MutexLock lock(mutex_);
    flush_network_locked(clock_.now());
    for (const auto& node : nodes_) {
      if (node->alive) services.push_back(node->service.get());
    }
  }
  for (cloud::CrowdMapService* service : services) service->drain();
}

core::PipelineResult Cluster::build_floor_plan(
    const std::string& building, int floor,
    const std::optional<core::WorldFrame>& frame, std::size_t* built_on) {
  const FloorKey key{building, floor};
  cloud::CrowdMapService* service = nullptr;
  {
    common::MutexLock lock(mutex_);
    const bool serialized = faults_.armed();
    const std::uint64_t epoch = clock_.advance();
    tick_faults_locked(epoch);
    flush_network_locked(epoch);
    const std::size_t node = acting_primary_locked(key, epoch);
    sync_node_locked(node, key);
    if (built_on != nullptr) *built_on = node;
    service = nodes_[node]->service.get();
    if (serialized) return service->build_floor_plan(building, floor, frame);
  }
  return service->build_floor_plan(building, floor, frame);
}

std::shared_ptr<const core::PipelineResult> Cluster::latest_plan(
    const std::string& building, int floor) {
  const FloorKey key{building, floor};
  cloud::CrowdMapService* service = nullptr;
  {
    common::MutexLock lock(mutex_);
    const std::size_t node = acting_primary_locked(key, clock_.now());
    service = nodes_[node]->service.get();
  }
  return service->latest_plan(building, floor);
}

std::vector<trajectory::Trajectory> Cluster::trajectories(
    const std::string& building, int floor) {
  const FloorKey key{building, floor};
  cloud::CrowdMapService* service = nullptr;
  {
    common::MutexLock lock(mutex_);
    const std::size_t node = acting_primary_locked(key, clock_.now());
    sync_node_locked(node, key);
    service = nodes_[node]->service.get();
  }
  return service->trajectories(building, floor);
}

bool Cluster::persist_artifact_cache(const std::string& building, int floor) {
  const FloorKey key{building, floor};
  cloud::CrowdMapService* service = nullptr;
  {
    common::MutexLock lock(mutex_);
    const std::size_t node = acting_primary_locked(key, clock_.now());
    sync_node_locked(node, key);
    service = nodes_[node]->service.get();
  }
  return service->persist_artifact_cache(building, floor);
}

std::size_t Cluster::warm_artifact_cache_from(
    const cloud::DocumentStore& store) {
  std::vector<cloud::CrowdMapService*> services;
  {
    common::MutexLock lock(mutex_);
    for (const auto& node : nodes_) {
      if (node->alive) services.push_back(node->service.get());
    }
  }
  std::size_t restored = 0;
  for (cloud::CrowdMapService* service : services) {
    restored += service->warm_artifact_cache_from(store);
  }
  return restored;
}

common::Expected<storage::RecoveryReport> Cluster::recover_storage() {
  std::vector<cloud::CrowdMapService*> services;
  {
    common::MutexLock lock(mutex_);
    for (const auto& node : nodes_) {
      if (node->alive) services.push_back(node->service.get());
    }
  }
  storage::RecoveryReport aggregate;
  for (cloud::CrowdMapService* service : services) {
    auto report = service->recover_from_storage();
    if (!report.ok()) return report.error();
    aggregate.snapshot_loaded =
        aggregate.snapshot_loaded || report.value().snapshot_loaded;
    aggregate.segments_scanned += report.value().segments_scanned;
    aggregate.records_replayed += report.value().records_replayed;
    for (auto& record : report.value().quarantined) {
      aggregate.quarantined.push_back(std::move(record));
    }
  }
  return aggregate;
}

storage::Status Cluster::checkpoint_storage() {
  std::vector<cloud::CrowdMapService*> services;
  {
    common::MutexLock lock(mutex_);
    for (const auto& node : nodes_) {
      if (node->alive) services.push_back(node->service.get());
    }
  }
  for (cloud::CrowdMapService* service : services) {
    auto status = service->checkpoint_storage();
    if (!status.ok()) return status;
  }
  return storage::ok_status();
}

std::size_t Cluster::add_node() {
  common::MutexLock lock(mutex_);
  const std::size_t index = nodes_.size();
  make_node_locked(index);
  ring_.rebuild(alive_indices_locked());
  nodes_gauge_->set(static_cast<double>(alive_indices_locked().size()));
  if (options_.config.cluster.rebalance) rebalance_locked();
  return index;
}

bool Cluster::remove_node(std::size_t node) {
  common::MutexLock lock(mutex_);
  if (node >= nodes_.size() || !nodes_[node]->alive) return false;
  const auto alive = alive_indices_locked();
  if (alive.size() <= 1) return false;  // never empty the ring
  nodes_[node]->alive = false;
  // Parked deliveries to a decommissioned node die with it — its shards
  // have new owners, which resync from the authoritative log instead.
  parked_.erase(std::remove_if(parked_.begin(), parked_.end(),
                               [node](const Parked& parked) {
                                 return parked.node == node;
                               }),
                parked_.end());
  ring_.rebuild(alive_indices_locked());
  nodes_gauge_->set(static_cast<double>(alive_indices_locked().size()));
  if (options_.config.cluster.rebalance) rebalance_locked();
  return true;
}

ShardView Cluster::shard_of(const std::string& building, int floor) const {
  common::MutexLock lock(mutex_);
  return shard_view_locked({building, floor}, clock_.now());
}

std::uint64_t Cluster::shard_log_head(const std::string& building,
                                      int floor) const {
  common::MutexLock lock(mutex_);
  const auto it = logs_.find({building, floor});
  return it == logs_.end() ? 0 : it->second.head();
}

io::Bytes Cluster::shard_log_segment(const std::string& building,
                                     int floor) const {
  common::MutexLock lock(mutex_);
  const auto it = logs_.find({building, floor});
  return it == logs_.end() ? io::Bytes{} : it->second.segment();
}

cloud::ServiceStats Cluster::stats() const {
  std::vector<cloud::CrowdMapService*> services;
  {
    common::MutexLock lock(mutex_);
    for (const auto& node : nodes_) {
      if (node->alive) services.push_back(node->service.get());
    }
  }
  cloud::ServiceStats aggregate;
  aggregate.durability.healthy = true;  // AND-seeded across persistent nodes
  for (cloud::CrowdMapService* service : services) {
    accumulate_stats(aggregate, service->stats());
  }
  if (!aggregate.durability.enabled) aggregate.durability.healthy = false;
  return aggregate;
}

cloud::ServiceStats Cluster::node_stats(std::size_t node) const {
  cloud::CrowdMapService* service = nullptr;
  {
    common::MutexLock lock(mutex_);
    service = nodes_.at(node)->service.get();
  }
  return service->stats();
}

obs::MetricsSnapshot Cluster::metrics() const {
  std::vector<std::pair<std::string, std::shared_ptr<obs::MetricsRegistry>>>
      node_registries;
  {
    common::MutexLock lock(mutex_);
    for (const auto& node : nodes_) {
      if (node->alive) node_registries.emplace_back(node->name, node->registry);
    }
  }
  obs::MetricsSnapshot merged = registry_->snapshot();
  for (const auto& [name, registry] : node_registries) {
    obs::MetricsSnapshot snap = registry->snapshot();
    for (auto& family : snap.families) {
      obs::FamilySnapshot* target = nullptr;
      for (auto& existing : merged.families) {
        if (existing.name == family.name) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        obs::FamilySnapshot fresh;
        fresh.name = family.name;
        fresh.help = family.help;
        fresh.type = family.type;
        merged.families.push_back(std::move(fresh));
        target = &merged.families.back();
      }
      for (auto& series : family.series) {
        series.labels.emplace_back("node", name);
        std::sort(series.labels.begin(), series.labels.end());
        target->series.push_back(std::move(series));
      }
    }
  }
  std::sort(merged.families.begin(), merged.families.end(),
            [](const obs::FamilySnapshot& a, const obs::FamilySnapshot& b) {
              return a.name < b.name;
            });
  for (auto& family : merged.families) {
    std::sort(family.series.begin(), family.series.end(),
              [](const obs::SeriesSnapshot& a, const obs::SeriesSnapshot& b) {
                return a.labels < b.labels;
              });
  }
  return merged;
}

std::shared_ptr<obs::MetricsRegistry> Cluster::node_registry(
    std::size_t node) const {
  common::MutexLock lock(mutex_);
  return nodes_.at(node)->registry;
}

const cloud::DocumentStore& Cluster::document_store(std::size_t node) const {
  common::MutexLock lock(mutex_);
  return nodes_.at(node)->service->store();
}

std::optional<obs::FlightDump> Cluster::flight_dump(std::size_t node,
                                                    bool deterministic) {
  cloud::CrowdMapService* service = nullptr;
  {
    common::MutexLock lock(mutex_);
    service = nodes_.at(node)->service.get();
  }
  obs::FlightRecorder* flight = service->flight_recorder();
  if (flight == nullptr) return std::nullopt;
  return deterministic ? flight->deterministic_dump() : flight->dump();
}

std::optional<obs::FlightDump> Cluster::router_flight_dump(
    bool deterministic) {
  if (flight_ == nullptr) return std::nullopt;
  return deterministic ? flight_->deterministic_dump() : flight_->dump();
}

cloud::DurabilityStats Cluster::durability_stats() const {
  return stats().durability;
}

}  // namespace crowdmap::cluster

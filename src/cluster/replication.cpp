#include "cluster/replication.hpp"

#include <utility>

#include "storage/crc32c.hpp"
#include "storage/wal.hpp"

namespace crowdmap::cluster {

io::Bytes encode_record(const cloud::Document& doc) {
  io::Writer w;
  w.u32(kRecordMagic);
  w.u8(kRecordVersion);
  w.str(doc.id);
  w.str(doc.building);
  w.i32(doc.floor);
  w.u32(static_cast<std::uint32_t>(doc.metadata.size()));
  for (const auto& [key, value] : doc.metadata) {
    w.str(key);
    w.str(value);
  }
  w.str(std::string(doc.payload.begin(), doc.payload.end()));
  return std::move(w).take();
}

cloud::Document decode_record(const io::Bytes& bytes) {
  io::Reader r(bytes);
  if (r.u32() != kRecordMagic) {
    throw io::DecodeError("replication record: bad magic");
  }
  if (r.u8() != kRecordVersion) {
    throw io::DecodeError("replication record: unsupported version");
  }
  cloud::Document doc;
  doc.id = r.str();
  doc.building = r.str();
  doc.floor = r.i32();
  const std::uint32_t pairs = r.u32();
  io::check_count(pairs, "replication record metadata");
  for (std::uint32_t i = 0; i < pairs; ++i) {
    std::string key = r.str();
    doc.metadata[std::move(key)] = r.str();
  }
  const std::string payload = r.str();
  doc.payload.assign(payload.begin(), payload.end());
  if (!r.exhausted()) {
    throw io::DecodeError("replication record: trailing bytes");
  }
  return doc;
}

ReplicationLog::ReplicationLog(std::uint64_t shard_id) {
  io::Writer header;
  header.u32(storage::kWalMagic);
  header.u32(storage::kWalVersion);
  header.u64(shard_id);
  segment_ = std::move(header).take();
}

std::uint64_t ReplicationLog::append(io::Bytes record) {
  io::Writer frame;
  frame.u32(static_cast<std::uint32_t>(record.size()));
  frame.u32(storage::crc32c(record));
  frame.bytes_raw(record);
  const io::Bytes framed = std::move(frame).take();
  segment_.insert(segment_.end(), framed.begin(), framed.end());
  records_.push_back(std::move(record));
  return records_.size();
}

const io::Bytes& ReplicationLog::record(std::uint64_t seqno) const {
  return records_.at(seqno - 1);
}

common::Expected<std::vector<io::Bytes>> ReplicationLog::replay(
    const io::Bytes& segment) {
  auto scan = storage::scan_segment(segment);
  if (!scan.ok()) return scan.error();
  if (!scan.value().clean) {
    return common::make_error("cluster.replication_damage",
                              "shipped shard segment has damaged frames");
  }
  return std::move(scan).take().records;
}

}  // namespace crowdmap::cluster

// Consistent-hash ring for shard routing (docs/CLUSTER.md). Each member
// node projects `vnodes` tokens onto the 64-bit ring via the platform-stable
// FNV-1a string hash; a key's preference list walks clockwise from the key's
// hash collecting distinct members. Membership changes therefore move only
// the shards adjacent to the joining/leaving node's tokens — the property
// that makes rebalancing O(moved shards), not O(all shards).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crowdmap::cluster {

class HashRing {
 public:
  HashRing() = default;
  explicit HashRing(const std::vector<std::size_t>& members,
                    std::size_t vnodes = 64);

  /// Rebuilds the ring over a new member set (node join/leave). Member
  /// indices need not be contiguous — removed nodes simply stay out.
  void rebuild(const std::vector<std::size_t>& members);

  /// Ordered preference list for a key: the first `count` distinct members
  /// clockwise of `key_hash` (fewer when the ring has fewer members, empty
  /// on an empty ring). Deterministic for a given member set.
  [[nodiscard]] std::vector<std::size_t> preference(std::uint64_t key_hash,
                                                    std::size_t count) const;

  [[nodiscard]] std::size_t member_count() const noexcept { return members_; }

 private:
  struct Token {
    std::uint64_t hash = 0;
    std::size_t node = 0;
  };
  std::vector<Token> tokens_;  // sorted by (hash, node)
  std::size_t members_ = 0;
  std::size_t vnodes_ = 64;
};

}  // namespace crowdmap::cluster

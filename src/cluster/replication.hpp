// Deterministic shard replication log (docs/CLUSTER.md): the authoritative,
// append-only record of every committed upload of one (building, floor)
// shard. Records are framed with PR 9's CMWL WAL framing — the 16-byte
// [magic][version][seqno] segment header followed by [u32 len][u32 crc32c]
// [payload] frames — so the same storage::scan_segment() that recovers
// durable segments replays a shipped shard, and a replica's copy is
// verifiable byte-for-byte. Seqnos are 1-based and dense: head() is both
// the record count and the newest seqno, and a node's per-shard applied
// watermark is a single integer.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/docstore.hpp"
#include "common/expected.hpp"
#include "io/serialize.hpp"

namespace crowdmap::cluster {

/// Record codec magic/version ("CMRR"): the payload inside each WAL frame.
inline constexpr std::uint32_t kRecordMagic = 0x434D5252u;
inline constexpr std::uint8_t kRecordVersion = 1;

/// Encodes one committed upload document as a replication record
/// (little-endian: magic, version, id, building, floor, metadata, payload).
[[nodiscard]] io::Bytes encode_record(const cloud::Document& doc);

/// Decodes a replication record; throws io::DecodeError on malformed bytes.
[[nodiscard]] cloud::Document decode_record(const io::Bytes& bytes);

class ReplicationLog {
 public:
  /// `shard_id` seeds the CMWL segment header's seqno field, tying shipped
  /// segment bytes to their shard identity.
  explicit ReplicationLog(std::uint64_t shard_id);

  /// Frames and appends one record; returns its 1-based seqno.
  std::uint64_t append(io::Bytes record);

  [[nodiscard]] std::uint64_t head() const noexcept { return records_.size(); }

  /// Record bytes by 1-based seqno (seqno must be in [1, head()]).
  [[nodiscard]] const io::Bytes& record(std::uint64_t seqno) const;

  /// The full CMWL segment (header + every frame) — the bytes a primary
  /// ships to a catching-up replica.
  [[nodiscard]] const io::Bytes& segment() const noexcept { return segment_; }

  /// Replays a shipped segment through storage::scan_segment. Unlike crash
  /// recovery, replication transport is not allowed to tear: any damaged
  /// frame is an error (code "cluster.replication_damage").
  [[nodiscard]] static common::Expected<std::vector<io::Bytes>> replay(
      const io::Bytes& segment);

 private:
  io::Bytes segment_;
  std::vector<io::Bytes> records_;
};

}  // namespace crowdmap::cluster

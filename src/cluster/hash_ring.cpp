#include "cluster/hash_ring.hpp"

#include <algorithm>
#include <string>

#include "common/fault.hpp"

namespace crowdmap::cluster {

HashRing::HashRing(const std::vector<std::size_t>& members, std::size_t vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes) {
  rebuild(members);
}

void HashRing::rebuild(const std::vector<std::size_t>& members) {
  tokens_.clear();
  members_ = members.size();
  tokens_.reserve(members.size() * vnodes_);
  for (const std::size_t node : members) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      // String-hashed tokens: stable across platforms and identical for a
      // node index regardless of what other members exist, so a rebuild
      // leaves surviving nodes' tokens exactly where they were.
      const std::string token_id = "node-" + std::to_string(node) +
                                   "/vnode-" + std::to_string(v);
      tokens_.push_back({common::stable_string_hash(token_id), node});
    }
  }
  std::sort(tokens_.begin(), tokens_.end(),
            [](const Token& a, const Token& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

std::vector<std::size_t> HashRing::preference(std::uint64_t key_hash,
                                              std::size_t count) const {
  std::vector<std::size_t> out;
  if (tokens_.empty() || count == 0) return out;
  const std::size_t want = std::min(count, members_);
  out.reserve(want);
  // First token clockwise of the key (wrapping), then walk until `want`
  // distinct nodes are collected.
  std::size_t start = std::lower_bound(
                          tokens_.begin(), tokens_.end(), key_hash,
                          [](const Token& t, std::uint64_t h) {
                            return t.hash < h;
                          }) -
                      tokens_.begin();
  for (std::size_t step = 0; step < tokens_.size() && out.size() < want;
       ++step) {
    const std::size_t node = tokens_[(start + step) % tokens_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace crowdmap::cluster

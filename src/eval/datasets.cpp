#include "eval/datasets.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::eval {

namespace {

[[nodiscard]] sim::CampaignOptions scaled_options(int hallway_walks,
                                                  double night_fraction,
                                                  double scale) {
  sim::CampaignOptions options;
  options.users = 8;
  options.room_videos_per_room = 1;
  options.hallway_walks =
      std::max(4, static_cast<int>(std::lround(hallway_walks * scale)));
  options.night_fraction = night_fraction;
  options.junk_fraction = 0.05;
  options.hallway_distance = 12.0;
  options.sim.fps = 3.0;
  options.sim.camera.width = 120;
  options.sim.camera.height = 160;
  return options;
}

}  // namespace

DatasetSpec lab1_dataset(double scale) {
  DatasetSpec spec;
  spec.name = "Lab1";
  spec.building = sim::lab1();
  spec.options = scaled_options(24, 0.3, scale);
  spec.seed = 0x1AB1;
  return spec;
}

DatasetSpec lab2_dataset(double scale) {
  DatasetSpec spec;
  spec.name = "Lab2";
  spec.building = sim::lab2();
  spec.options = scaled_options(20, 0.3, scale);
  spec.seed = 0x1AB2;
  return spec;
}

DatasetSpec gym_dataset(double scale) {
  DatasetSpec spec;
  spec.name = "Gym";
  spec.building = sim::gym();
  spec.options = scaled_options(30, 0.35, scale);
  spec.options.hallway_distance = 16.0;
  spec.seed = 0x96A1;
  return spec;
}

std::vector<DatasetSpec> all_datasets(double scale) {
  return {lab1_dataset(scale), lab2_dataset(scale), gym_dataset(scale)};
}

}  // namespace crowdmap::eval

// Fixed-seed dataset definitions for the three evaluation buildings — the
// stand-ins for the paper's Lab1 / Lab2 / Gym datasets (§V). A scale knob
// shrinks campaigns for unit tests and enlarges them for full benches.
#pragma once

#include <cstdint>
#include <string>

#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace crowdmap::eval {

struct DatasetSpec {
  std::string name;
  sim::FloorPlanSpec building;
  sim::CampaignOptions options;
  std::uint64_t seed = 0;
};

/// scale = 1.0 reproduces the default evaluation campaign; smaller values
/// proportionally reduce hallway walks and room revisits (floor >= 1 visit
/// per room so every room still appears).
[[nodiscard]] DatasetSpec lab1_dataset(double scale = 1.0);
[[nodiscard]] DatasetSpec lab2_dataset(double scale = 1.0);
[[nodiscard]] DatasetSpec gym_dataset(double scale = 1.0);

/// All three, in paper order.
[[nodiscard]] std::vector<DatasetSpec> all_datasets(double scale = 1.0);

}  // namespace crowdmap::eval

#include "eval/harness.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "api/crowdmap.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"

namespace crowdmap::eval {

geometry::BoolRaster truth_hallway_raster(const DatasetSpec& dataset,
                                          double cell_size) {
  return dataset.building.hallway_raster(cell_size);
}

ExperimentRun run_experiment(const DatasetSpec& dataset,
                             const core::PipelineConfig& config) {
  ExperimentRun run;
  run.dataset = dataset;

  api::ClientOptions options;
  options.config = config;
  api::Client client(std::move(options));
  if (!config.storage.dir.empty()) {
    // Replay whatever an earlier (possibly crashed) run left in the store
    // before this campaign's uploads land on top of it.
    if (auto recovered = client.recover_storage(); !recovered.ok()) {
      CROWDMAP_LOG(kWarn, "eval")
          << "storage recovery failed: " << recovered.error().message;
    }
  }
  std::string building = dataset.building.name;
  int floor = 1;
  bool have_target = false;
  sim::generate_campaign_streaming(
      dataset.building, dataset.options, dataset.seed,
      [&](sim::SensorRichVideo&& video) {
        if (!have_target) {
          building = video.building;
          floor = video.floor;
          have_target = true;
        }
        (void)client.submit_video(video);
      });
  client.drain();

  // First pass: build in the backend's own frame to estimate the alignment
  // onto ground truth, then rebuild in the truth frame so rasters are
  // directly comparable (the paper's overlay step). The second build replays
  // the first's frame-independent artifacts from the cache.
  const auto plan0 = client.build_plan({building, floor, std::nullopt, {}});
  run.trajectories = client.trajectories(building, floor);
  const auto alignment =
      floorplan::align_to_truth(run.trajectories, plan0.result.aggregation);
  run.global_to_truth = alignment.value_or(geometry::Pose2{});

  core::WorldFrame frame;
  frame.global_to_world = run.global_to_truth;
  frame.extent = dataset.building.extent();
  auto final_build = client.build_plan({building, floor, frame, {}});
  run.result = std::move(final_build.result);
  run.cache = final_build.cache;

  // Table I metrics: cut room paths (the paper does this manually), align
  // residually, compare.
  std::vector<geometry::Polygon> room_polys;
  for (const auto& room : dataset.building.rooms) {
    room_polys.push_back(room.footprint());
  }
  const auto truth = truth_hallway_raster(dataset, config.grid_cell_size);
  run.hallway =
      mapping::hallway_shape_metrics(run.result.skeleton, truth, room_polys);

  // Fig. 8 metrics: rooms are already in the truth frame (identity residual).
  run.room_errors = floorplan::evaluate_rooms(run.result.plan, dataset.building,
                                              geometry::Pose2{});
  run.metrics = std::move(final_build.metrics);
  run.flight = client.flight_dump();
  if (!config.storage.dir.empty()) {
    if (auto status = client.checkpoint_storage(); !status.ok()) {
      CROWDMAP_LOG(kWarn, "eval")
          << "storage checkpoint failed: " << status.error().message;
    }
  }
  run.durability = client.durability_stats();
  return run;
}

void print_table_row(std::ostream& out, const std::vector<std::string>& cells,
                     int cell_width) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << " | ";
    out << std::left << std::setw(cell_width) << cells[i];
  }
  out << '\n';
}

void print_cdf(std::ostream& out, const std::string& name,
               const std::vector<double>& samples, std::size_t rows) {
  out << "# CDF: " << name << " (n=" << samples.size() << ")\n";
  if (samples.empty()) return;
  const common::EmpiricalCdf cdf(samples);
  out << cdf.to_table(rows);
  const auto s = common::summarize(samples);
  out << "# mean=" << s.mean << " median=" << s.median << " p90=" << s.p90
      << " max=" << s.max << "\n";
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string pct(double ratio, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << ratio * 100.0 << '%';
  return out.str();
}

}  // namespace crowdmap::eval

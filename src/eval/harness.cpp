#include "eval/harness.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/stats.hpp"

namespace crowdmap::eval {

geometry::BoolRaster truth_hallway_raster(const DatasetSpec& dataset,
                                          double cell_size) {
  return dataset.building.hallway_raster(cell_size);
}

ExperimentRun run_experiment(const DatasetSpec& dataset,
                             const core::PipelineConfig& config) {
  ExperimentRun run;
  run.dataset = dataset;

  core::CrowdMapPipeline pipeline(config);
  sim::generate_campaign_streaming(
      dataset.building, dataset.options, dataset.seed,
      [&pipeline](sim::SensorRichVideo&& video) { pipeline.ingest(video); });

  // First pass: aggregate in the pipeline's own frame to estimate the
  // alignment onto ground truth, then rerun the spatial stages in the truth
  // frame so rasters are directly comparable (the paper's overlay step).
  const auto aggregation = trajectory::aggregate_trajectories(
      pipeline.trajectories(), config.aggregation);
  const auto alignment =
      floorplan::align_to_truth(pipeline.trajectories(), aggregation);
  run.global_to_truth = alignment.value_or(geometry::Pose2{});

  core::WorldFrame frame;
  frame.global_to_world = run.global_to_truth;
  frame.extent = dataset.building.extent();
  run.result = pipeline.run(frame);

  // Table I metrics: cut room paths (the paper does this manually), align
  // residually, compare.
  std::vector<geometry::Polygon> room_polys;
  for (const auto& room : dataset.building.rooms) {
    room_polys.push_back(room.footprint());
  }
  const auto truth = truth_hallway_raster(dataset, config.grid_cell_size);
  run.hallway =
      mapping::hallway_shape_metrics(run.result.skeleton, truth, room_polys);

  // Fig. 8 metrics: rooms are already in the truth frame (identity residual).
  run.room_errors = floorplan::evaluate_rooms(run.result.plan, dataset.building,
                                              geometry::Pose2{});
  run.trajectories = pipeline.trajectories();
  run.metrics = pipeline.metrics().snapshot();
  return run;
}

void print_table_row(std::ostream& out, const std::vector<std::string>& cells,
                     int cell_width) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << " | ";
    out << std::left << std::setw(cell_width) << cells[i];
  }
  out << '\n';
}

void print_cdf(std::ostream& out, const std::string& name,
               const std::vector<double>& samples, std::size_t rows) {
  out << "# CDF: " << name << " (n=" << samples.size() << ")\n";
  if (samples.empty()) return;
  const common::EmpiricalCdf cdf(samples);
  out << cdf.to_table(rows);
  const auto s = common::summarize(samples);
  out << "# mean=" << s.mean << " median=" << s.median << " p90=" << s.p90
      << " max=" << s.max << "\n";
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string pct(double ratio, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << ratio * 100.0 << '%';
  return out.str();
}

}  // namespace crowdmap::eval

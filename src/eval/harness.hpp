// Shared experiment harness: runs a dataset end-to-end through the pipeline,
// aligns the result onto ground truth, and computes the paper's metrics.
// Every bench binary builds on these helpers so that Table I and Figs. 6–9
// are regenerated from one code path.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cloud/durable_store.hpp"
#include "core/pipeline.hpp"
#include "eval/datasets.hpp"
#include "floorplan/eval.hpp"
#include "geometry/raster.hpp"
#include "mapping/skeleton.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace crowdmap::eval {

/// Everything an experiment needs about one end-to-end run.
struct ExperimentRun {
  DatasetSpec dataset;
  core::PipelineResult result;
  geometry::Pose2 global_to_truth;       // Kabsch alignment used for output
  geometry::OverlapMetrics hallway;      // Table I metrics
  std::vector<floorplan::RoomError> room_errors;  // Fig. 8 metrics
  std::vector<trajectory::Trajectory> trajectories;  // kept extracted data
  /// Artifact reuse of the final (truth-frame) build: the harness builds
  /// twice — once to estimate the alignment, once in the truth frame — and
  /// the second build replays the first's pair artifacts from the cache.
  core::CacheReuseStats cache;
  /// Dump of the backend's metrics registry at the end of the run, so
  /// experiment records carry their counters and stage latencies (export
  /// with obs::to_prometheus / obs::to_json; the trace is in result.trace).
  obs::MetricsSnapshot metrics;
  /// Flight-recorder dump taken after the final build (std::nullopt when
  /// config.flight.enabled == false). Merge into a Perfetto timeline with
  /// obs::to_trace_event_json(result.trace, &*flight).
  std::optional<obs::FlightDump> flight;
  /// Durable-store facts (enabled == false when config.storage.dir is
  /// empty). When enabled, the harness recovers before submitting and
  /// checkpoints after the final build (docs/DURABILITY.md).
  cloud::DurabilityStats durability;
};

/// Streams the dataset's videos through the api::v2 backend (cluster.nodes sizes the topology) and evaluates
/// the result against ground truth. The alignment onto the truth frame is
/// estimated from key-frame correspondences (the paper's max-cover overlay).
[[nodiscard]] ExperimentRun run_experiment(const DatasetSpec& dataset,
                                           const core::PipelineConfig& config);

/// Ground-truth hallway raster on the dataset's grid (matching the
/// pipeline's WorldFrame so rasters are cell-comparable).
[[nodiscard]] geometry::BoolRaster truth_hallway_raster(
    const DatasetSpec& dataset, double cell_size);

// ------------------------------------------------------------- printing ---

/// Prints a fixed-width table row ("cell1 | cell2 | ...").
void print_table_row(std::ostream& out, const std::vector<std::string>& cells,
                     int cell_width = 14);

/// Prints "x\tF(x)" rows of an empirical CDF at n quantiles, with a header.
void print_cdf(std::ostream& out, const std::string& name,
               const std::vector<double>& samples, std::size_t rows = 11);

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int precision = 3);
/// Formats a ratio as a percentage string.
[[nodiscard]] std::string pct(double ratio, int precision = 1);

}  // namespace crowdmap::eval

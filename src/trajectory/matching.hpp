// Pairwise trajectory matching (§III.B.I): hierarchical key-frame comparison
// (cheap S1 gate, then SURF S2), anchor-derived rigid transform candidates,
// and sequence-based verification via the LCSS score S3. Also provides the
// single-image aggregation baseline evaluated in Fig. 7(a).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/memo_cache.hpp"
#include "trajectory/lcss.hpp"
#include "trajectory/trajectory.hpp"
#include "vision/similarity.hpp"

namespace crowdmap::trajectory {

/// All thresholds of the matching stack, named after the paper.
struct MatchConfig {
  double h_s = 0.55;    // S1 gate: below it two key-frames are not identical
  double h_d = 0.35;    // SURF descriptor distance threshold (Algorithm 1)
  double nn_ratio = 0.8;  // Lowe ratio gate on top of h_d (1.0 disables)
  double h_f = 0.08;    // S2 gate: minimum good-match ratio
  double h_l = 0.35;    // S3 gate: minimum normalized LCSS for aggregation
  /// Sequence consistency: at least this many anchors must agree with the
  /// winning transform (within `consensus_dist` / `consensus_angle`) before
  /// two trajectories merge — the multi-frame discipline of §III.B.I.
  int min_consistent_anchors = 2;
  double consensus_dist = 2.5;    // meters
  double consensus_angle = 0.35;  // radians
  LcssParams lcss;
  vision::S1Weights s1_weights;
  double resample_spacing = 0.7;  // meters between LCSS samples
  int max_candidates = 5;         // strongest anchors tried as transforms
  /// Cost bounds: S2 (SURF) is evaluated on key-frame pairs in decreasing S1
  /// order, stopping after this many evaluations or this many anchors.
  int max_s2_evaluations = 24;
  int max_anchors = 8;
};

/// A matched key-frame pair across two trajectories.
struct FrameAnchor {
  std::size_t kf_a = 0;
  std::size_t kf_b = 0;
  double s1 = 0.0;
  double s2 = 0.0;
};

/// Result of matching trajectory b against trajectory a.
struct PairMatch {
  Pose2 b_to_a;   // rigid transform mapping b's local frame into a's
  double s3 = 0.0;
  std::vector<FrameAnchor> anchors;
};

/// Stable identity of one S2 evaluation: both key-frames' (video_id,
/// frame_index) plus the thresholds that shape the score. Valid as a memo key
/// only while video ids are unique within the compared set — the aggregation
/// layer checks that before enabling the cache.
[[nodiscard]] std::uint64_t s2_cache_key(const Trajectory& a, std::size_t kf_a,
                                         const Trajectory& b, std::size_t kf_b,
                                         const MatchConfig& config) noexcept;

/// Finds key-frame anchors between two trajectories (S1 gate then S2 gate).
/// `s2_cache` memoizes the expensive SURF mutual-NN scores across calls
/// (nullptr = always recompute); cached and fresh scores are bit-identical.
[[nodiscard]] std::vector<FrameAnchor> find_anchors(
    const Trajectory& a, const Trajectory& b, const MatchConfig& config,
    common::BoundedMemoCache* s2_cache = nullptr);

/// Rigid transform implied by one anchor: assumes the two cameras observed
/// the same scene from (approximately) the same pose.
[[nodiscard]] Pose2 anchor_transform(const KeyFrame& kf_a, const KeyFrame& kf_b);

/// Sequence-based matching: anchors → transform candidates → LCSS S3
/// verification. Returns the accepted transform or nullopt.
[[nodiscard]] std::optional<PairMatch> match_trajectories(
    const Trajectory& a, const Trajectory& b, const MatchConfig& config,
    common::BoundedMemoCache* s2_cache = nullptr);

/// Single-image baseline: accepts the best anchor's transform directly, with
/// no sequence verification (Fig. 7(a)'s "Single Image Aggregation").
[[nodiscard]] std::optional<PairMatch> match_single_image(
    const Trajectory& a, const Trajectory& b, const MatchConfig& config,
    common::BoundedMemoCache* s2_cache = nullptr);

}  // namespace crowdmap::trajectory

#include "trajectory/serialize.hpp"

#include <algorithm>

namespace crowdmap::trajectory {

namespace {

constexpr std::uint32_t kTrajMagic = 0x434D5431;  // "CMT1"
constexpr std::uint32_t kVersion = 1;

void encode_gray_u8(io::Writer& w, const imaging::Image& img) {
  w.u32(static_cast<std::uint32_t>(img.width()));
  w.u32(static_cast<std::uint32_t>(img.height()));
  for (const float v : img.data()) {
    w.u8(static_cast<std::uint8_t>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f));
  }
}

imaging::Image decode_gray_u8(io::Reader& r) {
  const std::uint32_t width = r.u32();
  const std::uint32_t height = r.u32();
  io::check_count(width, "image width");
  io::check_count(height, "image height");
  if (width * static_cast<std::uint64_t>(height) > io::kMaxDecodeCount) {
    throw io::DecodeError("implausible image size");
  }
  imaging::Image img(static_cast<int>(width), static_cast<int>(height));
  for (auto& v : img.data()) v = static_cast<float>(r.u8()) / 255.0f;
  return img;
}

}  // namespace

io::Bytes encode_trajectory(const Trajectory& traj) {
  io::Writer w;
  w.u32(kTrajMagic);
  w.u32(kVersion);
  w.i32(traj.video_id);
  w.i32(traj.user_id);
  w.str(traj.building);
  w.i32(traj.true_room_id);
  w.u8(traj.true_junk ? 1 : 0);
  w.f64(traj.lighting.lux);
  w.u8(traj.lighting.incandescent ? 1 : 0);

  w.u32(static_cast<std::uint32_t>(traj.points.size()));
  for (const auto& p : traj.points) {
    w.f64(p.position.x);
    w.f64(p.position.y);
    w.f64(p.t);
    w.f64(p.heading);
  }

  w.u32(static_cast<std::uint32_t>(traj.keyframes.size()));
  for (const auto& kf : traj.keyframes) {
    w.u64(kf.frame_index);
    w.f64(kf.t);
    w.f64(kf.position.x);
    w.f64(kf.position.y);
    w.f64(kf.heading);
    w.f64(kf.true_position.x);
    w.f64(kf.true_position.y);
    w.f64(kf.true_heading);
    encode_gray_u8(w, kf.gray);
    // Cheap descriptors.
    w.u32(static_cast<std::uint32_t>(kf.cheap.color_hist.size()));
    for (const float v : kf.cheap.color_hist) w.f32(v);
    w.u32(static_cast<std::uint32_t>(kf.cheap.shape.size()));
    for (const float v : kf.cheap.shape) w.f32(v);
    w.f32(kf.cheap.wavelet.dc);
    w.i32(kf.cheap.wavelet.size);
    w.u32(static_cast<std::uint32_t>(kf.cheap.wavelet.positions.size()));
    for (std::size_t i = 0; i < kf.cheap.wavelet.positions.size(); ++i) {
      w.i32(kf.cheap.wavelet.positions[i]);
      w.u8(kf.cheap.wavelet.signs[i] >= 0 ? 1 : 0);
    }
    // SURF features.
    w.u32(static_cast<std::uint32_t>(kf.surf.size()));
    for (const auto& f : kf.surf) {
      w.f64(f.keypoint.x);
      w.f64(f.keypoint.y);
      w.f64(f.keypoint.scale);
      w.f64(f.keypoint.orientation);
      w.f64(f.keypoint.response);
      w.u8(f.keypoint.laplacian_positive ? 1 : 0);
      for (const float v : f.descriptor) w.f32(v);
    }
  }
  return std::move(w).take();
}

Trajectory decode_trajectory(const io::Bytes& data) {
  io::Reader r(data);
  if (r.u32() != kTrajMagic) throw io::DecodeError("not a trajectory");
  if (r.u32() != kVersion) {
    throw io::DecodeError("unsupported trajectory version");
  }
  Trajectory traj;
  traj.video_id = r.i32();
  traj.user_id = r.i32();
  traj.building = r.str();
  traj.true_room_id = r.i32();
  traj.true_junk = r.u8() != 0;
  traj.lighting.lux = r.f64();
  traj.lighting.incandescent = r.u8() != 0;

  const std::uint32_t n_points = r.u32();
  io::check_count(n_points, "track points");
  traj.points.reserve(n_points);
  for (std::uint32_t i = 0; i < n_points; ++i) {
    sensors::TrackPoint p;
    p.position.x = r.f64();
    p.position.y = r.f64();
    p.t = r.f64();
    p.heading = r.f64();
    traj.points.push_back(p);
  }

  const std::uint32_t n_kf = r.u32();
  io::check_count(n_kf, "keyframes");
  traj.keyframes.reserve(n_kf);
  for (std::uint32_t i = 0; i < n_kf; ++i) {
    KeyFrame kf;
    kf.frame_index = static_cast<std::size_t>(r.u64());
    kf.t = r.f64();
    kf.position.x = r.f64();
    kf.position.y = r.f64();
    kf.heading = r.f64();
    kf.true_position.x = r.f64();
    kf.true_position.y = r.f64();
    kf.true_heading = r.f64();
    kf.gray = decode_gray_u8(r);
    const std::uint32_t n_color = r.u32();
    io::check_count(n_color, "color hist");
    kf.cheap.color_hist.reserve(n_color);
    for (std::uint32_t k = 0; k < n_color; ++k) {
      kf.cheap.color_hist.push_back(r.f32());
    }
    const std::uint32_t n_shape = r.u32();
    io::check_count(n_shape, "shape descriptor");
    kf.cheap.shape.reserve(n_shape);
    for (std::uint32_t k = 0; k < n_shape; ++k) kf.cheap.shape.push_back(r.f32());
    kf.cheap.wavelet.dc = r.f32();
    kf.cheap.wavelet.size = r.i32();
    const std::uint32_t n_coeff = r.u32();
    io::check_count(n_coeff, "wavelet coefficients");
    kf.cheap.wavelet.positions.reserve(n_coeff);
    kf.cheap.wavelet.signs.reserve(n_coeff);
    for (std::uint32_t k = 0; k < n_coeff; ++k) {
      kf.cheap.wavelet.positions.push_back(r.i32());
      kf.cheap.wavelet.signs.push_back(r.u8() ? 1 : -1);
    }
    const std::uint32_t n_surf = r.u32();
    io::check_count(n_surf, "surf features");
    kf.surf.reserve(n_surf);
    for (std::uint32_t k = 0; k < n_surf; ++k) {
      vision::SurfFeature f;
      f.keypoint.x = r.f64();
      f.keypoint.y = r.f64();
      f.keypoint.scale = r.f64();
      f.keypoint.orientation = r.f64();
      f.keypoint.response = r.f64();
      f.keypoint.laplacian_positive = r.u8() != 0;
      for (auto& v : f.descriptor) v = r.f32();
      kf.surf.push_back(f);
    }
    traj.keyframes.push_back(std::move(kf));
  }
  return traj;
}

common::Expected<Trajectory> try_decode_trajectory(const io::Bytes& data) {
  return io::expected_decode([&] { return decode_trajectory(data); });
}

}  // namespace crowdmap::trajectory

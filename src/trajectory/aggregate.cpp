#include "trajectory/aggregate.hpp"

#include "trajectory/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <numeric>

#include "common/mathutil.hpp"

namespace crowdmap::trajectory {

std::vector<Vec2> AggregationResult::global_points(
    std::span<const Trajectory> trajectories) const {
  std::vector<Vec2> out;
  for (std::size_t i = 0; i < trajectories.size() && i < global_pose.size(); ++i) {
    if (!global_pose[i]) continue;
    for (const auto& p : trajectories[i].points) {
      out.push_back(global_pose[i]->apply(p.position));
    }
  }
  return out;
}

namespace {

[[nodiscard]] double edge_strength(const MatchEdge& edge) noexcept {
  return (1.0 + static_cast<double>(edge.anchor_count)) * (0.2 + edge.s3);
}

/// The transform of `edge` oriented so it maps `from`'s local frame into
/// `to`'s frame of reference is not needed here; instead we express: given
/// G_u, the pose edge (a,b, b_to_a) implies G_b = G_a ∘ b_to_a.
struct Placement {
  std::vector<std::optional<geometry::Pose2>> pose;
  std::size_t placed = 0;
};

/// Places the largest component along a maximum spanning tree (strongest
/// edges first), then relaxes poses over all edges.
[[nodiscard]] Placement place_and_relax(std::size_t n,
                                        const std::vector<MatchEdge>& edges,
                                        int relaxation_sweeps) {
  Placement out;
  out.pose.assign(n, std::nullopt);
  if (n == 0) return out;

  // Kruskal maximum spanning forest.
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&edges](std::size_t x, std::size_t y) {
    return edge_strength(edges[x]) > edge_strength(edges[y]);
  });
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::vector<std::size_t>> tree_adj(n);
  std::vector<std::size_t> comp_size(n, 1);
  for (const std::size_t e : order) {
    const std::size_t ra = find(edges[e].a);
    const std::size_t rb = find(edges[e].b);
    if (ra == rb) continue;
    parent[ra] = rb;
    comp_size[rb] += comp_size[ra];
    tree_adj[edges[e].a].push_back(e);
    tree_adj[edges[e].b].push_back(e);
  }

  // Root of the largest component.
  std::size_t root = 0;
  std::size_t best_size = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find(i);
    if (comp_size[r] > best_size) {
      best_size = comp_size[r];
      root = r;
    }
  }
  // BFS along the spanning tree from any member of the winning component.
  std::size_t start = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) == root) {
      start = i;
      break;
    }
  }
  if (start == n) return out;
  out.pose[start] = geometry::Pose2{};
  std::deque<std::size_t> frontier{start};
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop_front();
    for (const std::size_t e : tree_adj[u]) {
      const auto& edge = edges[e];
      const std::size_t v = edge.a == u ? edge.b : edge.a;
      if (out.pose[v]) continue;
      out.pose[v] = edge.b == v ? out.pose[u]->compose(edge.b_to_a)
                                : out.pose[u]->compose(edge.b_to_a.inverse());
      frontier.push_back(v);
    }
  }

  // Gauss–Seidel pose relaxation over ALL edges (not just the tree): each
  // placed trajectory's pose becomes the strength-weighted average of the
  // poses its neighbors imply for it. The root stays pinned as the gauge.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].a].push_back(e);
    adj[edges[e].b].push_back(e);
  }
  for (int sweep = 0; sweep < relaxation_sweeps; ++sweep) {
    for (std::size_t u = 0; u < n; ++u) {
      if (u == start || !out.pose[u]) continue;
      Vec2 sum_pos;
      double sum_sin = 0.0;
      double sum_cos = 0.0;
      double sum_w = 0.0;
      for (const std::size_t e : adj[u]) {
        const auto& edge = edges[e];
        const std::size_t v = edge.a == u ? edge.b : edge.a;
        if (!out.pose[v]) continue;
        const geometry::Pose2 implied =
            edge.b == u ? out.pose[v]->compose(edge.b_to_a)
                        : out.pose[v]->compose(edge.b_to_a.inverse());
        const double w = edge_strength(edge);
        sum_pos += implied.position * w;
        sum_sin += std::sin(implied.theta) * w;
        sum_cos += std::cos(implied.theta) * w;
        sum_w += w;
      }
      if (sum_w <= 0) continue;
      const geometry::Pose2 target{sum_pos / sum_w,
                                   std::atan2(sum_sin, sum_cos)};
      // Damped update.
      const double alpha = 0.5;
      out.pose[u]->position =
          out.pose[u]->position * (1 - alpha) + target.position * alpha;
      out.pose[u]->theta = common::wrap_angle(
          out.pose[u]->theta +
          alpha * common::angle_diff(target.theta, out.pose[u]->theta));
    }
  }

  out.placed = static_cast<std::size_t>(
      std::count_if(out.pose.begin(), out.pose.end(),
                    [](const auto& p) { return p.has_value(); }));
  return out;
}

}  // namespace

AggregationResult place_edges(std::size_t n, std::vector<MatchEdge> edges,
                              const AggregationConfig& config) {
  AggregationResult result;
  result.global_pose.assign(n, std::nullopt);
  result.edges = std::move(edges);
  if (n == 0) return result;

  auto placement = place_and_relax(n, result.edges, config.relaxation_sweeps);

  // Outlier edge rejection: edges whose transform disagrees with the relaxed
  // placement are wrong merges (corridor aliasing); drop them and re-place.
  // Round 1 never orphans a node — its strongest edge survives, since a
  // trajectory whose heading estimate is merely biased (long gyro
  // integration, magnetic disturbance) still belongs on the map. Round 2
  // re-checks the refreshed placement without the restore: a restored edge
  // that still cannot agree was a wrong merge after all, and its node is
  // dropped rather than pinned somewhere false.
  if (config.edge_outlier_dist > 0 && !result.edges.empty()) {
    for (const bool allow_restore : {true, false}) {
      std::vector<bool> keep(result.edges.size(), false);
      for (std::size_t e = 0; e < result.edges.size(); ++e) {
        const auto& edge = result.edges[e];
        const auto& pa = placement.pose[edge.a];
        const auto& pb = placement.pose[edge.b];
        if (!pa || !pb) {
          keep[e] = true;
          continue;
        }
        // Implied pose of b from a along this edge vs the relaxed pose of b.
        const geometry::Pose2 implied = pa->compose(edge.b_to_a);
        const double dpos = implied.position.distance_to(pb->position);
        const double dang =
            std::abs(common::angle_diff(implied.theta, pb->theta));
        keep[e] = dpos <= config.edge_outlier_dist &&
                  dang <= config.edge_outlier_angle;
      }
      if (allow_restore) {
        // Restore the strongest edge of any node that lost all of its edges.
        std::vector<std::size_t> best_edge(n, result.edges.size());
        std::vector<bool> has_kept(n, false);
        for (std::size_t e = 0; e < result.edges.size(); ++e) {
          for (const std::size_t node : {result.edges[e].a, result.edges[e].b}) {
            if (keep[e]) has_kept[node] = true;
            if (best_edge[node] == result.edges.size() ||
                edge_strength(result.edges[e]) >
                    edge_strength(result.edges[best_edge[node]])) {
              best_edge[node] = e;
            }
          }
        }
        for (std::size_t node = 0; node < n; ++node) {
          if (!has_kept[node] && best_edge[node] < result.edges.size()) {
            keep[best_edge[node]] = true;
          }
        }
      }
      std::vector<MatchEdge> kept;
      kept.reserve(result.edges.size());
      for (std::size_t e = 0; e < result.edges.size(); ++e) {
        if (keep[e]) kept.push_back(result.edges[e]);
      }
      if (kept.size() == result.edges.size()) break;  // converged
      result.edges = std::move(kept);
      placement = place_and_relax(n, result.edges, config.relaxation_sweeps);
    }
  }

  result.global_pose = std::move(placement.pose);
  result.placed_count = placement.placed;
  return result;
}

bool s2_cache_usable(std::span<const Trajectory> trajectories) {
  std::vector<int> ids;
  ids.reserve(trajectories.size());
  for (const auto& traj : trajectories) ids.push_back(traj.video_id);
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

AggregationResult aggregate_trajectories(std::span<const Trajectory> trajectories,
                                         const AggregationConfig& config,
                                         const AggregationRuntime& runtime) {
  const std::size_t n = trajectories.size();
  common::BoundedMemoCache* s2_cache =
      runtime.s2_cache && s2_cache_usable(trajectories) ? runtime.s2_cache
                                                        : nullptr;
  // Pairwise matching, fanned out over the pool. Each (i, j) pair owns slot p
  // in lexicographic pair order and the merge below walks slots in that same
  // order, so the edge list is identical to the serial nested loop's.
  const std::size_t n_pairs = n * (n - 1) / 2;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n_pairs);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  std::vector<PairDecision> slots(n_pairs);
  common::parallel_for(runtime.pool, n_pairs, [&](std::size_t p) {
    const auto [i, j] = pairs[p];
    if (runtime.pair_lookup) {
      if (auto cached = runtime.pair_lookup(i, j)) {
        slots[p] = *cached;
        return;
      }
    }
    const std::optional<PairMatch> match =
        config.method == AggregationMethod::kSequenceBased
            ? match_trajectories(trajectories[i], trajectories[j], config.match,
                                 s2_cache)
            : match_single_image(trajectories[i], trajectories[j], config.match,
                                 s2_cache);
    PairDecision decision;
    if (match) {
      decision.matched = true;
      decision.b_to_a = match->b_to_a;
      decision.s3 = match->s3;
      decision.anchor_count = match->anchors.size();
    }
    slots[p] = decision;
    if (runtime.pair_store) runtime.pair_store(i, j, decision);
  });
  std::vector<MatchEdge> edges;
  for (std::size_t p = 0; p < n_pairs; ++p) {
    if (!slots[p].matched) continue;
    MatchEdge edge;
    edge.a = pairs[p].first;
    edge.b = pairs[p].second;
    edge.b_to_a = slots[p].b_to_a;
    edge.s3 = slots[p].s3;
    edge.anchor_count = slots[p].anchor_count;
    edges.push_back(edge);
  }
  return place_edges(n, std::move(edges), config);
}

}  // namespace crowdmap::trajectory

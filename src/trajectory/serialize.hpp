// Versioned binary codec for extracted trajectories ("CMT1"), including
// key-frame images and descriptors. Key-frame gray images are quantized to
// 8 bits (their only consumer, panorama stitching, is insensitive to the
// quantization); descriptors are stored exactly. Lives with the trajectory
// types (not in io/) so serialization never pulls domain modules into the
// io layer — see docs/STATIC_ANALYSIS.md for the layering contract.
#pragma once

#include "io/serialize.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::trajectory {

/// Extracted trajectory <-> bytes.
[[nodiscard]] io::Bytes encode_trajectory(const Trajectory& traj);
[[nodiscard]] Trajectory decode_trajectory(const io::Bytes& data);

/// Non-throwing variant for callers that degrade on malformed input: a
/// DecodeError becomes an Error with code "io.decode".
[[nodiscard]] common::Expected<Trajectory> try_decode_trajectory(
    const io::Bytes& data);

}  // namespace crowdmap::trajectory

// Incremental aggregation — the production shape of the backend: uploads
// trickle in over months (the paper's campaign spanned six), and re-running
// O(n^2) pairwise matching from scratch on every new video wastes the
// cluster. IncrementalAggregator memoizes pairwise match decisions by video
// identity, so adding one trajectory costs O(n) new matches; placement
// (spanning tree + relaxation) is recomputed from the cached edge set.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "trajectory/aggregate.hpp"

namespace crowdmap::trajectory {

struct IncrementalStats {
  std::size_t pair_matches_computed = 0;  // actual matcher invocations
  std::size_t pair_matches_cached = 0;    // served from the memo
};

class IncrementalAggregator {
 public:
  explicit IncrementalAggregator(AggregationConfig config = {},
                                 AggregationRuntime runtime = {})
      : config_(std::move(config)), runtime_(runtime) {}

  /// Swaps the worker pool / S2 memo the aggregator matches with. The memo
  /// carries scores across add() calls, so incremental re-runs never repeat
  /// a SURF evaluation for a pair of key-frames already seen.
  void set_runtime(const AggregationRuntime& runtime) { runtime_ = runtime; }

  /// Adds one trajectory; matches it against everything already added (the
  /// O(n) new pairs fan out over the runtime pool, merged in index order).
  /// Returns its index in the aggregate.
  std::size_t add(Trajectory traj);

  /// Current placement over everything added so far (spanning tree +
  /// relaxation + outlier rejection over the cached edges).
  [[nodiscard]] AggregationResult aggregate() const;

  [[nodiscard]] const std::vector<Trajectory>& trajectories() const noexcept {
    return trajectories_;
  }
  [[nodiscard]] IncrementalStats stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return trajectories_.size(); }

 private:
  AggregationConfig config_;
  AggregationRuntime runtime_;
  std::vector<Trajectory> trajectories_;
  /// Memoized pairwise decisions keyed by (i, j) indices, i < j.
  std::map<std::pair<std::size_t, std::size_t>, std::optional<PairMatch>> memo_;
  mutable IncrementalStats stats_;  // cache-hit counting in const aggregate()
};

/// Re-places a cached edge set without re-matching: exposed so callers can
/// re-run placement with different robustness settings cheaply.
[[nodiscard]] AggregationResult place_edges(std::size_t n,
                                            std::vector<MatchEdge> edges,
                                            const AggregationConfig& config);

}  // namespace crowdmap::trajectory

#include "trajectory/incremental.hpp"

namespace crowdmap::trajectory {

std::size_t IncrementalAggregator::add(Trajectory traj) {
  const std::size_t index = trajectories_.size();
  trajectories_.push_back(std::move(traj));
  // Match the newcomer against everything already present; older pairs stay
  // memoized untouched. The new pairs are independent, so they fan out over
  // the runtime pool into per-pair slots merged in index order.
  common::BoundedMemoCache* s2_cache =
      runtime_.s2_cache && s2_cache_usable(trajectories_) ? runtime_.s2_cache
                                                          : nullptr;
  std::vector<std::optional<PairMatch>> slots(index);
  common::parallel_for(runtime_.pool, index, [&](std::size_t i) {
    slots[i] =
        config_.method == AggregationMethod::kSequenceBased
            ? match_trajectories(trajectories_[i], trajectories_[index],
                                 config_.match, s2_cache)
            : match_single_image(trajectories_[i], trajectories_[index],
                                 config_.match, s2_cache);
  });
  for (std::size_t i = 0; i < index; ++i) {
    ++stats_.pair_matches_computed;
    memo_[{i, index}] = std::move(slots[i]);
  }
  return index;
}

AggregationResult IncrementalAggregator::aggregate() const {
  std::vector<MatchEdge> edges;
  for (const auto& [key, match] : memo_) {
    if (!match) continue;
    MatchEdge edge;
    edge.a = key.first;
    edge.b = key.second;
    edge.b_to_a = match->b_to_a;
    edge.s3 = match->s3;
    edge.anchor_count = match->anchors.size();
    edges.push_back(edge);
  }
  // Every edge served from the memo rather than re-matched.
  stats_.pair_matches_cached += edges.size();
  return place_edges(trajectories_.size(), std::move(edges), config_);
}

}  // namespace crowdmap::trajectory

#include "trajectory/incremental.hpp"

namespace crowdmap::trajectory {

std::size_t IncrementalAggregator::add(Trajectory traj) {
  const std::size_t index = trajectories_.size();
  trajectories_.push_back(std::move(traj));
  // Match the newcomer against everything already present; older pairs stay
  // memoized untouched.
  for (std::size_t i = 0; i < index; ++i) {
    auto match =
        config_.method == AggregationMethod::kSequenceBased
            ? match_trajectories(trajectories_[i], trajectories_[index],
                                 config_.match)
            : match_single_image(trajectories_[i], trajectories_[index],
                                 config_.match);
    ++stats_.pair_matches_computed;
    memo_[{i, index}] = std::move(match);
  }
  return index;
}

AggregationResult IncrementalAggregator::aggregate() const {
  std::vector<MatchEdge> edges;
  for (const auto& [key, match] : memo_) {
    if (!match) continue;
    MatchEdge edge;
    edge.a = key.first;
    edge.b = key.second;
    edge.b_to_a = match->b_to_a;
    edge.s3 = match->s3;
    edge.anchor_count = match->anchors.size();
    edges.push_back(edge);
  }
  // Every edge served from the memo rather than re-matched.
  stats_.pair_matches_cached += edges.size();
  return place_edges(trajectories_.size(), std::move(edges), config_);
}

}  // namespace crowdmap::trajectory

#include "trajectory/trajectory.hpp"

#include <algorithm>

#include "imaging/ncc.hpp"
#include "sensors/heading.hpp"

namespace crowdmap::trajectory {

sensors::TrackPoint track_at(const std::vector<sensors::TrackPoint>& track,
                             double t) {
  if (track.empty()) return {};
  if (t <= track.front().t) return track.front();
  if (t >= track.back().t) return track.back();
  const auto it = std::lower_bound(
      track.begin(), track.end(), t,
      [](const sensors::TrackPoint& p, double tt) { return p.t < tt; });
  const auto hi = it;
  const auto lo = it - 1;
  const double span = hi->t - lo->t;
  const double frac = span > 1e-12 ? (t - lo->t) / span : 0.0;
  sensors::TrackPoint out;
  out.t = t;
  out.position = lo->position + (hi->position - lo->position) * frac;
  out.heading = lo->heading + frac * (hi->heading - lo->heading);
  return out;
}

Trajectory extract_trajectory(const sim::SensorRichVideo& video,
                              const ExtractionConfig& config) {
  Trajectory traj;
  traj.video_id = video.video_id;
  traj.user_id = video.user_id;
  traj.building = video.building;
  traj.true_room_id = video.true_room_id;
  traj.true_junk = video.junk;
  traj.lighting = video.lighting;

  // Motion trace from inertial data.
  traj.points = sensors::dead_reckon(video.imu, config.dead_reckoning);
  // Per-sample heading estimates for key-frame headings.
  const auto headings = sensors::estimate_headings(
      video.imu, config.dead_reckoning.heading);

  auto heading_at = [&](double t) -> double {
    if (video.imu.samples.empty()) return 0.0;
    const auto it = std::lower_bound(
        video.imu.samples.begin(), video.imu.samples.end(), t,
        [](const sensors::ImuSample& s, double tt) { return s.t < tt; });
    const std::size_t idx = std::min(
        static_cast<std::size_t>(it - video.imu.samples.begin()),
        headings.size() - 1);
    return headings[idx];
  };

  // Key-frame selection: HOG + NCC against the last kept frame (§III.B.I).
  // Pass 1 picks indices cheaply; descriptors are computed only for the
  // frames that survive selection and decimation.
  std::vector<std::size_t> selected;
  std::vector<imaging::Image> selected_gray;
  {
    std::vector<float> last_hog;
    const imaging::Image* last_gray = nullptr;
    for (std::size_t i = 0; i < video.frames.size(); ++i) {
      imaging::Image gray = video.frames[i].image.to_gray();

      // Unqualified-data gate: blurred/featureless frames carry no anchors.
      if (gray.stddev() < config.min_frame_stddev) continue;

      const auto hog = imaging::hog_descriptor(gray, config.hog);
      if (last_gray != nullptr) {
        const double hog_dist = imaging::descriptor_distance(hog, last_hog);
        const double ncc = imaging::normalized_cross_correlation(gray, *last_gray);
        const bool extremely_similar = ncc > config.keyframe_ncc_max &&
                                       hog_dist < config.keyframe_hog_min;
        if (extremely_similar) continue;
      }
      selected.push_back(i);
      selected_gray.push_back(std::move(gray));
      last_gray = &selected_gray.back();
      last_hog = hog;
    }
  }
  // Uniform decimation to the key-frame budget.
  if (config.max_keyframes > 0 && selected.size() > config.max_keyframes) {
    std::vector<std::size_t> kept;
    std::vector<imaging::Image> kept_gray;
    for (std::size_t k = 0; k < config.max_keyframes; ++k) {
      const std::size_t idx =
          k * (selected.size() - 1) / (config.max_keyframes - 1);
      if (!kept.empty() && kept.back() == selected[idx]) continue;
      kept.push_back(selected[idx]);
      kept_gray.push_back(std::move(selected_gray[idx]));
    }
    selected = std::move(kept);
    selected_gray = std::move(kept_gray);
  }

  for (std::size_t k = 0; k < selected.size(); ++k) {
    const std::size_t i = selected[k];
    const auto& frame = video.frames[i];
    KeyFrame kf;
    kf.frame_index = i;
    kf.t = frame.t;
    const auto tp = track_at(traj.points, frame.t);
    kf.position = tp.position;
    kf.heading = heading_at(frame.t);
    kf.cheap = vision::compute_cheap_descriptors(frame.image);
    kf.surf = vision::detect_and_describe(selected_gray[k], config.surf);
    kf.true_position = frame.true_pose.position;
    kf.true_heading = frame.true_pose.theta;
    kf.gray = std::move(selected_gray[k]);
    traj.keyframes.push_back(std::move(kf));
  }
  return traj;
}

double keyframe_ratio(const Trajectory& traj, std::size_t source_frames) {
  if (source_frames == 0) return 0.0;
  return static_cast<double>(traj.keyframes.size()) /
         static_cast<double>(source_frames);
}

}  // namespace crowdmap::trajectory

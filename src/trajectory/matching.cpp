#include "trajectory/matching.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "vision/matcher.hpp"

namespace crowdmap::trajectory {

std::uint64_t s2_cache_key(const Trajectory& a, std::size_t kf_a,
                           const Trajectory& b, std::size_t kf_b,
                           const MatchConfig& config) noexcept {
  using common::hash_combine;
  using common::hash_u64;
  // Each side packs (video_id, frame_index) injectively before mixing. A
  // hash_combine of the two raw small integers is NOT safe here: its (a<<6)
  // term steps by 64 per video_id, which a ~64-frame frame_index shift plus
  // the low-bit XOR of adjacent ids can cancel, aliasing e.g. (v12, f79)
  // with (v13, f14) — and a key collision silently replays the wrong score.
  const auto side = [](int video_id, std::size_t frame_index) {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(video_id))
         << 32) |
        (static_cast<std::uint64_t>(frame_index) & 0xffffffffULL);
    return hash_u64(packed);
  };
  const std::uint64_t side_a = side(a.video_id, a.keyframes[kf_a].frame_index);
  const std::uint64_t side_b = side(b.video_id, b.keyframes[kf_b].frame_index);
  // Fold in the thresholds so a config change can never replay stale scores.
  const std::uint64_t params =
      hash_combine(std::bit_cast<std::uint64_t>(config.h_d),
                   std::bit_cast<std::uint64_t>(config.nn_ratio));
  return hash_combine(hash_combine(side_a, side_b), params);
}

std::vector<FrameAnchor> find_anchors(const Trajectory& a, const Trajectory& b,
                                      const MatchConfig& config,
                                      common::BoundedMemoCache* s2_cache) {
  // Stage 1: cheap descriptor combination on every key-frame pair; prevents
  // wrong aggregation and gates the expensive SURF match.
  struct Gated {
    std::size_t i;
    std::size_t j;
    double s1;
  };
  std::vector<Gated> gated;
  for (std::size_t i = 0; i < a.keyframes.size(); ++i) {
    for (std::size_t j = 0; j < b.keyframes.size(); ++j) {
      const double s1 = vision::similarity_s1(
          a.keyframes[i].cheap, b.keyframes[j].cheap, config.s1_weights);
      if (s1 >= config.h_s) gated.push_back({i, j, s1});
    }
  }
  // Stage 2: SURF mutual-NN matching (Algorithm 1) on the most promising
  // candidates first, within the configured cost bounds.
  std::sort(gated.begin(), gated.end(),
            [](const Gated& x, const Gated& y) { return x.s1 > y.s1; });
  std::vector<FrameAnchor> anchors;
  int evaluations = 0;
  for (const auto& g : gated) {
    if (evaluations >= config.max_s2_evaluations ||
        static_cast<int>(anchors.size()) >= config.max_anchors) {
      break;
    }
    ++evaluations;
    auto evaluate = [&] {
      return vision::match_score_s2(a.keyframes[g.i].surf,
                                    b.keyframes[g.j].surf, config.h_d,
                                    config.nn_ratio);
    };
    const double s2 =
        s2_cache ? s2_cache->get_or_compute(
                       s2_cache_key(a, g.i, b, g.j, config), evaluate)
                 : evaluate();
    if (s2 < config.h_f) continue;
    anchors.push_back({g.i, g.j, g.s1, s2});
  }
  return anchors;
}

Pose2 anchor_transform(const KeyFrame& kf_a, const KeyFrame& kf_b) {
  // Cameras saw the same scene => poses coincide in the world frame.
  // b->a: rotate by the heading difference, then translate so that b's
  // key-frame position lands on a's.
  const double dtheta = common::wrap_angle(kf_a.heading - kf_b.heading);
  const geometry::Vec2 t = kf_a.position - kf_b.position.rotated(dtheta);
  return {t, dtheta};
}

namespace {

/// Resampled polyline of a trajectory's motion trace.
[[nodiscard]] std::vector<Vec2> resampled_points(const Trajectory& traj,
                                                 double spacing) {
  std::vector<Vec2> raw;
  raw.reserve(traj.points.size());
  for (const auto& p : traj.points) raw.push_back(p.position);
  return resample_polyline(raw, spacing);
}

/// Index of the resampled point nearest to a position.
[[nodiscard]] int nearest_index(const std::vector<Vec2>& points, Vec2 p) {
  int best = 0;
  double best_dist = 1e18;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = points[i].distance_to(p);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

std::optional<PairMatch> match_trajectories(const Trajectory& a,
                                            const Trajectory& b,
                                            const MatchConfig& config,
                                            common::BoundedMemoCache* s2_cache) {
  auto anchors = find_anchors(a, b, config, s2_cache);
  if (anchors.empty()) return std::nullopt;
  // Strongest anchors first; cap the candidate set.
  std::sort(anchors.begin(), anchors.end(),
            [](const FrameAnchor& x, const FrameAnchor& y) { return x.s2 > y.s2; });
  const std::size_t n_candidates =
      std::min<std::size_t>(anchors.size(),
                            static_cast<std::size_t>(config.max_candidates));

  const auto pa = resampled_points(a, config.resample_spacing);
  const auto pb = resampled_points(b, config.resample_spacing);
  if (pa.empty() || pb.empty()) return std::nullopt;

  // Transform consensus: how many anchors imply (approximately) the same
  // rigid transform as the candidate. Sequences of consistent frames are
  // what distinguishes a true overlap from a lone look-alike frame.
  auto consistent_count = [&](const Pose2& t) {
    int count = 0;
    for (const auto& anchor : anchors) {
      const Pose2 ta = anchor_transform(a.keyframes[anchor.kf_a],
                                        b.keyframes[anchor.kf_b]);
      const double dpos = ta.position.distance_to(t.position);
      const double dang = std::abs(common::angle_diff(ta.theta, t.theta));
      if (dpos < config.consensus_dist && dang < config.consensus_angle) ++count;
    }
    return count;
  };

  double best_s3 = 0.0;
  std::size_t best_candidate = anchors.size();
  const double denom = static_cast<double>(std::min(pa.size(), pb.size()));
  for (std::size_t c = 0; c < n_candidates; ++c) {
    const auto& anchor = anchors[c];
    const Pose2 t = anchor_transform(a.keyframes[anchor.kf_a],
                                     b.keyframes[anchor.kf_b]);
    if (consistent_count(t) < config.min_consistent_anchors) continue;
    std::vector<Vec2> tb;
    tb.reserve(pb.size());
    for (const Vec2 p : pb) tb.push_back(t.apply(p));
    // Align LCSS indices at the anchor correspondence.
    const int ia = nearest_index(pa, a.keyframes[anchor.kf_a].position);
    const int jb = nearest_index(tb, t.apply(b.keyframes[anchor.kf_b].position));
    const std::size_t len = lcss_length(pa, tb, config.lcss, ia - jb);
    const double s3 = static_cast<double>(len) / denom;
    if (s3 > best_s3) {
      best_s3 = s3;
      best_candidate = c;
    }
  }
  if (best_s3 < config.h_l || best_candidate >= anchors.size()) {
    return std::nullopt;
  }
  // Final transform: average over the anchors consistent with the winner
  // (multiple frames beat one frame, the sequence-based principle).
  const Pose2 winner = anchor_transform(a.keyframes[anchors[best_candidate].kf_a],
                                        b.keyframes[anchors[best_candidate].kf_b]);
  Vec2 sum_t;
  double sum_sin = 0.0;
  double sum_cos = 0.0;
  int n_used = 0;
  for (const auto& anchor : anchors) {
    const Pose2 ta =
        anchor_transform(a.keyframes[anchor.kf_a], b.keyframes[anchor.kf_b]);
    if (ta.position.distance_to(winner.position) >= config.consensus_dist ||
        std::abs(common::angle_diff(ta.theta, winner.theta)) >=
            config.consensus_angle) {
      continue;
    }
    sum_t += ta.position;
    sum_sin += std::sin(ta.theta);
    sum_cos += std::cos(ta.theta);
    ++n_used;
  }
  PairMatch match;
  match.s3 = best_s3;
  match.b_to_a = n_used > 0
                     ? Pose2{sum_t / n_used, std::atan2(sum_sin, sum_cos)}
                     : winner;
  match.anchors = std::move(anchors);
  return match;
}

std::optional<PairMatch> match_single_image(const Trajectory& a,
                                            const Trajectory& b,
                                            const MatchConfig& config,
                                            common::BoundedMemoCache* s2_cache) {
  auto anchors = find_anchors(a, b, config, s2_cache);
  if (anchors.empty()) return std::nullopt;
  const auto best = std::max_element(
      anchors.begin(), anchors.end(),
      [](const FrameAnchor& x, const FrameAnchor& y) { return x.s2 < y.s2; });
  PairMatch match;
  match.s3 = 0.0;
  match.b_to_a =
      anchor_transform(a.keyframes[best->kf_a], b.keyframes[best->kf_b]);
  match.anchors = std::move(anchors);
  return match;
}

}  // namespace crowdmap::trajectory

// User trajectory extraction from a sensor-rich video: dead-reckoned motion
// trace plus key-frames carrying visual descriptors (§III.A, §III.B.I).
#pragma once

#include <string>
#include <vector>

#include "geometry/vec2.hpp"
#include "imaging/hog.hpp"
#include "sensors/dead_reckoning.hpp"
#include "sim/user_sim.hpp"
#include "vision/matcher.hpp"
#include "vision/similarity.hpp"
#include "vision/surf.hpp"

namespace crowdmap::trajectory {

using geometry::Vec2;

/// One selected key-frame: the visual anchor point of the trajectory.
struct KeyFrame {
  std::size_t frame_index = 0;  // index into the source video's frames
  double t = 0.0;
  Vec2 position;                // dead-reckoned position at capture time
  double heading = 0.0;         // estimated heading at capture time
  imaging::Image gray;          // retained for panorama generation
  vision::CheapDescriptors cheap;
  std::vector<vision::SurfFeature> surf;
  Vec2 true_position;           // ground truth, evaluation only
  double true_heading = 0.0;    // ground truth, evaluation only
};

/// A user trajectory: motion trace in its own local frame + key-frames.
struct Trajectory {
  int video_id = 0;
  int user_id = 0;
  std::string building;
  std::vector<sensors::TrackPoint> points;  // local coordinates
  std::vector<KeyFrame> keyframes;
  int true_room_id = -1;   // evaluation only
  bool true_junk = false;  // evaluation only
  sim::Lighting lighting;  // recorded lighting condition

  [[nodiscard]] bool empty() const noexcept { return points.empty(); }
};

/// Extraction parameters (thresholds named after the paper's notation).
struct ExtractionConfig {
  /// Key-frame selection: drop a frame whose NCC similarity S_cc to the last
  /// kept frame exceeds this (extremely similar frames removed)...
  double keyframe_ncc_max = 0.93;
  /// ...unless its HOG distance to the last kept frame exceeds h_g
  /// (noticeable camera motion keeps the frame).
  double keyframe_hog_min = 0.35;  // h_g
  /// Minimum variance gate: frames with near-zero texture (motion blur) are
  /// unqualified data and dropped entirely.
  float min_frame_stddev = 0.035f;
  /// Hard cap on key-frames per trajectory: after selection, the survivors
  /// are decimated uniformly in time (bounds matching cost; SRS rotations
  /// stay angularly dense enough for panorama coverage).
  std::size_t max_keyframes = 28;
  /// SURF detector settings for key-frame descriptors.
  vision::SurfParams surf{.hessian_threshold = 4e-4, .octaves = 2,
                          .max_features = 150, .upright = false};
  /// HOG settings for key-frame selection.
  imaging::HogParams hog;
  sensors::DeadReckoningParams dead_reckoning;
};

/// Builds a trajectory from an uploaded video: dead-reckon the IMU stream,
/// select key-frames, compute descriptors. The video's pixel data is no
/// longer needed afterwards.
[[nodiscard]] Trajectory extract_trajectory(const sim::SensorRichVideo& video,
                                            const ExtractionConfig& config = {});

/// Position on the dead-reckoned track at time t (linear interpolation).
[[nodiscard]] sensors::TrackPoint track_at(
    const std::vector<sensors::TrackPoint>& track, double t);

/// Fraction of the video's frames that survived key-frame selection.
[[nodiscard]] double keyframe_ratio(const Trajectory& traj,
                                    std::size_t source_frames);

}  // namespace crowdmap::trajectory

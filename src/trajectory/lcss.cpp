#include "trajectory/lcss.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::trajectory {

std::size_t lcss_length(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
                        const LcssParams& params, int index_offset) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return 0;
  // Rolling two-row DP.
  std::vector<std::size_t> prev(m + 1, 0);
  std::vector<std::size_t> cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const long aligned_j = static_cast<long>(j) + index_offset;
      const bool index_ok =
          std::labs(static_cast<long>(i) - aligned_j) < params.delta;
      if (index_ok && a[i - 1].distance_to(b[j - 1]) <= params.epsilon) {
        cur[j] = 1 + prev[j - 1];
      } else {
        cur[j] = std::max(cur[j - 1], prev[j]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double similarity_s3(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
                     const std::vector<TransformCandidate>& candidates,
                     const LcssParams& params) {
  if (a.empty() || b.empty() || candidates.empty()) return 0.0;
  double best = 0.0;
  const double denom = static_cast<double>(std::min(a.size(), b.size()));
  for (const auto& cand : candidates) {
    std::vector<Vec2> tb;
    tb.reserve(b.size());
    for (const Vec2 p : b) tb.push_back(cand.b_to_a.apply(p));
    const std::size_t len = lcss_length(a, tb, params, cand.index_offset);
    best = std::max(best, static_cast<double>(len) / denom);
  }
  return best;
}

std::vector<Vec2> resample_polyline(const std::vector<Vec2>& points,
                                    double spacing) {
  std::vector<Vec2> out;
  if (points.empty() || spacing <= 0) return out;
  out.push_back(points.front());
  double residual = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    Vec2 from = points[i - 1];
    const Vec2 to = points[i];
    double seg_len = from.distance_to(to);
    while (residual + seg_len >= spacing) {
      const double need = spacing - residual;
      const Vec2 dir = (to - from).normalized();
      from = from + dir * need;
      out.push_back(from);
      seg_len -= need;
      residual = 0.0;
    }
    residual += seg_len;
  }
  if (out.back().distance_to(points.back()) > spacing * 0.25) {
    out.push_back(points.back());
  }
  return out;
}

}  // namespace crowdmap::trajectory

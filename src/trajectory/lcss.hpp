// Longest Common Subsequence similarity over trajectories — the paper's
// sequence-based aggregation metric (§III.B.I):
//
//   L(Ta_i, Tb_j) = 0                                   if i = 0 or j = 0
//                 = 1 + L(Ta_{i-1}, Tb_{j-1})           if d(ta_i, tb_j) <= eps
//                                                       and |i - j| < delta
//                 = max(L(Ta_i, Tb_{j-1}), L(Ta_{i-1}, Tb_j))  otherwise
//
//   S3 = max_{f in F} L(Ta, f(Tb)) / min(i, j)          (eq. 2)
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/pose2.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::trajectory {

using geometry::Pose2;
using geometry::Vec2;

struct LcssParams {
  double epsilon = 1.5;  // distance threshold eps (meters)
  int delta = 8;         // max index difference between matched samples
};

/// LCSS length between two point sequences. `index_offset` shifts b's
/// indices before the |i-j| < delta test, so sequences can be aligned at an
/// anchor correspondence rather than at their starts.
[[nodiscard]] std::size_t lcss_length(const std::vector<Vec2>& a,
                                      const std::vector<Vec2>& b,
                                      const LcssParams& params,
                                      int index_offset = 0);

/// S3 for a fixed candidate transform set F: each candidate maps b into a's
/// frame (and realigns indices); the best normalized LCSS wins.
struct TransformCandidate {
  Pose2 b_to_a;          // rigid transform applied to b's points
  int index_offset = 0;  // index realignment for the delta window
};
[[nodiscard]] double similarity_s3(const std::vector<Vec2>& a,
                                   const std::vector<Vec2>& b,
                                   const std::vector<TransformCandidate>& candidates,
                                   const LcssParams& params);

/// Uniformly resamples a polyline to `spacing` meters between points (LCSS
/// index distance then approximates arc-length distance).
[[nodiscard]] std::vector<Vec2> resample_polyline(const std::vector<Vec2>& points,
                                                  double spacing);

}  // namespace crowdmap::trajectory

// Multi-trajectory aggregation: pairwise matches become a pose graph; the
// largest connected component is placed into one global frame (key-frames
// act as the "anchor points" of §III.B.I).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "trajectory/matching.hpp"

namespace crowdmap::trajectory {

/// Outcome of one pairwise comparison, reduced to exactly what the pose
/// graph consumes. This is the unit the artifact cache stores: replaying a
/// stored decision reproduces the same MatchEdge bit for bit, because edges
/// are built from these fields alone (anchors themselves are discarded).
struct PairDecision {
  bool matched = false;
  Pose2 b_to_a;
  double s3 = 0.0;
  std::size_t anchor_count = 0;
};

/// Shared runtime resources for aggregation, owned by the caller (the
/// pipeline shares one pool and one S2 memo across every stage). Every
/// member is optional; the default runs the exact serial legacy path.
struct AggregationRuntime {
  /// Fans the O(N^2) pairwise matching out over the pool (plus the calling
  /// thread). Results are merged per-pair in index order, so any worker
  /// count — including nullptr — produces bit-identical edges.
  common::ThreadPool* pool = nullptr;
  /// Memoizes S2 SURF scores across pairs/rounds/re-runs. Only consulted
  /// when every trajectory in the batch has a distinct video_id (the cache
  /// key is keyed on video identity); otherwise silently bypassed.
  common::BoundedMemoCache* s2_cache = nullptr;
  /// Pair-decision seam for the artifact cache (the pipeline wires these to
  /// content-addressed lookups; see src/core/stage_artifacts.hpp). When
  /// `pair_lookup(i, j)` returns a decision it is used verbatim and the
  /// match is never computed; otherwise the computed decision is offered to
  /// `pair_store`. Keeping the hooks as plain functions keeps this library
  /// free of any cache dependency.
  std::function<std::optional<PairDecision>(std::size_t, std::size_t)>
      pair_lookup;
  std::function<void(std::size_t, std::size_t, const PairDecision&)> pair_store;
};

/// Aggregation method selector (Fig. 7(a) compares the two).
enum class AggregationMethod { kSequenceBased, kSingleImage };

struct AggregationConfig {
  MatchConfig match;
  AggregationMethod method = AggregationMethod::kSequenceBased;
  /// Pose-graph relaxation sweeps after spanning-tree placement (0 disables);
  /// averages each trajectory's pose over all incident edges so one noisy
  /// edge cannot skew a whole chain.
  int relaxation_sweeps = 40;
  /// Edges whose transform disagrees with the relaxed poses by more than
  /// this are discarded as wrong merges, and placement reruns once.
  double edge_outlier_dist = 3.0;   // meters
  double edge_outlier_angle = 0.4;  // radians
};

/// An accepted pairwise match in the pose graph.
struct MatchEdge {
  std::size_t a = 0;  // trajectory indices
  std::size_t b = 0;
  Pose2 b_to_a;
  double s3 = 0.0;
  std::size_t anchor_count = 0;
};

/// Result of aggregating a set of trajectories.
struct AggregationResult {
  /// Per-trajectory transform into the global frame; nullopt for
  /// trajectories that never matched the main component.
  std::vector<std::optional<Pose2>> global_pose;
  std::vector<MatchEdge> edges;
  std::size_t placed_count = 0;

  /// All placed motion-trace points in the global frame.
  [[nodiscard]] std::vector<Vec2> global_points(
      std::span<const Trajectory> trajectories) const;
};

/// Aggregates trajectories: O(n^2) pairwise matching, union of accepted
/// matches, then BFS placement of the largest component from its root.
/// `runtime` supplies the optional worker pool and S2 memo cache; the result
/// does not depend on either (same edges, same poses, bit for bit).
[[nodiscard]] AggregationResult aggregate_trajectories(
    std::span<const Trajectory> trajectories, const AggregationConfig& config,
    const AggregationRuntime& runtime = {});

/// Whether the S2 memo cache may be used for this batch: video ids must be
/// unique or cache keys would collide across distinct key-frames.
[[nodiscard]] bool s2_cache_usable(std::span<const Trajectory> trajectories);

}  // namespace crowdmap::trajectory

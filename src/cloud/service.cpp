#include "cloud/service.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "cache/serialize.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::cloud {

namespace {

/// Reserved namespace for service-internal documents: they share the store
/// with uploads but never collide with a floor query (no real building is
/// named this) and stay enumerable via the floor index.
constexpr const char* kSystemBuilding = "sys:crowdmap";
constexpr int kSystemFloor = 0;

std::string artifact_cache_doc_id(const std::string& building, int floor) {
  return "sys/artifact-cache/" + building + "#" + std::to_string(floor);
}

}  // namespace

CrowdMapService::CrowdMapService(core::PipelineConfig config,
                                 VideoDecoder decoder, std::size_t workers,
                                 std::shared_ptr<obs::MetricsRegistry> registry,
                                 storage::Env* storage_env)
    : config_(std::move(config)),
      decoder_(std::move(decoder)),
      registry_(registry ? std::move(registry)
                         : std::make_shared<obs::MetricsRegistry>()),
      pool_(workers) {
  uploads_completed_ = &registry_->counter(
      "crowdmap_uploads_completed_total", {}, "Chunked uploads reassembled");
  uploads_rejected_ = &registry_->counter(
      "crowdmap_uploads_rejected_total", {},
      "Chunk deliveries rejected by ingestion");
  videos_decoded_ = &registry_->counter(
      "crowdmap_videos_decoded_total", {}, "Uploads decoded into videos");
  decode_failures_ = &registry_->counter(
      "crowdmap_decode_failures_total", {}, "Uploads the decoder rejected");
  trajectories_extracted_ = &registry_->counter(
      "crowdmap_trajectories_extracted_total", {},
      "Trajectories extracted and retained");
  trajectories_dropped_ = &registry_->counter(
      "crowdmap_trajectories_dropped_total", {},
      "Extracted trajectories failing the unqualified-data gates");
  sensor_dropouts_ = &registry_->counter(
      "crowdmap_sensor_dropouts_injected_total", {},
      "Uploads whose sensor tail was truncated by the chaos plan");
  cache_warmstart_rejected_ = &registry_->counter(
      "crowdmap_cache_warmstart_rejected_total", {},
      "Artifact-cache warm-start snapshots rejected as truncated or corrupt");
  queue_depth_ = &registry_->gauge("crowdmap_worker_queue_depth", {},
                                   "Extraction tasks waiting in the pool");
  extract_seconds_ = &registry_->histogram(
      "crowdmap_extract_seconds", {}, {},
      "Per-upload trajectory extraction latency");
  obs::Histogram& task_seconds = registry_->histogram(
      "crowdmap_worker_task_seconds", {}, {},
      "Worker-pool task wall-clock latency");
  if (config_.flight.enabled) {
    obs::FlightOptions opts;
    opts.ring_capacity = config_.flight.ring_capacity;
    opts.dump_on_anomaly = config_.flight.dump_on_anomaly;
    flight_ = std::make_unique<obs::FlightRecorder>(opts);
  }
  if (!config_.storage.dir.empty()) {
    storage::Env& env =
        storage_env != nullptr ? *storage_env : storage::posix_env();
    DurableStoreOptions opts;
    opts.dir = config_.storage.dir;
    opts.segment_bytes = config_.storage.segment_bytes;
    opts.snapshot_every = config_.storage.snapshot_every;
    opts.fsync = config_.storage.fsync;
    durable_ = std::make_unique<DurableDocumentStore>(store_, env, opts,
                                                      registry_, flight_.get());
  }
  pool_.set_queue_observer(
      [gauge = queue_depth_, flight = flight_.get()](std::size_t depth) {
        gauge->set(static_cast<double>(depth));
        if (flight != nullptr) {
          flight->record(obs::FlightEventKind::kQueueDepth, 0, depth);
        }
      });
  pool_.set_task_observer(
      [&task_seconds](double seconds) { task_seconds.observe(seconds); });
  ingest_ = std::make_unique<IngestService>(
      store_, [this](const Document& doc) { on_upload_complete(doc); },
      IngestConfig{}, registry_);
  ingest_->set_flight_recorder(flight_.get());
  if (config_.slo.plan_refresh_p99_ms > 0 || config_.slo.extract_p99_ms > 0 ||
      config_.slo.ingest_queue_depth_max > 0) {
    watchdog_ = std::make_unique<obs::SloWatchdog>(registry_, flight_.get());
    if (config_.slo.plan_refresh_p99_ms > 0) {
      obs::SloSpec spec;
      spec.name = "plan_refresh_p99_ms";
      spec.metric = "crowdmap_plan_refresh_seconds";
      spec.kind = obs::SloKind::kHistogramQuantile;
      spec.quantile = 0.99;
      spec.scale = 1000.0;  // histogram records seconds; the SLO is in ms
      spec.threshold = config_.slo.plan_refresh_p99_ms;
      watchdog_->add(spec);
    }
    if (config_.slo.extract_p99_ms > 0) {
      obs::SloSpec spec;
      spec.name = "extract_p99_ms";
      spec.metric = "crowdmap_extract_seconds";
      spec.kind = obs::SloKind::kHistogramQuantile;
      spec.quantile = 0.99;
      spec.scale = 1000.0;
      spec.threshold = config_.slo.extract_p99_ms;
      watchdog_->add(spec);
    }
    if (config_.slo.ingest_queue_depth_max > 0) {
      obs::SloSpec spec;
      spec.name = "ingest_queue_depth_max";
      spec.metric = "crowdmap_worker_queue_depth";
      spec.kind = obs::SloKind::kGaugeMax;
      spec.threshold = static_cast<double>(config_.slo.ingest_queue_depth_max);
      watchdog_->add(spec);
    }
  }
  faults_.arm(config_.faults);
}

void CrowdMapService::open_session(const std::string& upload_id,
                                   const std::string& building, int floor) {
  ingest_->open_session(upload_id, building, floor);
}

IngestStatus CrowdMapService::deliver(const Chunk& chunk) {
  const IngestStatus status = ingest_->deliver(chunk);
  if (status == IngestStatus::kRejected) uploads_rejected_->increment();
  return status;
}

std::vector<std::uint32_t> CrowdMapService::missing_chunks(
    const std::string& upload_id) {
  return ingest_->missing_chunks(upload_id);
}

void CrowdMapService::ingest_document(const Document& doc) {
  store_.put(doc);
  on_upload_complete(doc);
}

core::IncrementalPlanner& CrowdMapService::planner_for(const FloorKey& key) {
  common::MutexLock lock(mutex_);
  auto& slot = planners_[key];
  if (!slot) {
    slot = std::make_unique<core::IncrementalPlanner>(config_, registry_);
    // The extraction pool doubles as the refresh pipeline's worker pool —
    // unless the config demands serial execution (threads == 1).
    if (config_.parallel.threads != 1 && pool_.worker_count() > 0) {
      slot->set_thread_pool(&pool_);
    }
    // All floors share the service recorder: one black box for the backend.
    if (flight_ != nullptr) slot->set_flight_recorder(flight_.get());
  }
  return *slot;
}

void CrowdMapService::schedule_refresh(const FloorKey& key) {
  {
    common::MutexLock lock(mutex_);
    bool& pending = refresh_pending_[key];
    if (pending) return;  // one queued refresh absorbs any number of ingests
    pending = true;
  }
  (void)pool_.submit([this, key] {
    {
      // Cleared before running so an admission landing mid-refresh schedules
      // exactly one follow-up that will see it.
      common::MutexLock lock(mutex_);
      refresh_pending_[key] = false;
    }
    (void)planner_for(key).refresh();
    if (watchdog_ != nullptr) watchdog_->evaluate();
  });
}

void CrowdMapService::on_upload_complete(const Document& doc) {
  uploads_completed_->increment();
  dispatch_extraction(doc);
  // Auto-checkpoint (storage.snapshot_every) rides the upload-completion
  // path: the store's put for this upload has already been journaled, and
  // the ingest thread holds no lock the checkpoint needs.
  if (durable_ != nullptr) durable_->maybe_checkpoint();
}

void CrowdMapService::dispatch_extraction(const Document& doc) {
  // Decode + extract on the worker pool; the calling thread returns at once.
  (void)pool_.submit([this, doc] {
    // Chaos: decode failure, keyed by the upload's stable identity so the
    // same plan loses the same uploads at any worker count. The document is
    // quarantined, not dropped — operators can replay it post-incident.
    if (faults_.should_fire(common::faults::kDecodeFail,
                            common::stable_string_hash(doc.id))) {
      decode_failures_->increment();
      CROWDMAP_LOG(kWarn, "service")
          << "injected decode failure for upload " << doc.id;
      store_.quarantine(doc, "fault.decode");
      return;
    }
    auto video = decoder_(doc);
    if (!video) {
      decode_failures_->increment();
      return;
    }
    videos_decoded_->increment();
    // Chaos: sensor dropout — the phone stopped recording mid-walk. Keep a
    // deterministic fraction of the head of the capture and truncate the
    // synchronized IMU tail to match.
    if (faults_.should_fire(common::faults::kExtractSensorDropout,
                            common::hash_u64(
                                static_cast<std::uint64_t>(video->video_id)))) {
      sensor_dropouts_->increment();
      const std::size_t keep =
          std::max<std::size_t>(1, video->frames.size() / 2);
      if (keep < video->frames.size()) {
        video->frames.resize(keep);
        const double cutoff = video->frames.back().t;
        auto& samples = video->imu.samples;
        while (!samples.empty() && samples.back().t > cutoff) {
          samples.pop_back();
        }
      }
    }
    common::Stopwatch timer;
    auto traj = trajectory::extract_trajectory(*video, config_.extraction);
    extract_seconds_->observe(timer.elapsed_seconds());
    const FloorKey key{doc.building, doc.floor};
    // Admission applies the pipeline's unqualified-data gates and hashes the
    // content key — both on this worker thread, so refresh never pays them.
    if (!planner_for(key).ingest(std::move(traj))) {
      trajectories_dropped_->increment();
      CROWDMAP_LOG(kInfo, "service")
          << "dropped unqualified upload " << doc.id;
      return;
    }
    trajectories_extracted_->increment();
    if (config_.incremental.background_refresh) schedule_refresh(key);
  });
}

void CrowdMapService::drain() { pool_.wait_idle(); }

core::PipelineResult CrowdMapService::build_floor_plan(
    const std::string& building, int floor,
    const std::optional<core::WorldFrame>& frame) {
  drain();
  auto result = planner_for({building, floor}).refresh(frame);
  if (watchdog_ != nullptr) watchdog_->evaluate();
  core::PipelineResult out = *result;
  // Fold the service-side losses into the pipeline's degradation report so
  // the caller sees the whole story, front door included.
  out.degradation.uploads_lost_decode = decode_failures_->value();
  out.degradation.sensor_dropouts = sensor_dropouts_->value();
  return out;
}

std::shared_ptr<const core::PipelineResult> CrowdMapService::latest_plan(
    const std::string& building, int floor) const {
  common::MutexLock lock(mutex_);
  const auto it = planners_.find({building, floor});
  if (it == planners_.end()) return nullptr;
  return it->second->latest();
}

core::CacheReuseStats CrowdMapService::last_cache_reuse(
    const std::string& building, int floor) const {
  common::MutexLock lock(mutex_);
  const auto it = planners_.find({building, floor});
  if (it == planners_.end()) return {};
  return it->second->last_reuse();
}

std::vector<trajectory::Trajectory> CrowdMapService::trajectories(
    const std::string& building, int floor) const {
  core::IncrementalPlanner* planner = nullptr;
  {
    common::MutexLock lock(mutex_);
    const auto it = planners_.find({building, floor});
    if (it == planners_.end()) return {};
    planner = it->second.get();
  }
  return planner->trajectories();
}

bool CrowdMapService::persist_artifact_cache(const std::string& building,
                                             int floor) {
  cache::ArtifactCache* cache = nullptr;
  {
    common::MutexLock lock(mutex_);
    const auto it = planners_.find({building, floor});
    if (it != planners_.end()) cache = it->second->artifact_cache();
  }
  if (cache == nullptr) return false;
  Document doc;
  doc.id = artifact_cache_doc_id(building, floor);
  doc.building = kSystemBuilding;
  doc.floor = kSystemFloor;
  doc.metadata["kind"] = "artifact-cache";
  doc.metadata["building"] = building;
  doc.metadata["floor"] = std::to_string(floor);
  doc.payload = cache::encode_artifact_cache(cache->export_entries());
  store_.put(std::move(doc));
  return true;
}

std::size_t CrowdMapService::warm_artifact_cache_from(
    const DocumentStore& store) {
  std::size_t restored = 0;
  for (const auto& id : store.ids_for_floor(kSystemBuilding, kSystemFloor)) {
    const auto doc = store.get(id);
    if (!doc) continue;
    const auto kind = doc->metadata.find("kind");
    if (kind == doc->metadata.end() || kind->second != "artifact-cache") {
      continue;
    }
    auto entries = cache::try_decode_artifact_cache(doc->payload);
    if (!entries) {
      cache_warmstart_rejected_->increment();
      CROWDMAP_LOG(kWarn, "service")
          << "skipping malformed artifact-cache snapshot " << id << ": "
          << entries.error().message;
      continue;
    }
    const auto building = doc->metadata.find("building");
    const auto floor = doc->metadata.find("floor");
    if (building == doc->metadata.end() || floor == doc->metadata.end()) {
      continue;
    }
    cache::ArtifactCache* cache =
        planner_for({building->second, std::stoi(floor->second)})
            .artifact_cache();
    if (cache == nullptr) continue;  // caching disabled in this config
    restored += cache->restore(entries.value());
  }
  return restored;
}

common::Expected<storage::RecoveryReport>
CrowdMapService::recover_from_storage() {
  if (durable_ == nullptr) {
    return common::make_error("storage.disabled",
                              "config.storage.dir is empty");
  }
  auto report = durable_->open_and_recover();
  if (!report.ok()) return report;
  // Warm the per-floor artifact caches before re-dispatching extraction, so
  // the replayed refreshes reuse their predecessor's artifacts.
  (void)warm_artifact_cache_from(store_);
  // Planners are memory-only: rebuild each floor's corpus by re-running
  // extraction over the recovered uploads. ingest() replaces by video_id,
  // so replay converges to exactly one trajectory per recovered upload.
  for (const Document& doc : store_.export_documents()) {
    if (doc.building == kSystemBuilding) continue;
    dispatch_extraction(doc);
  }
  return report;
}

storage::Status CrowdMapService::checkpoint_storage() {
  if (durable_ == nullptr) {
    return common::make_error("storage.disabled",
                              "config.storage.dir is empty");
  }
  drain();
  std::vector<FloorKey> keys;
  {
    common::MutexLock lock(mutex_);
    keys.reserve(planners_.size());
    for (const auto& [key, planner] : planners_) keys.push_back(key);
  }
  // Snapshot every floor's artifact cache into the store (journaled like any
  // put) so the checkpoint carries warm-start state alongside the documents.
  for (const FloorKey& key : keys) {
    (void)persist_artifact_cache(key.first, key.second);
  }
  return durable_->checkpoint();
}

ServiceStats CrowdMapService::stats() const {
  ServiceStats out;
  out.uploads_completed = uploads_completed_->value();
  out.uploads_rejected = uploads_rejected_->value();
  out.videos_decoded = videos_decoded_->value();
  out.decode_failures = decode_failures_->value();
  out.trajectories_extracted = trajectories_extracted_->value();
  out.trajectories_dropped = trajectories_dropped_->value();
  out.sensor_dropouts = sensor_dropouts_->value();
  out.cache_warmstart_rejected = cache_warmstart_rejected_->value();
  out.ingest = ingest_->stats();
  if (durable_ != nullptr) out.durability = durable_->stats();
  {
    common::MutexLock lock(mutex_);
    for (const auto& [key, planner] : planners_) {
      const cache::ArtifactCache* cache = planner->artifact_cache();
      if (cache == nullptr) continue;
      const cache::ArtifactCacheStats s = cache->stats();
      out.artifact_cache.hits += s.hits;
      out.artifact_cache.misses += s.misses;
      out.artifact_cache.invalidations += s.invalidations;
      out.artifact_cache.entries += s.entries;
      out.artifact_cache.bytes += s.bytes;
      for (std::size_t f = 0; f < cache::kFamilyCount; ++f) {
        out.artifact_cache.family_hits[f] += s.family_hits[f];
        out.artifact_cache.family_misses[f] += s.family_misses[f];
      }
    }
  }
  return out;
}

}  // namespace crowdmap::cloud

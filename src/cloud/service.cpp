#include "cloud/service.hpp"

#include "common/log.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::cloud {

CrowdMapService::CrowdMapService(core::PipelineConfig config,
                                 VideoDecoder decoder, std::size_t workers)
    : config_(std::move(config)), decoder_(std::move(decoder)), pool_(workers) {
  ingest_ = std::make_unique<IngestService>(
      store_, [this](const Document& doc) { on_upload_complete(doc); });
}

void CrowdMapService::open_session(const std::string& upload_id,
                                   const std::string& building, int floor) {
  ingest_->open_session(upload_id, building, floor);
}

IngestStatus CrowdMapService::deliver(const Chunk& chunk) {
  return ingest_->deliver(chunk);
}

void CrowdMapService::on_upload_complete(const Document& doc) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.uploads_completed;
  }
  // Decode + extract on the worker pool; the ingest thread returns at once.
  (void)pool_.submit([this, doc] {
    const auto video = decoder_(doc);
    {
      std::lock_guard lock(mutex_);
      if (!video) {
        ++stats_.decode_failures;
        return;
      }
      ++stats_.videos_decoded;
    }
    auto traj = trajectory::extract_trajectory(*video, config_.extraction);
    std::lock_guard lock(mutex_);
    // The same unqualified-data gates the pipeline applies.
    if (traj.keyframes.size() < config_.min_keyframes) {
      ++stats_.trajectories_dropped;
      CROWDMAP_LOG(kInfo, "service")
          << "dropped unqualified upload " << doc.id;
      return;
    }
    ++stats_.trajectories_extracted;
    trajectories_[{doc.building, doc.floor}].push_back(std::move(traj));
  });
}

void CrowdMapService::drain() { pool_.wait_idle(); }

core::PipelineResult CrowdMapService::build_floor_plan(
    const std::string& building, int floor,
    const std::optional<core::WorldFrame>& frame) {
  drain();
  core::CrowdMapPipeline pipeline(config_);
  {
    std::lock_guard lock(mutex_);
    const auto it = trajectories_.find({building, floor});
    if (it != trajectories_.end()) {
      for (const auto& traj : it->second) {
        pipeline.ingest_trajectory(traj);
      }
    }
  }
  return pipeline.run(frame);
}

ServiceStats CrowdMapService::stats() const {
  std::lock_guard lock(mutex_);
  ServiceStats out = stats_;
  out.uploads_rejected = ingest_->stats().uploads_rejected;
  return out;
}

}  // namespace crowdmap::cloud

#include "cloud/service.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::cloud {

CrowdMapService::CrowdMapService(core::PipelineConfig config,
                                 VideoDecoder decoder, std::size_t workers,
                                 std::shared_ptr<obs::MetricsRegistry> registry)
    : config_(std::move(config)),
      decoder_(std::move(decoder)),
      registry_(registry ? std::move(registry)
                         : std::make_shared<obs::MetricsRegistry>()),
      pool_(workers) {
  uploads_completed_ = &registry_->counter(
      "crowdmap_uploads_completed_total", {}, "Chunked uploads reassembled");
  uploads_rejected_ = &registry_->counter(
      "crowdmap_uploads_rejected_total", {},
      "Chunk deliveries rejected by ingestion");
  videos_decoded_ = &registry_->counter(
      "crowdmap_videos_decoded_total", {}, "Uploads decoded into videos");
  decode_failures_ = &registry_->counter(
      "crowdmap_decode_failures_total", {}, "Uploads the decoder rejected");
  trajectories_extracted_ = &registry_->counter(
      "crowdmap_trajectories_extracted_total", {},
      "Trajectories extracted and retained");
  trajectories_dropped_ = &registry_->counter(
      "crowdmap_trajectories_dropped_total", {},
      "Extracted trajectories failing the unqualified-data gates");
  sensor_dropouts_ = &registry_->counter(
      "crowdmap_sensor_dropouts_injected_total", {},
      "Uploads whose sensor tail was truncated by the chaos plan");
  queue_depth_ = &registry_->gauge("crowdmap_worker_queue_depth", {},
                                   "Extraction tasks waiting in the pool");
  extract_seconds_ = &registry_->histogram(
      "crowdmap_extract_seconds", {}, {},
      "Per-upload trajectory extraction latency");
  obs::Histogram& task_seconds = registry_->histogram(
      "crowdmap_worker_task_seconds", {}, {},
      "Worker-pool task wall-clock latency");
  pool_.set_queue_observer([gauge = queue_depth_](std::size_t depth) {
    gauge->set(static_cast<double>(depth));
  });
  pool_.set_task_observer(
      [&task_seconds](double seconds) { task_seconds.observe(seconds); });
  ingest_ = std::make_unique<IngestService>(
      store_, [this](const Document& doc) { on_upload_complete(doc); },
      IngestConfig{}, registry_);
  faults_.arm(config_.faults);
}

void CrowdMapService::open_session(const std::string& upload_id,
                                   const std::string& building, int floor) {
  ingest_->open_session(upload_id, building, floor);
}

IngestStatus CrowdMapService::deliver(const Chunk& chunk) {
  const IngestStatus status = ingest_->deliver(chunk);
  if (status == IngestStatus::kRejected) uploads_rejected_->increment();
  return status;
}

std::vector<std::uint32_t> CrowdMapService::missing_chunks(
    const std::string& upload_id) {
  return ingest_->missing_chunks(upload_id);
}

void CrowdMapService::on_upload_complete(const Document& doc) {
  uploads_completed_->increment();
  // Decode + extract on the worker pool; the ingest thread returns at once.
  (void)pool_.submit([this, doc] {
    // Chaos: decode failure, keyed by the upload's stable identity so the
    // same plan loses the same uploads at any worker count. The document is
    // quarantined, not dropped — operators can replay it post-incident.
    if (faults_.should_fire(common::faults::kDecodeFail,
                            common::stable_string_hash(doc.id))) {
      decode_failures_->increment();
      CROWDMAP_LOG(kWarn, "service")
          << "injected decode failure for upload " << doc.id;
      store_.quarantine(doc, "fault.decode");
      return;
    }
    auto video = decoder_(doc);
    if (!video) {
      decode_failures_->increment();
      return;
    }
    videos_decoded_->increment();
    // Chaos: sensor dropout — the phone stopped recording mid-walk. Keep a
    // deterministic fraction of the head of the capture and truncate the
    // synchronized IMU tail to match.
    if (faults_.should_fire(common::faults::kExtractSensorDropout,
                            common::hash_u64(
                                static_cast<std::uint64_t>(video->video_id)))) {
      sensor_dropouts_->increment();
      const std::size_t keep =
          std::max<std::size_t>(1, video->frames.size() / 2);
      if (keep < video->frames.size()) {
        video->frames.resize(keep);
        const double cutoff = video->frames.back().t;
        auto& samples = video->imu.samples;
        while (!samples.empty() && samples.back().t > cutoff) {
          samples.pop_back();
        }
      }
    }
    common::Stopwatch timer;
    auto traj = trajectory::extract_trajectory(*video, config_.extraction);
    extract_seconds_->observe(timer.elapsed_seconds());
    // The same unqualified-data gates the pipeline applies.
    if (traj.keyframes.size() < config_.min_keyframes) {
      trajectories_dropped_->increment();
      CROWDMAP_LOG(kInfo, "service")
          << "dropped unqualified upload " << doc.id;
      return;
    }
    trajectories_extracted_->increment();
    common::MutexLock lock(mutex_);
    trajectories_[{doc.building, doc.floor}].push_back(std::move(traj));
  });
}

void CrowdMapService::drain() { pool_.wait_idle(); }

core::PipelineResult CrowdMapService::build_floor_plan(
    const std::string& building, int floor,
    const std::optional<core::WorldFrame>& frame) {
  drain();
  core::CrowdMapPipeline pipeline(config_);
  // The extraction pool just drained, so lend it to the pipeline's parallel
  // stages instead of paying for a second pool — unless the config demands
  // serial execution (threads == 1).
  if (config_.parallel.threads != 1 && pool_.worker_count() > 0) {
    pipeline.set_thread_pool(&pool_);
  }
  {
    common::MutexLock lock(mutex_);
    const auto it = trajectories_.find({building, floor});
    if (it != trajectories_.end()) {
      // Extraction tasks append in pool-completion order, which varies with
      // worker count; sort by the upload's stable identity so the pipeline
      // sees one canonical order and the plan bytes are reproducible.
      std::sort(it->second.begin(), it->second.end(),
                [](const trajectory::Trajectory& a,
                   const trajectory::Trajectory& b) {
                  return a.video_id < b.video_id;
                });
      for (const auto& traj : it->second) {
        pipeline.ingest_trajectory(traj);
      }
    }
  }
  auto result = pipeline.run(frame);
  // Fold the service-side losses into the pipeline's degradation report so
  // the caller sees the whole story, front door included.
  result.degradation.uploads_lost_decode = decode_failures_->value();
  result.degradation.sensor_dropouts = sensor_dropouts_->value();
  return result;
}

ServiceStats CrowdMapService::stats() const {
  ServiceStats out;
  out.uploads_completed = uploads_completed_->value();
  out.uploads_rejected = uploads_rejected_->value();
  out.videos_decoded = videos_decoded_->value();
  out.decode_failures = decode_failures_->value();
  out.trajectories_extracted = trajectories_extracted_->value();
  out.trajectories_dropped = trajectories_dropped_->value();
  out.sensor_dropouts = sensor_dropouts_->value();
  out.ingest = ingest_->stats();
  return out;
}

}  // namespace crowdmap::cloud

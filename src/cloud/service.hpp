// CrowdMapService — the assembled cloud backend (paper §IV.2): chunked
// uploads land in the document store through the ingestion service; a worker
// pool extracts trajectories asynchronously (the Spark-cluster stand-in);
// floor plans are built per (building, floor) by incremental planners that
// reuse content-addressed artifacts across refreshes (docs/INCREMENTAL.md).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/docstore.hpp"
#include "cloud/durable_store.hpp"
#include "cloud/ingest.hpp"
#include "common/annotations.hpp"
#include "common/thread_pool.hpp"
#include "core/incremental.hpp"
#include "core/pipeline.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "storage/env.hpp"

namespace crowdmap::cloud {

/// Decodes an upload payload into a sensor-rich video. The service is
/// format-agnostic: the deployment supplies the codec (the simulation
/// harness passes videos by side table; a production system would decode
/// the zipped recording).
using VideoDecoder =
    std::function<std::optional<sim::SensorRichVideo>(const Document&)>;

/// Snapshot of the service's health counters. A view over the service's
/// MetricsRegistry — stats() reads the same counters the Prometheus export
/// reports, so the two can never disagree.
struct ServiceStats {
  std::size_t uploads_completed = 0;
  std::size_t uploads_rejected = 0;
  std::size_t videos_decoded = 0;
  std::size_t decode_failures = 0;
  std::size_t trajectories_extracted = 0;
  std::size_t trajectories_dropped = 0;
  /// Injected sensor dropouts applied before extraction (chaos runs only).
  std::size_t sensor_dropouts = 0;
  /// The ingest front door's own counters (session lifecycle, chunk-level
  /// rejects/duplicates, quarantine traffic).
  IngestStats ingest;
  /// Artifact-cache totals summed over every floor's planner (zeros when
  /// caching is disabled via config.incremental.artifact_cache_bytes == 0).
  cache::ArtifactCacheStats artifact_cache;
  /// Warm-start snapshots rejected as truncated/corrupt (the service fell
  /// back to a cold build for those floors instead of failing).
  std::size_t cache_warmstart_rejected = 0;
  /// Durable-store facts (enabled == false when config.storage.dir is
  /// empty; all other fields are then zero).
  DurabilityStats durability;
};

/// End-to-end backend: ingestion -> async feature extraction -> per-floor
/// incremental reconstruction. Thread-safe.
class CrowdMapService {
 public:
  /// `registry` defaults to a fresh service-local registry; pass a shared
  /// one to co-locate several services behind one exporter endpoint.
  /// `storage_env` (borrowed, must outlive the service) overrides the
  /// filesystem the durable store writes through — tests pass a FaultEnv;
  /// nullptr uses the real posix env. Ignored when config.storage.dir is
  /// empty (persistence disabled, the historical in-memory behavior).
  CrowdMapService(core::PipelineConfig config, VideoDecoder decoder,
                  std::size_t workers = 2,
                  std::shared_ptr<obs::MetricsRegistry> registry = nullptr,
                  storage::Env* storage_env = nullptr);

  /// Opens an upload session (the Task-1 geo-spatial annotation).
  void open_session(const std::string& upload_id, const std::string& building,
                    int floor);

  /// Delivers one chunk; completed uploads are decoded and feature-extracted
  /// on the worker pool.
  IngestStatus deliver(const Chunk& chunk);

  /// Chunk indices a pending upload still needs (retransmit round); see
  /// IngestService::missing_chunks for the budget semantics.
  [[nodiscard]] std::vector<std::uint32_t> missing_chunks(
      const std::string& upload_id);

  /// Replication/rebalance seam (crowdmap::cluster): admits an already
  /// reassembled upload document as if its final chunk had just cleared
  /// ingestion — store put plus async decode/extraction. Bypasses the
  /// chunked front door: replication is a reliable internal transport, so
  /// ingest chunk faults never re-fire for replicated copies, keeping the
  /// client-facing fault interrogations once-per-upload across the cluster.
  /// Idempotent per document id (the store put replaces, planner admission
  /// dedupes by video id).
  void ingest_document(const Document& doc);

  /// Blocks until every queued extraction (and background refresh) has
  /// finished.
  void drain();

  /// Builds the floor plan for one (building, floor) from every trajectory
  /// extracted so far. Drains first, then refreshes that floor's planner:
  /// artifacts untouched by new uploads replay from the cache, so repeat
  /// builds cost O(delta), not O(corpus), while the returned plan stays
  /// byte-identical to a cold rebuild.
  [[nodiscard]] core::PipelineResult build_floor_plan(
      const std::string& building, int floor,
      const std::optional<core::WorldFrame>& frame = std::nullopt)
      CM_EXCLUDES(mutex_);

  /// The last complete plan for one floor without forcing a rebuild: what a
  /// read-path endpoint serves while ingestion (and, with
  /// config.incremental.background_refresh, the refresh itself) proceeds in
  /// the background. Null before the floor's first refresh.
  [[nodiscard]] std::shared_ptr<const core::PipelineResult> latest_plan(
      const std::string& building, int floor) const CM_EXCLUDES(mutex_);

  /// Cache reuse of the floor's most recent refresh (zeros before it).
  [[nodiscard]] core::CacheReuseStats last_cache_reuse(
      const std::string& building, int floor) const CM_EXCLUDES(mutex_);

  /// Admitted trajectories of one floor, sorted by video_id (the canonical
  /// refresh order). Call drain() first if extractions may be in flight.
  [[nodiscard]] std::vector<trajectory::Trajectory> trajectories(
      const std::string& building, int floor) const CM_EXCLUDES(mutex_);

  /// Snapshots one floor's artifact cache into this service's document store
  /// (a reserved system document; invisible to upload queries). Returns
  /// false when that floor has no planner or caching is disabled.
  bool persist_artifact_cache(const std::string& building, int floor)
      CM_EXCLUDES(mutex_);

  /// Warms per-floor artifact caches from snapshots previously written by
  /// persist_artifact_cache() into `store` (typically a restarted service
  /// pointing at its predecessor's store). Malformed snapshots are skipped,
  /// not fatal. Returns the number of artifacts restored.
  std::size_t warm_artifact_cache_from(const DocumentStore& store)
      CM_EXCLUDES(mutex_);

  /// Replays the durable store back into memory (docs/DURABILITY.md): opens
  /// the log, restores snapshot + WAL with damaged tail records quarantined,
  /// warms per-floor artifact caches from recovered snapshots, re-dispatches
  /// extraction for every recovered upload (planner ingest is idempotent by
  /// video_id), and attaches the journal so new mutations persist. Call once
  /// before serving traffic; never throws. Errors ("storage.disabled" when
  /// config.storage.dir is empty, manifest corruption, env failures) come
  /// back through the Expected.
  common::Expected<storage::RecoveryReport> recover_from_storage()
      CM_EXCLUDES(mutex_);

  /// Drains in-flight work, snapshots every floor's artifact cache into the
  /// store, then checkpoints the durable log (snapshot + segment
  /// compaction). The clean-shutdown path; also callable mid-flight.
  storage::Status checkpoint_storage() CM_EXCLUDES(mutex_);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const DocumentStore& store() const noexcept { return store_; }

  /// Service-level metrics: per-upload ingest/decode/extract counters, the
  /// worker-pool queue-depth gauge, extraction and task latency histograms,
  /// and (shared with the planners) the pipeline's stage/cache metrics.
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics_registry()
      const noexcept {
    return registry_;
  }

  /// The service-wide flight recorder: one set of rings behind ingest, the
  /// worker pool and every floor's refresh pipelines. nullptr when
  /// config.flight.enabled == false.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() noexcept {
    return flight_.get();
  }

  /// The SLO watchdog built from config.slo (nullptr when every threshold
  /// is 0/disabled). Evaluated after each foreground build and each
  /// background refresh; evaluate() it directly for an on-demand check.
  [[nodiscard]] obs::SloWatchdog* slo_watchdog() noexcept {
    return watchdog_.get();
  }

 private:
  using FloorKey = std::pair<std::string, int>;

  /// Runs on the ingest thread; hands decode + extraction to the pool. The
  /// extraction task admits the trajectory into the floor's planner.
  void on_upload_complete(const Document& doc) CM_EXCLUDES(mutex_);

  /// The pool half of on_upload_complete, shared with recovery replay
  /// (which re-dispatches stored uploads without re-counting completions).
  void dispatch_extraction(const Document& doc) CM_EXCLUDES(mutex_);

  /// The floor's planner, created on first use (shares the service registry
  /// and borrows the worker pool). The returned reference is stable:
  /// planners are never destroyed while the service lives.
  core::IncrementalPlanner& planner_for(const FloorKey& key)
      CM_EXCLUDES(mutex_);

  /// Coalesced background refresh: at most one pending refresh task per
  /// floor; admissions while one runs schedule exactly one more.
  void schedule_refresh(const FloorKey& key) CM_EXCLUDES(mutex_);

  core::PipelineConfig config_;
  VideoDecoder decoder_;
  DocumentStore store_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  obs::Counter* uploads_completed_ = nullptr;
  obs::Counter* uploads_rejected_ = nullptr;
  obs::Counter* videos_decoded_ = nullptr;
  obs::Counter* decode_failures_ = nullptr;
  obs::Counter* trajectories_extracted_ = nullptr;
  obs::Counter* trajectories_dropped_ = nullptr;
  obs::Counter* sensor_dropouts_ = nullptr;
  obs::Counter* cache_warmstart_rejected_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* extract_seconds_ = nullptr;
  /// Declared before pool_ (and destroyed after it): the pool's queue
  /// observer records into these rings from worker threads until the pool
  /// joins in ~CrowdMapService.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::SloWatchdog> watchdog_;
  /// Declared after store_/flight_ (borrows both) and before pool_: worker
  /// threads journal through it until the pool joins, and its destructor
  /// detaches from the still-live store.
  std::unique_ptr<DurableDocumentStore> durable_;
  /// Service-side chaos plan (decode.fail, extract.sensor_dropout); armed
  /// from config.faults, disarmed (zero-cost) by default.
  common::FaultInjector faults_;

  mutable common::Mutex mutex_;
  // One incremental planner per (building, floor) — each owns that floor's
  // corpus, artifact cache and S2 memo. The mutex and both maps are declared
  // before pool_ (and so destroyed after it joins): extraction/refresh tasks
  // reach planner_for() until the last worker exits — a service torn down
  // with work still queued (the cluster's node-crash fault) must join first.
  std::map<FloorKey, std::unique_ptr<core::IncrementalPlanner>> planners_
      CM_GUARDED_BY(mutex_);
  std::map<FloorKey, bool> refresh_pending_ CM_GUARDED_BY(mutex_);
  common::ThreadPool pool_;
  std::unique_ptr<IngestService> ingest_;
};

}  // namespace crowdmap::cloud

// Chunked upload framing: the mobile front-end zips a dataset and splits it
// into 5 MB chunks for transmission (paper §IV.1). The backend reassembles
// chunks that may arrive out of order, verifying per-chunk checksums.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crowdmap::cloud {

using Blob = std::vector<std::uint8_t>;

/// FNV-1a checksum over a byte range.
[[nodiscard]] std::uint64_t checksum(const Blob& data);

/// One transmission chunk.
struct Chunk {
  std::string upload_id;
  std::uint32_t index = 0;
  std::uint32_t total = 0;
  Blob payload;
  std::uint64_t payload_checksum = 0;
};

inline constexpr std::size_t kDefaultChunkSize = 5 * 1024 * 1024;  // 5 MB

/// Splits a blob into checksummed chunks.
[[nodiscard]] std::vector<Chunk> split_into_chunks(
    const Blob& data, std::string upload_id,
    std::size_t chunk_size = kDefaultChunkSize);

/// Reassembly buffer for one upload. Chunks may arrive in any order; each
/// one is classified on arrival:
///  - kRejected: recoverable per-chunk fault (checksum mismatch, or a
///    duplicate index carrying *different* bytes). The buffer keeps its
///    state so the sender can retransmit the chunk.
///  - kDuplicate: byte-identical re-send of an already-held chunk (network
///    retry); idempotently ignored.
///  - kCorrupt: structural frame damage (zero total, index out of range,
///    conflicting totals across chunks). Terminal — the upload cannot be
///    salvaged by retransmission.
class ChunkAssembler {
 public:
  enum class Status { kPending, kComplete, kCorrupt, kRejected, kDuplicate };

  /// Accepts a chunk and returns its classification (see class comment).
  /// kRejected / kDuplicate refer to THIS chunk only; the buffer state is
  /// whatever status() reports.
  Status accept(const Chunk& chunk);

  /// Overall buffer state: kPending / kComplete / kCorrupt only.
  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] std::size_t received() const noexcept { return received_; }
  [[nodiscard]] std::uint32_t total() const noexcept { return total_; }

  /// Indices not yet received, in ascending order (for retransmit
  /// requests). Empty when complete, corrupt, or before the first chunk.
  [[nodiscard]] std::vector<std::uint32_t> missing_indices() const;

  /// The reassembled blob; only valid once status() == kComplete.
  [[nodiscard]] std::optional<Blob> assemble() const;

 private:
  std::vector<std::optional<Blob>> slots_;
  std::uint32_t total_ = 0;
  std::size_t received_ = 0;
  Status status_ = Status::kPending;
};

}  // namespace crowdmap::cloud

// Chunked upload framing: the mobile front-end zips a dataset and splits it
// into 5 MB chunks for transmission (paper §IV.1). The backend reassembles
// chunks that may arrive out of order, verifying per-chunk checksums.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crowdmap::cloud {

using Blob = std::vector<std::uint8_t>;

/// FNV-1a checksum over a byte range.
[[nodiscard]] std::uint64_t checksum(const Blob& data);

/// One transmission chunk.
struct Chunk {
  std::string upload_id;
  std::uint32_t index = 0;
  std::uint32_t total = 0;
  Blob payload;
  std::uint64_t payload_checksum = 0;
};

inline constexpr std::size_t kDefaultChunkSize = 5 * 1024 * 1024;  // 5 MB

/// Splits a blob into checksummed chunks.
[[nodiscard]] std::vector<Chunk> split_into_chunks(
    const Blob& data, std::string upload_id,
    std::size_t chunk_size = kDefaultChunkSize);

/// Reassembly buffer for one upload.
class ChunkAssembler {
 public:
  enum class Status { kPending, kComplete, kCorrupt };

  /// Accepts a chunk (any order, duplicates tolerated). Returns the status
  /// after accepting: kCorrupt on checksum or frame mismatch.
  Status accept(const Chunk& chunk);

  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] std::size_t received() const noexcept { return received_; }

  /// The reassembled blob; only valid once status() == kComplete.
  [[nodiscard]] std::optional<Blob> assemble() const;

 private:
  std::vector<std::optional<Blob>> slots_;
  std::uint32_t total_ = 0;
  std::size_t received_ = 0;
  Status status_ = Status::kPending;
};

}  // namespace crowdmap::cloud

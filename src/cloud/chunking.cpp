#include "cloud/chunking.hpp"

#include <algorithm>

namespace crowdmap::cloud {

std::uint64_t checksum(const Blob& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<Chunk> split_into_chunks(const Blob& data, std::string upload_id,
                                     std::size_t chunk_size) {
  std::vector<Chunk> chunks;
  if (chunk_size == 0) chunk_size = kDefaultChunkSize;
  const std::size_t total =
      data.empty() ? 1 : (data.size() + chunk_size - 1) / chunk_size;
  chunks.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    Chunk c;
    c.upload_id = upload_id;
    c.index = static_cast<std::uint32_t>(i);
    c.total = static_cast<std::uint32_t>(total);
    const std::size_t begin = i * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, data.size());
    if (begin < data.size()) {
      c.payload.assign(data.begin() + static_cast<long>(begin),
                       data.begin() + static_cast<long>(end));
    }
    c.payload_checksum = checksum(c.payload);
    chunks.push_back(std::move(c));
  }
  return chunks;
}

ChunkAssembler::Status ChunkAssembler::accept(const Chunk& chunk) {
  if (status_ == Status::kCorrupt) return status_;
  // Structural frame damage: the sender's framing itself is broken, so no
  // retransmission can help — latch terminal corruption.
  if (chunk.total == 0 || chunk.index >= chunk.total ||
      (total_ != 0 && chunk.total != total_)) {
    status_ = Status::kCorrupt;
    return status_;
  }
  // Payload damage is a property of this transmission, not the upload:
  // reject the chunk, keep the buffer, and let the sender retransmit.
  if (checksum(chunk.payload) != chunk.payload_checksum) {
    return Status::kRejected;
  }
  if (slots_.empty()) {
    total_ = chunk.total;
    slots_.resize(total_);
  }
  if (slots_[chunk.index]) {
    // Identical re-send (network retry) is idempotent; a different payload
    // under the same index is a conflict we refuse to adjudicate.
    return *slots_[chunk.index] == chunk.payload ? Status::kDuplicate
                                                 : Status::kRejected;
  }
  slots_[chunk.index] = chunk.payload;
  ++received_;
  if (received_ == total_) status_ = Status::kComplete;
  return status_;
}

std::vector<std::uint32_t> ChunkAssembler::missing_indices() const {
  std::vector<std::uint32_t> missing;
  if (status_ != Status::kPending) return missing;
  for (std::uint32_t i = 0; i < total_; ++i) {
    if (!slots_[i]) missing.push_back(i);
  }
  return missing;
}

std::optional<Blob> ChunkAssembler::assemble() const {
  if (status_ != Status::kComplete) return std::nullopt;
  Blob out;
  for (const auto& slot : slots_) {
    out.insert(out.end(), slot->begin(), slot->end());
  }
  return out;
}

}  // namespace crowdmap::cloud

#include "cloud/docstore.hpp"

#include <algorithm>

namespace crowdmap::cloud {

bool DocumentStore::put(Document doc) {
  common::MutexLock lock(mutex_);
  const auto it = docs_.find(doc.id);
  const bool fresh = it == docs_.end();
  if (!fresh) index_remove_locked(it->second);
  floor_index_[{doc.building, doc.floor}].push_back(doc.id);
  docs_[doc.id] = std::move(doc);
  return fresh;
}

std::optional<Document> DocumentStore::get(const std::string& id) const {
  common::MutexLock lock(mutex_);
  const auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

bool DocumentStore::erase(const std::string& id) {
  common::MutexLock lock(mutex_);
  const auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  index_remove_locked(it->second);
  docs_.erase(it);
  return true;
}

void DocumentStore::index_remove_locked(const Document& doc) {
  auto& ids = floor_index_[{doc.building, doc.floor}];
  ids.erase(std::remove(ids.begin(), ids.end(), doc.id), ids.end());
}

std::vector<std::string> DocumentStore::ids_for_floor(const std::string& building,
                                                      int floor) const {
  common::MutexLock lock(mutex_);
  const auto it = floor_index_.find({building, floor});
  return it == floor_index_.end() ? std::vector<std::string>{} : it->second;
}

std::size_t DocumentStore::size() const {
  common::MutexLock lock(mutex_);
  return docs_.size();
}

std::size_t DocumentStore::total_bytes() const {
  common::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, doc] : docs_) n += doc.payload.size();
  return n;
}

void DocumentStore::quarantine(Document doc, const std::string& reason) {
  common::MutexLock lock(mutex_);
  doc.metadata["quarantine_reason"] = reason;
  // A quarantined id leaves the main collection: downstream floor queries
  // must never pick up a document we know to be malformed.
  const auto it = docs_.find(doc.id);
  if (it != docs_.end()) {
    index_remove_locked(it->second);
    docs_.erase(it);
  }
  quarantined_[doc.id] = std::move(doc);
}

std::optional<Document> DocumentStore::get_quarantined(
    const std::string& id) const {
  common::MutexLock lock(mutex_);
  const auto it = quarantined_.find(id);
  if (it == quarantined_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> DocumentStore::quarantined_ids() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(quarantined_.size());
  for (const auto& [id, doc] : quarantined_) ids.push_back(id);
  return ids;
}

std::size_t DocumentStore::quarantined_count() const {
  common::MutexLock lock(mutex_);
  return quarantined_.size();
}

}  // namespace crowdmap::cloud

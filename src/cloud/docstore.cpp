#include "cloud/docstore.hpp"

#include <algorithm>

namespace crowdmap::cloud {

void DocumentStore::set_journal(Journal* journal) {
  common::MutexLock lock(mutex_);
  journal_ = journal;
}

bool DocumentStore::put(Document doc) {
  common::MutexLock lock(mutex_);
  const auto it = docs_.find(doc.id);
  const bool fresh = it == docs_.end();
  if (!fresh) index_remove_locked(it->second);
  floor_index_[{doc.building, doc.floor}].push_back(doc.id);
  Document& stored = docs_[doc.id] = std::move(doc);
  if (journal_ != nullptr) journal_->on_put(stored);
  return fresh;
}

std::optional<Document> DocumentStore::get(const std::string& id) const {
  common::MutexLock lock(mutex_);
  const auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

bool DocumentStore::erase(const std::string& id) {
  common::MutexLock lock(mutex_);
  const auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  index_remove_locked(it->second);
  docs_.erase(it);
  if (journal_ != nullptr) journal_->on_erase(id);
  return true;
}

void DocumentStore::index_remove_locked(const Document& doc) {
  auto& ids = floor_index_[{doc.building, doc.floor}];
  ids.erase(std::remove(ids.begin(), ids.end(), doc.id), ids.end());
}

std::vector<std::string> DocumentStore::ids_for_floor(const std::string& building,
                                                      int floor) const {
  common::MutexLock lock(mutex_);
  const auto it = floor_index_.find({building, floor});
  return it == floor_index_.end() ? std::vector<std::string>{} : it->second;
}

std::size_t DocumentStore::size() const {
  common::MutexLock lock(mutex_);
  return docs_.size();
}

std::size_t DocumentStore::total_bytes() const {
  common::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, doc] : docs_) n += doc.payload.size();
  return n;
}

void DocumentStore::quarantine(Document doc, const std::string& reason) {
  common::MutexLock lock(mutex_);
  doc.metadata["quarantine_reason"] = reason;
  // A quarantined id leaves the main collection: downstream floor queries
  // must never pick up a document we know to be malformed.
  const auto it = docs_.find(doc.id);
  if (it != docs_.end()) {
    index_remove_locked(it->second);
    docs_.erase(it);
  }
  Document& stored = quarantined_[doc.id] = std::move(doc);
  if (journal_ != nullptr) journal_->on_quarantine(stored, reason);
}

std::optional<Document> DocumentStore::get_quarantined(
    const std::string& id) const {
  common::MutexLock lock(mutex_);
  const auto it = quarantined_.find(id);
  if (it == quarantined_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> DocumentStore::quarantined_ids() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(quarantined_.size());
  for (const auto& [id, doc] : quarantined_) ids.push_back(id);
  return ids;
}

std::size_t DocumentStore::quarantined_count() const {
  common::MutexLock lock(mutex_);
  return quarantined_.size();
}

std::vector<Document> DocumentStore::export_documents() const {
  common::MutexLock lock(mutex_);
  std::vector<Document> out;
  out.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) out.push_back(doc);
  return out;
}

std::vector<Document> DocumentStore::export_quarantined() const {
  common::MutexLock lock(mutex_);
  std::vector<Document> out;
  out.reserve(quarantined_.size());
  for (const auto& [id, doc] : quarantined_) out.push_back(doc);
  return out;
}

void DocumentStore::with_exported_state(
    const std::function<void(const std::vector<Document>& docs,
                             const std::vector<Document>& quarantined)>& fn)
    const {
  common::MutexLock lock(mutex_);
  std::vector<Document> docs;
  docs.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) docs.push_back(doc);
  std::vector<Document> quarantined;
  quarantined.reserve(quarantined_.size());
  for (const auto& [id, doc] : quarantined_) quarantined.push_back(doc);
  fn(docs, quarantined);
}

}  // namespace crowdmap::cloud

// In-memory document store — the MongoDB stand-in of the cloud backend
// (paper §IV.2): collections of blob documents with string metadata and a
// secondary index on (building, floor). Thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/chunking.hpp"
#include "common/annotations.hpp"

namespace crowdmap::cloud {

/// A stored document: payload plus queryable metadata.
struct Document {
  std::string id;
  std::string building;
  int floor = 1;
  std::map<std::string, std::string> metadata;
  Blob payload;
};

class DocumentStore {
 public:
  /// Mutation hook for the durable backend (cloud/durable_store.hpp). Each
  /// callback fires under the store's lock, after the in-memory mutation,
  /// so the journal's op order always matches the in-memory outcome under
  /// concurrent writers. Implementations must not call back into the store
  /// (the lock is not recursive) and should be fast — every put/erase/
  /// quarantine pays for the callback inline.
  class Journal {
   public:
    virtual ~Journal() = default;
    virtual void on_put(const Document& doc) = 0;
    virtual void on_erase(const std::string& id) = 0;
    virtual void on_quarantine(const Document& doc,
                               const std::string& reason) = 0;
  };

  /// Attaches (or detaches, with nullptr) the mutation journal. Mutations
  /// already in flight complete under the previous journal.
  void set_journal(Journal* journal) CM_EXCLUDES(mutex_);

  /// Inserts or replaces by document id. Returns true when `doc.id` was not
  /// present (fresh insert) and false when an existing document was
  /// replaced — callers branch on it to distinguish first-time uploads from
  /// re-uploads. Quarantined-id collision: putting an id that currently sits
  /// in the quarantine collection inserts into the main collection (and
  /// returns true, since the *main* collection had no such id) while the
  /// quarantine record stays untouched — a re-upload never expunges the
  /// audit trail, and get()/get_quarantined() then both answer for the id.
  bool put(Document doc) CM_EXCLUDES(mutex_);

  [[nodiscard]] std::optional<Document> get(const std::string& id) const
      CM_EXCLUDES(mutex_);
  bool erase(const std::string& id) CM_EXCLUDES(mutex_);

  /// All document ids for one (building, floor) — the unit CrowdMap
  /// reconstructs.
  [[nodiscard]] std::vector<std::string> ids_for_floor(
      const std::string& building, int floor) const CM_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const CM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t total_bytes() const CM_EXCLUDES(mutex_);

  /// Moves a malformed upload into the quarantine collection instead of
  /// dropping it: operators can audit what the network mangled (the paper's
  /// crowdsourcing premise means bad uploads are signal, not noise). The
  /// reason is recorded under metadata["quarantine_reason"]. Quarantined
  /// documents never appear in get()/ids_for_floor()/size().
  void quarantine(Document doc, const std::string& reason)
      CM_EXCLUDES(mutex_);

  [[nodiscard]] std::optional<Document> get_quarantined(
      const std::string& id) const CM_EXCLUDES(mutex_);
  /// Quarantined document ids in insertion-stable (sorted) order.
  [[nodiscard]] std::vector<std::string> quarantined_ids() const
      CM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t quarantined_count() const CM_EXCLUDES(mutex_);

  /// Snapshot exports for the durable backend's checkpoints: every live
  /// (resp. quarantined) document, in sorted-id order — the deterministic
  /// iteration order the byte-identical snapshot contract needs.
  [[nodiscard]] std::vector<Document> export_documents() const
      CM_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<Document> export_quarantined() const
      CM_EXCLUDES(mutex_);

  /// Runs `fn` over a consistent export of both collections while holding
  /// the store's lock. Every journal append also fires under this lock, so
  /// a caller that persists the exported state before returning observes a
  /// true prefix of the mutation stream: no op record can land between the
  /// export and the persist. The durable backend's checkpoint depends on
  /// exactly this to retire WAL segments without losing a racing append.
  /// `fn` must not call back into the store (the lock is not recursive).
  void with_exported_state(
      const std::function<void(const std::vector<Document>& docs,
                               const std::vector<Document>& quarantined)>& fn)
      const CM_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  Journal* journal_ CM_GUARDED_BY(mutex_) = nullptr;
  std::map<std::string, Document> docs_ CM_GUARDED_BY(mutex_);
  std::map<std::string, Document> quarantined_ CM_GUARDED_BY(mutex_);
  // Secondary index: (building, floor) -> ids.
  std::map<std::pair<std::string, int>, std::vector<std::string>> floor_index_
      CM_GUARDED_BY(mutex_);

  void index_remove_locked(const Document& doc) CM_REQUIRES(mutex_);
};

}  // namespace crowdmap::cloud

// In-memory document store — the MongoDB stand-in of the cloud backend
// (paper §IV.2): collections of blob documents with string metadata and a
// secondary index on (building, floor). Thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/chunking.hpp"
#include "common/annotations.hpp"

namespace crowdmap::cloud {

/// A stored document: payload plus queryable metadata.
struct Document {
  std::string id;
  std::string building;
  int floor = 1;
  std::map<std::string, std::string> metadata;
  Blob payload;
};

class DocumentStore {
 public:
  /// Inserts or replaces by document id. Returns false on replace.
  bool put(Document doc) CM_EXCLUDES(mutex_);

  [[nodiscard]] std::optional<Document> get(const std::string& id) const
      CM_EXCLUDES(mutex_);
  bool erase(const std::string& id) CM_EXCLUDES(mutex_);

  /// All document ids for one (building, floor) — the unit CrowdMap
  /// reconstructs.
  [[nodiscard]] std::vector<std::string> ids_for_floor(
      const std::string& building, int floor) const CM_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const CM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t total_bytes() const CM_EXCLUDES(mutex_);

  /// Moves a malformed upload into the quarantine collection instead of
  /// dropping it: operators can audit what the network mangled (the paper's
  /// crowdsourcing premise means bad uploads are signal, not noise). The
  /// reason is recorded under metadata["quarantine_reason"]. Quarantined
  /// documents never appear in get()/ids_for_floor()/size().
  void quarantine(Document doc, const std::string& reason)
      CM_EXCLUDES(mutex_);

  [[nodiscard]] std::optional<Document> get_quarantined(
      const std::string& id) const CM_EXCLUDES(mutex_);
  /// Quarantined document ids in insertion-stable (sorted) order.
  [[nodiscard]] std::vector<std::string> quarantined_ids() const
      CM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t quarantined_count() const CM_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, Document> docs_ CM_GUARDED_BY(mutex_);
  std::map<std::string, Document> quarantined_ CM_GUARDED_BY(mutex_);
  // Secondary index: (building, floor) -> ids.
  std::map<std::pair<std::string, int>, std::vector<std::string>> floor_index_
      CM_GUARDED_BY(mutex_);

  void index_remove_locked(const Document& doc) CM_REQUIRES(mutex_);
};

}  // namespace crowdmap::cloud

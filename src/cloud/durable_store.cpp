#include "cloud/durable_store.hpp"

#include <utility>

namespace crowdmap::cloud {

namespace {

constexpr std::uint8_t kOpCodecVersion = 1;
constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpErase = 2;
constexpr std::uint8_t kOpQuarantine = 3;
constexpr std::uint32_t kStateVersion = 1;

void encode_document(io::Writer& w, const Document& doc) {
  w.str(doc.id);
  w.str(doc.building);
  w.i32(doc.floor);
  w.u32(static_cast<std::uint32_t>(doc.metadata.size()));
  for (const auto& [key, value] : doc.metadata) {  // std::map: sorted
    w.str(key);
    w.str(value);
  }
  w.u64(doc.payload.size());
  w.bytes_raw(doc.payload);
}

Document decode_document(io::Reader& r) {
  Document doc;
  doc.id = r.str();
  doc.building = r.str();
  doc.floor = r.i32();
  const std::uint32_t n_meta = r.u32();
  io::check_count(n_meta, "document metadata");
  for (std::uint32_t i = 0; i < n_meta; ++i) {
    std::string key = r.str();
    doc.metadata[std::move(key)] = r.str();
  }
  const std::uint64_t n_payload = r.u64();
  io::check_count(n_payload, "document payload");
  doc.payload.reserve(static_cast<std::size_t>(n_payload));
  for (std::uint64_t i = 0; i < n_payload; ++i) doc.payload.push_back(r.u8());
  return doc;
}

}  // namespace

io::Bytes encode_put_op(const Document& doc) {
  io::Writer w;
  w.u8(kOpCodecVersion);
  w.u8(kOpPut);
  encode_document(w, doc);
  return std::move(w).take();
}

io::Bytes encode_erase_op(const std::string& id) {
  io::Writer w;
  w.u8(kOpCodecVersion);
  w.u8(kOpErase);
  w.str(id);
  return std::move(w).take();
}

io::Bytes encode_quarantine_op(const Document& doc, const std::string& reason) {
  io::Writer w;
  w.u8(kOpCodecVersion);
  w.u8(kOpQuarantine);
  encode_document(w, doc);
  w.str(reason);
  return std::move(w).take();
}

io::Bytes encode_store_state(const DocumentStore& store) {
  return encode_store_state(store.export_documents(),
                            store.export_quarantined());
}

io::Bytes encode_store_state(const std::vector<Document>& docs,
                             const std::vector<Document>& quarantined) {
  io::Writer w;
  w.u32(kStateVersion);
  w.u64(docs.size());
  for (const Document& doc : docs) encode_document(w, doc);
  w.u64(quarantined.size());
  for (const Document& doc : quarantined) encode_document(w, doc);
  return std::move(w).take();
}

DurableDocumentStore::DurableDocumentStore(
    DocumentStore& store, storage::Env& env, DurableStoreOptions options,
    std::shared_ptr<obs::MetricsRegistry> registry, obs::FlightRecorder* flight)
    : store_(store),
      log_(env,
           storage::LogStoreOptions{options.dir, options.segment_bytes,
                                    options.snapshot_every, options.fsync},
           std::move(registry), flight) {}

DurableDocumentStore::~DurableDocumentStore() {
  if (attached_) store_.set_journal(nullptr);
}

void DurableDocumentStore::apply_record(const io::Bytes& record) {
  auto applied = io::expected_decode([&] {
    io::Reader r(record);
    if (r.u8() != kOpCodecVersion) throw io::DecodeError("op codec version");
    const std::uint8_t op = r.u8();
    switch (op) {
      case kOpPut: {
        Document doc = decode_document(r);
        if (!r.exhausted()) throw io::DecodeError("put op trailing bytes");
        store_.put(std::move(doc));
        break;
      }
      case kOpErase: {
        const std::string id = r.str();
        if (!r.exhausted()) throw io::DecodeError("erase op trailing bytes");
        store_.erase(id);
        break;
      }
      case kOpQuarantine: {
        Document doc = decode_document(r);
        const std::string reason = r.str();
        if (!r.exhausted()) {
          throw io::DecodeError("quarantine op trailing bytes");
        }
        store_.quarantine(std::move(doc), reason);
        break;
      }
      default:
        throw io::DecodeError("unknown op " + std::to_string(op));
    }
    return true;
  });
  if (!applied) {
    // CRC-valid but undecodable (codec drift): keep the evidence, keep
    // replaying — op records are independent.
    Document evidence;
    evidence.id =
        "sys/wal-damage/replay#" + std::to_string(replay_damage_++);
    evidence.building = kWalDamageBuilding;
    evidence.floor = 0;
    evidence.payload = record;
    store_.quarantine(std::move(evidence), applied.error().message);
  }
}

common::Expected<storage::RecoveryReport> DurableDocumentStore::open_and_recover() {
  auto report_or = log_.open(
      [&](const io::Bytes& state) -> storage::Status {
        auto restored = io::expected_decode([&] {
          io::Reader r(state);
          if (r.u32() != kStateVersion) {
            throw io::DecodeError("state version");
          }
          const std::uint64_t n_docs = r.u64();
          io::check_count(n_docs, "snapshot documents");
          for (std::uint64_t i = 0; i < n_docs; ++i) {
            store_.put(decode_document(r));
          }
          const std::uint64_t n_quarantined = r.u64();
          io::check_count(n_quarantined, "snapshot quarantined");
          for (std::uint64_t i = 0; i < n_quarantined; ++i) {
            Document doc = decode_document(r);
            const std::string reason = doc.metadata.count("quarantine_reason")
                                           ? doc.metadata.at("quarantine_reason")
                                           : "unknown";
            store_.quarantine(std::move(doc), reason);
          }
          if (!r.exhausted()) throw io::DecodeError("state trailing bytes");
          return true;
        });
        if (!restored) {
          return common::make_error("storage.snapshot_corrupt",
                                    restored.error().message);
        }
        return storage::ok_status();
      },
      [&](const io::Bytes& record) { apply_record(record); });
  if (!report_or) return report_or;
  const storage::RecoveryReport& report = report_or.value();

  // Preserve damaged tail records as auditable quarantine documents.
  for (const storage::QuarantinedRecord& damaged : report.quarantined) {
    Document evidence;
    evidence.id = "sys/wal-damage/" + damaged.segment + "#" +
                  std::to_string(damaged.index);
    evidence.building = kWalDamageBuilding;
    evidence.floor = 0;
    evidence.metadata["wal_segment"] = damaged.segment;
    evidence.payload = damaged.bytes;
    store_.quarantine(std::move(evidence), damaged.reason);
  }

  recovered_ = true;
  recovery_snapshot_loaded_ = report.snapshot_loaded;
  recovery_records_replayed_ = report.records_replayed;
  recovery_truncated_records_ = report.truncated_records();

  // A dirty recovery checkpoints before any new mutation: the truncated
  // segment is retired so its damage can never be re-read, and the damage
  // evidence itself becomes durable.
  if (!report.quarantined.empty() || replay_damage_ != 0) {
    if (storage::Status s = checkpoint(); !s) return s.error();
  }

  store_.set_journal(this);
  attached_ = true;
  return report_or;
}

storage::Status DurableDocumentStore::checkpoint() {
  // store lock -> log lock, matching the journal append path: no op record
  // can slip between the state export and the segment retirement.
  storage::Status status = storage::ok_status();
  store_.with_exported_state(
      [&](const std::vector<Document>& docs,
          const std::vector<Document>& quarantined) {
        status = log_.checkpoint(encode_store_state(docs, quarantined));
      });
  return status;
}

void DurableDocumentStore::maybe_checkpoint() {
  if (log_.checkpoint_due()) checkpoint();
}

DurabilityStats DurableDocumentStore::stats() const {
  const storage::LogStructuredStore::Stats log_stats = log_.stats();
  DurabilityStats out;
  out.enabled = true;
  out.recovered = recovered_;
  out.healthy = log_stats.healthy;
  out.wal_appends = log_stats.appends;
  out.wal_append_failures = log_stats.append_failures;
  out.wal_bytes = log_stats.bytes_appended;
  out.segments_created = log_stats.segments_created;
  out.live_segments = log_stats.live_segments;
  out.checkpoints = log_stats.checkpoints;
  out.recovery_snapshot_loaded = recovery_snapshot_loaded_;
  out.recovery_records_replayed = recovery_records_replayed_;
  out.recovery_truncated_records = recovery_truncated_records_;
  return out;
}

void DurableDocumentStore::on_put(const Document& doc) {
  log_.append(encode_put_op(doc));
}

void DurableDocumentStore::on_erase(const std::string& id) {
  log_.append(encode_erase_op(id));
}

void DurableDocumentStore::on_quarantine(const Document& doc,
                                         const std::string& reason) {
  log_.append(encode_quarantine_op(doc, reason));
}

}  // namespace crowdmap::cloud

// Upload ingestion: the Tornado/WebSocket front door of the cloud backend
// (paper §IV.2). Tracks concurrent chunked upload sessions, validates them,
// and lands completed datasets in the document store.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "cloud/chunking.hpp"
#include "cloud/docstore.hpp"
#include "common/annotations.hpp"

namespace crowdmap::cloud {

/// Outcome of one chunk delivery.
enum class IngestStatus { kAccepted, kUploadComplete, kRejected };

struct IngestStats {
  std::size_t sessions_opened = 0;
  std::size_t uploads_completed = 0;
  std::size_t uploads_rejected = 0;
  std::size_t chunks_received = 0;
  std::size_t bytes_received = 0;
};

/// Chunked-upload ingestion service. Thread-safe; multiple simulated users
/// may interleave chunk deliveries.
class IngestService {
 public:
  /// `on_complete` fires once per successfully reassembled upload with its
  /// metadata-bearing document already persisted in `store`.
  IngestService(DocumentStore& store,
                std::function<void(const Document&)> on_complete = {});

  /// Declares an upload session with its Task-1 geo-spatial annotation.
  void open_session(const std::string& upload_id, const std::string& building,
                    int floor) CM_EXCLUDES(mutex_);

  /// Delivers one chunk; sessions not opened first are rejected. The session
  /// lock is released before the store write and the completion callback, so
  /// mutex_ never nests around the DocumentStore or service locks.
  IngestStatus deliver(const Chunk& chunk) CM_EXCLUDES(mutex_);

  [[nodiscard]] IngestStats stats() const CM_EXCLUDES(mutex_);

 private:
  struct Session {
    std::string building;
    int floor = 1;
    ChunkAssembler assembler;
  };

  DocumentStore& store_;
  std::function<void(const Document&)> on_complete_;
  mutable common::Mutex mutex_;
  std::map<std::string, Session> sessions_ CM_GUARDED_BY(mutex_);
  IngestStats stats_ CM_GUARDED_BY(mutex_);
};

}  // namespace crowdmap::cloud

// Upload ingestion: the Tornado/WebSocket front door of the cloud backend
// (paper §IV.2). Tracks concurrent chunked upload sessions, validates them,
// and lands completed datasets in the document store.
//
// The front door assumes a hostile network: per-chunk checksums, duplicate
// idempotency and out-of-order reassembly live in ChunkAssembler; this layer
// adds the session lifecycle — bounded retransmit with logical-clock
// timeouts, expiry of stalled sessions, and quarantine (not silent drop) of
// anything malformed, so operators can audit what the crowd actually sent.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/chunking.hpp"
#include "cloud/docstore.hpp"
#include "common/annotations.hpp"
#include "common/fault.hpp"
#include "obs/metrics.hpp"

namespace crowdmap::obs {
class FlightRecorder;
}  // namespace crowdmap::obs

namespace crowdmap::cloud {

/// Outcome of one chunk delivery.
enum class IngestStatus { kAccepted, kUploadComplete, kRejected };

/// Session lifecycle policy. Time is the service's logical clock (one tick
/// per delivered chunk), never the wall clock, so expiry is deterministic.
struct IngestConfig {
  /// Ticks of inactivity after which a pending session is expired and its
  /// partial upload quarantined.
  std::uint64_t session_timeout_ticks = 4096;
  /// missing_chunks() calls allowed per session before it is expired —
  /// bounds how long a sender can keep retransmitting.
  std::uint32_t max_retransmit_rounds = 3;
};

/// Snapshot of the ingest counters. A view over the MetricsRegistry — the
/// same numbers the Prometheus export reports.
struct IngestStats {
  std::size_t sessions_opened = 0;
  std::size_t uploads_completed = 0;
  std::size_t uploads_rejected = 0;
  std::size_t chunks_received = 0;
  std::size_t bytes_received = 0;
  std::size_t chunks_duplicate = 0;    // idempotently ignored re-sends
  std::size_t chunks_rejected = 0;     // checksum/conflict rejects (retryable)
  std::size_t unknown_session = 0;     // chunks for never-opened sessions
  std::size_t sessions_expired = 0;    // timeout or retransmit budget spent
  std::size_t uploads_quarantined = 0; // malformed uploads kept for audit
  std::size_t retransmit_requests = 0; // missing_chunks() rounds served
};

/// Chunked-upload ingestion service. Thread-safe; multiple simulated users
/// may interleave chunk deliveries.
class IngestService {
 public:
  /// `on_complete` fires once per successfully reassembled upload with its
  /// metadata-bearing document already persisted in `store`. `registry`
  /// defaults to a fresh one; pass the service registry to share exporters.
  IngestService(DocumentStore& store,
                std::function<void(const Document&)> on_complete = {},
                IngestConfig config = {},
                std::shared_ptr<obs::MetricsRegistry> registry = nullptr);

  /// Declares an upload session with its Task-1 geo-spatial annotation.
  void open_session(const std::string& upload_id, const std::string& building,
                    int floor) CM_EXCLUDES(mutex_);

  /// Delivers one chunk; advances the logical clock and sweeps expired
  /// sessions first. Sessions not opened first are rejected (warn-logged
  /// and counted under unknown_session). A checksum-damaged chunk is
  /// rejected but the session survives for retransmission; structurally
  /// corrupt framing quarantines the upload. The session lock is released
  /// before store writes and the completion callback, so mutex_ never nests
  /// around the DocumentStore or service locks.
  IngestStatus deliver(const Chunk& chunk) CM_EXCLUDES(mutex_);

  /// Chunk indices the session still needs, for a retransmit round. Each
  /// call consumes one round of the session's retransmit budget and
  /// refreshes its activity time; a session that exhausts the budget is
  /// expired (quarantined) and reports empty. Unknown/complete sessions
  /// report empty.
  [[nodiscard]] std::vector<std::uint32_t> missing_chunks(
      const std::string& upload_id) CM_EXCLUDES(mutex_);

  /// Current logical time (ticks == chunks delivered so far).
  [[nodiscard]] std::uint64_t logical_now() const noexcept {
    return clock_.now();
  }

  /// Pending (opened, not yet completed/expired) session count.
  [[nodiscard]] std::size_t pending_sessions() const CM_EXCLUDES(mutex_);

  [[nodiscard]] IngestStats stats() const;

  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics_registry()
      const noexcept {
    return registry_;
  }

  /// Lends a flight recorder (not owned; may be nullptr). Retransmit rounds,
  /// quarantines and per-chunk logical ticks land in its rings.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

 private:
  struct Session {
    std::string building;
    int floor = 1;
    ChunkAssembler assembler;
    std::uint64_t last_activity = 0;
    std::uint32_t retransmit_rounds = 0;
  };

  /// Expires sessions idle past the timeout. Returns the quarantine
  /// documents to write once the lock is dropped.
  [[nodiscard]] std::vector<Document> sweep_expired_locked(std::uint64_t now)
      CM_REQUIRES(mutex_);
  /// Builds the audit document for a failed session.
  [[nodiscard]] static Document quarantine_doc(const std::string& upload_id,
                                               const Session& session);

  DocumentStore& store_;
  std::function<void(const Document&)> on_complete_;
  IngestConfig config_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  obs::Counter* sessions_opened_ = nullptr;
  obs::Counter* uploads_completed_ = nullptr;
  obs::Counter* uploads_rejected_ = nullptr;
  obs::Counter* chunks_received_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  obs::Counter* chunks_duplicate_ = nullptr;
  obs::Counter* chunks_rejected_ = nullptr;
  obs::Counter* unknown_session_ = nullptr;
  obs::Counter* sessions_expired_ = nullptr;
  obs::Counter* uploads_quarantined_ = nullptr;
  obs::Counter* retransmit_requests_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  common::LogicalClock clock_;
  mutable common::Mutex mutex_;
  std::map<std::string, Session> sessions_ CM_GUARDED_BY(mutex_);
};

}  // namespace crowdmap::cloud

// Durable backend for the DocumentStore: a DocumentStore::Journal that
// mirrors every put/erase/quarantine into a storage::LogStructuredStore as
// versioned CMWL op records, and on startup replays snapshot + log back
// into the in-memory store. The op codec lives here — with the Document
// type — not in storage/, the same codec-beside-its-type split the io layer
// documents (storage stays domain-agnostic; docs/DURABILITY.md).
//
// Recovery contract: open_and_recover() never throws. Damaged WAL tail
// records are truncated and preserved as quarantined audit documents
// (ids "sys/wal-damage/<segment>#<frame>", building "sys:crowdmap"), the
// truncation is counted in crowdmap_recovery_truncated_records_total, and a
// dirty recovery checkpoints immediately so the damaged segment is retired
// before any new mutation is journaled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cloud/docstore.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "storage/log_store.hpp"

namespace crowdmap::cloud {

/// Mirror of core::StorageConfig (kept dependency-free of core).
struct DurableStoreOptions {
  std::string dir;
  std::size_t segment_bytes = std::size_t{4} << 20;
  std::size_t snapshot_every = 0;  // appends between auto-checkpoints
  bool fsync = true;
};

/// Durability facts for ServiceStats / the api::v1 surface.
struct DurabilityStats {
  bool enabled = false;
  bool recovered = false;  // open_and_recover() completed
  bool healthy = false;    // backing log still accepts appends
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_append_failures = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t live_segments = 0;
  std::uint64_t checkpoints = 0;
  bool recovery_snapshot_loaded = false;
  std::uint64_t recovery_records_replayed = 0;
  std::uint64_t recovery_truncated_records = 0;
};

/// Building that owns WAL-damage quarantine documents (the service's
/// reserved system building; kept literal here to avoid a cloud-internal
/// include cycle with service.hpp).
inline constexpr char kWalDamageBuilding[] = "sys:crowdmap";

// -------- CMWL op codec (version 1) --------
// record payload := u8 codec_version, u8 op, body
//   op 1 (put):        document
//   op 2 (erase):      str id
//   op 3 (quarantine): document, str reason
// document := str id, str building, i32 floor,
//             u32 n_metadata, (str key, str value)*,   -- sorted by key
//             u64 payload_len, raw payload bytes
// Snapshot state := u32 state_version(1),
//                   u64 n_docs, document*,             -- sorted by id
//                   u64 n_quarantined, document*       -- sorted by id

[[nodiscard]] io::Bytes encode_put_op(const Document& doc);
[[nodiscard]] io::Bytes encode_erase_op(const std::string& id);
[[nodiscard]] io::Bytes encode_quarantine_op(const Document& doc,
                                             const std::string& reason);

/// Serializes full store state (docs + quarantine) for checkpoints. Byte-
/// deterministic: sorted iteration, little-endian fields.
[[nodiscard]] io::Bytes encode_store_state(const DocumentStore& store);
[[nodiscard]] io::Bytes encode_store_state(
    const std::vector<Document>& docs,
    const std::vector<Document>& quarantined);

class DurableDocumentStore final : public DocumentStore::Journal {
 public:
  /// `store` and `env` are borrowed and must outlive this object.
  DurableDocumentStore(DocumentStore& store, storage::Env& env,
                       DurableStoreOptions options,
                       std::shared_ptr<obs::MetricsRegistry> registry = nullptr,
                       obs::FlightRecorder* flight = nullptr);
  ~DurableDocumentStore() override;

  DurableDocumentStore(const DurableDocumentStore&) = delete;
  DurableDocumentStore& operator=(const DurableDocumentStore&) = delete;

  /// Opens the backing log and replays snapshot + ops into the store with
  /// journaling suspended, quarantines damaged tail records as audit
  /// documents, checkpoints if the recovery was dirty, then attaches as the
  /// store's journal. Call once, before concurrent use of the store.
  common::Expected<storage::RecoveryReport> open_and_recover();

  /// Snapshot + compaction now. Exports store state and installs the
  /// snapshot while holding the store's lock (store lock -> log lock, the
  /// same order every journal append uses), so a racing put can never land
  /// an op record in a segment this checkpoint retires. Safe to call from
  /// request or worker threads; must not be called from inside a journal
  /// callback (the store's lock is already held there).
  storage::Status checkpoint();

  /// checkpoint() when storage.snapshot_every appends have accumulated
  /// since the last one. The service calls this at upload completion —
  /// never from inside the journal callbacks (the store's lock is held
  /// there, and checkpoint() re-enters the store to export state).
  void maybe_checkpoint();

  [[nodiscard]] DurabilityStats stats() const;

  // DocumentStore::Journal (invoked under the store's lock — append only,
  // no store re-entry).
  void on_put(const Document& doc) override;
  void on_erase(const std::string& id) override;
  void on_quarantine(const Document& doc, const std::string& reason) override;

 private:
  /// Applies one replayed op record to the store. Undecodable-but-CRC-valid
  /// records (codec drift) are quarantined as audit documents, not fatal.
  void apply_record(const io::Bytes& record);

  DocumentStore& store_;
  storage::LogStructuredStore log_;
  bool attached_ = false;
  // Recovery summary; written once by open_and_recover() before the store
  // is shared, read-only afterwards.
  bool recovered_ = false;
  bool recovery_snapshot_loaded_ = false;
  std::uint64_t recovery_records_replayed_ = 0;
  std::uint64_t recovery_truncated_records_ = 0;
  std::uint64_t replay_damage_ = 0;  // undecodable replayed records
};

}  // namespace crowdmap::cloud

#include "cloud/ingest.hpp"

#include "common/log.hpp"
#include "obs/flight.hpp"

namespace crowdmap::cloud {

IngestService::IngestService(DocumentStore& store,
                             std::function<void(const Document&)> on_complete,
                             IngestConfig config,
                             std::shared_ptr<obs::MetricsRegistry> registry)
    : store_(store),
      on_complete_(std::move(on_complete)),
      config_(config),
      registry_(registry ? std::move(registry)
                         : std::make_shared<obs::MetricsRegistry>()) {
  sessions_opened_ = &registry_->counter("crowdmap_ingest_sessions_opened_total",
                                         {}, "Upload sessions opened");
  uploads_completed_ = &registry_->counter(
      "crowdmap_ingest_uploads_completed_total", {},
      "Uploads fully reassembled and persisted");
  uploads_rejected_ = &registry_->counter(
      "crowdmap_ingest_uploads_rejected_total", {},
      "Chunk deliveries rejected by ingestion");
  chunks_received_ = &registry_->counter("crowdmap_ingest_chunks_total", {},
                                         "Chunks delivered to known sessions");
  bytes_received_ = &registry_->counter("crowdmap_ingest_bytes_total", {},
                                        "Payload bytes delivered");
  chunks_duplicate_ = &registry_->counter(
      "crowdmap_ingest_chunks_duplicate_total", {},
      "Byte-identical chunk re-sends idempotently ignored");
  chunks_rejected_ = &registry_->counter(
      "crowdmap_ingest_chunks_rejected_total", {},
      "Chunks rejected for checksum mismatch or payload conflict");
  unknown_session_ = &registry_->counter(
      "crowdmap_ingest_unknown_session_total", {},
      "Chunks addressed to sessions never opened");
  sessions_expired_ = &registry_->counter(
      "crowdmap_ingest_sessions_expired_total", {},
      "Sessions expired by timeout or retransmit budget");
  uploads_quarantined_ = &registry_->counter(
      "crowdmap_ingest_uploads_quarantined_total", {},
      "Malformed uploads moved to the quarantine collection");
  retransmit_requests_ = &registry_->counter(
      "crowdmap_ingest_retransmit_requests_total", {},
      "missing_chunks retransmit rounds served");
}

void IngestService::open_session(const std::string& upload_id,
                                 const std::string& building, int floor) {
  {
    common::MutexLock lock(mutex_);
    Session session;
    session.building = building;
    session.floor = floor;
    session.last_activity = clock_.now();
    sessions_[upload_id] = std::move(session);
  }
  sessions_opened_->increment();
}

Document IngestService::quarantine_doc(const std::string& upload_id,
                                       const Session& session) {
  Document doc;
  doc.id = upload_id;
  doc.building = session.building;
  doc.floor = session.floor;
  doc.metadata["chunks_received"] =
      std::to_string(session.assembler.received());
  doc.metadata["chunks_total"] = std::to_string(session.assembler.total());
  return doc;
}

std::vector<Document> IngestService::sweep_expired_locked(std::uint64_t now) {
  std::vector<Document> expired;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const Session& session = it->second;
    if (now - session.last_activity > config_.session_timeout_ticks) {
      CROWDMAP_LOG(kWarn, "ingest")
          << "session " << it->first << " expired after "
          << (now - session.last_activity) << " idle ticks ("
          << session.assembler.received() << "/" << session.assembler.total()
          << " chunks)";
      expired.push_back(quarantine_doc(it->first, session));
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

IngestStatus IngestService::deliver(const Chunk& chunk) {
  const std::uint64_t now = clock_.advance();
  // One flight tick per delivered chunk mirrors the ingest logical clock, so
  // dump ordering lines up with session-expiry reasoning in a post-mortem.
  if (flight_ != nullptr) flight_->advance_tick();
  Document completed;
  bool fire = false;
  bool corrupt = false;
  Document corrupted;
  std::vector<Document> expired;
  IngestStatus result = IngestStatus::kAccepted;
  {
    common::MutexLock lock(mutex_);
    expired = sweep_expired_locked(now);
    const auto it = sessions_.find(chunk.upload_id);
    if (it == sessions_.end()) {
      CROWDMAP_LOG(kWarn, "ingest")
          << "chunk for unknown session " << chunk.upload_id
          << " (index " << chunk.index << "); was open_session skipped?";
      unknown_session_->increment();
      uploads_rejected_->increment();
      result = IngestStatus::kRejected;
    } else {
      chunks_received_->increment();
      bytes_received_->increment(chunk.payload.size());
      it->second.last_activity = now;
      switch (it->second.assembler.accept(chunk)) {
        case ChunkAssembler::Status::kCorrupt:
          // Structural framing damage: unsalvageable; keep it for audit.
          corrupted = quarantine_doc(it->first, it->second);
          corrupt = true;
          sessions_.erase(it);
          uploads_rejected_->increment();
          result = IngestStatus::kRejected;
          break;
        case ChunkAssembler::Status::kRejected:
          // Damaged in flight — the session survives for retransmission.
          chunks_rejected_->increment();
          result = IngestStatus::kRejected;
          break;
        case ChunkAssembler::Status::kDuplicate:
          chunks_duplicate_->increment();
          result = IngestStatus::kAccepted;
          break;
        case ChunkAssembler::Status::kPending:
          result = IngestStatus::kAccepted;
          break;
        case ChunkAssembler::Status::kComplete:
          completed.id = chunk.upload_id;
          completed.building = it->second.building;
          completed.floor = it->second.floor;
          completed.payload = *it->second.assembler.assemble();
          sessions_.erase(it);
          fire = true;
          result = IngestStatus::kUploadComplete;
          break;
      }
    }
  }
  for (auto& doc : expired) {
    sessions_expired_->increment();
    uploads_quarantined_->increment();
    if (flight_ != nullptr) {
      flight_->record_named(obs::FlightEventKind::kIngestQuarantine, 0, doc.id,
                            flight_->intern("session_expired"));
    }
    store_.quarantine(std::move(doc), "session_expired");
  }
  if (corrupt) {
    uploads_quarantined_->increment();
    if (flight_ != nullptr) {
      flight_->record_named(obs::FlightEventKind::kIngestQuarantine, 0,
                            corrupted.id,
                            flight_->intern("structural_corruption"));
    }
    store_.quarantine(std::move(corrupted), "structural_corruption");
  }
  if (fire) {
    uploads_completed_->increment();
    store_.put(completed);
    if (on_complete_) on_complete_(completed);
  }
  return result;
}

std::vector<std::uint32_t> IngestService::missing_chunks(
    const std::string& upload_id) {
  std::vector<std::uint32_t> missing;
  Document exhausted;
  bool expire = false;
  {
    common::MutexLock lock(mutex_);
    const auto it = sessions_.find(upload_id);
    if (it == sessions_.end()) return missing;
    Session& session = it->second;
    if (session.retransmit_rounds >= config_.max_retransmit_rounds) {
      CROWDMAP_LOG(kWarn, "ingest")
          << "session " << upload_id << " exhausted its "
          << config_.max_retransmit_rounds << " retransmit rounds";
      exhausted = quarantine_doc(upload_id, session);
      sessions_.erase(it);
      expire = true;
    } else {
      ++session.retransmit_rounds;
      session.last_activity = clock_.now();
      missing = session.assembler.missing_indices();
    }
  }
  if (expire) {
    sessions_expired_->increment();
    uploads_quarantined_->increment();
    if (flight_ != nullptr) {
      flight_->record_named(obs::FlightEventKind::kIngestQuarantine, 0,
                            exhausted.id,
                            flight_->intern("retransmit_budget_exhausted"));
    }
    store_.quarantine(std::move(exhausted), "retransmit_budget_exhausted");
  } else {
    retransmit_requests_->increment();
    if (flight_ != nullptr) {
      flight_->record_named(obs::FlightEventKind::kIngestRetransmit, 0,
                            upload_id, missing.size());
    }
  }
  return missing;
}

std::size_t IngestService::pending_sessions() const {
  common::MutexLock lock(mutex_);
  return sessions_.size();
}

IngestStats IngestService::stats() const {
  IngestStats out;
  out.sessions_opened = sessions_opened_->value();
  out.uploads_completed = uploads_completed_->value();
  out.uploads_rejected = uploads_rejected_->value();
  out.chunks_received = chunks_received_->value();
  out.bytes_received = bytes_received_->value();
  out.chunks_duplicate = chunks_duplicate_->value();
  out.chunks_rejected = chunks_rejected_->value();
  out.unknown_session = unknown_session_->value();
  out.sessions_expired = sessions_expired_->value();
  out.uploads_quarantined = uploads_quarantined_->value();
  out.retransmit_requests = retransmit_requests_->value();
  return out;
}

}  // namespace crowdmap::cloud

#include "cloud/ingest.hpp"

namespace crowdmap::cloud {

IngestService::IngestService(DocumentStore& store,
                             std::function<void(const Document&)> on_complete)
    : store_(store), on_complete_(std::move(on_complete)) {}

void IngestService::open_session(const std::string& upload_id,
                                 const std::string& building, int floor) {
  common::MutexLock lock(mutex_);
  Session session;
  session.building = building;
  session.floor = floor;
  sessions_[upload_id] = std::move(session);
  ++stats_.sessions_opened;
}

IngestStatus IngestService::deliver(const Chunk& chunk) {
  Document completed;
  bool fire = false;
  {
    common::MutexLock lock(mutex_);
    const auto it = sessions_.find(chunk.upload_id);
    if (it == sessions_.end()) {
      ++stats_.uploads_rejected;
      return IngestStatus::kRejected;
    }
    ++stats_.chunks_received;
    stats_.bytes_received += chunk.payload.size();
    const auto status = it->second.assembler.accept(chunk);
    if (status == ChunkAssembler::Status::kCorrupt) {
      sessions_.erase(it);
      ++stats_.uploads_rejected;
      return IngestStatus::kRejected;
    }
    if (status != ChunkAssembler::Status::kComplete) {
      return IngestStatus::kAccepted;
    }
    completed.id = chunk.upload_id;
    completed.building = it->second.building;
    completed.floor = it->second.floor;
    completed.payload = *it->second.assembler.assemble();
    sessions_.erase(it);
    ++stats_.uploads_completed;
    fire = true;
  }
  store_.put(completed);
  if (fire && on_complete_) on_complete_(completed);
  return IngestStatus::kUploadComplete;
}

IngestStats IngestService::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace crowdmap::cloud

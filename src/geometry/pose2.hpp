// SE(2) rigid transform: camera/user pose on the floor (position + heading).
#pragma once

#include "common/mathutil.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Rigid 2D transform / pose. `theta` is radians CCW from +x.
struct Pose2 {
  Vec2 position;
  double theta = 0.0;

  constexpr Pose2() = default;
  constexpr Pose2(Vec2 p, double th) : position(p), theta(th) {}
  Pose2(double x, double y, double th) : position(x, y), theta(th) {}

  /// Applies this transform to a point expressed in the local frame.
  [[nodiscard]] Vec2 apply(Vec2 local) const noexcept {
    return position + local.rotated(theta);
  }

  /// Composition: (this ∘ other), i.e. other expressed in this frame.
  [[nodiscard]] Pose2 compose(const Pose2& other) const noexcept {
    return {apply(other.position), common::wrap_angle(theta + other.theta)};
  }

  /// Inverse transform.
  [[nodiscard]] Pose2 inverse() const noexcept {
    const Vec2 p = (-position).rotated(-theta);
    return {p, common::wrap_angle(-theta)};
  }

  /// Relative pose taking this to other: this.compose(result) == other.
  [[nodiscard]] Pose2 between(const Pose2& other) const noexcept {
    return inverse().compose(other);
  }

  /// Forward unit direction.
  [[nodiscard]] Vec2 forward() const noexcept { return Vec2::from_angle(theta); }
};

}  // namespace crowdmap::geometry

#include "geometry/raster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crowdmap::geometry {

BoolRaster::BoolRaster(Aabb extent, double cell_size)
    : extent_(extent), cell_size_(cell_size) {
  if (cell_size <= 0) throw std::invalid_argument("cell_size must be positive");
  width_ = std::max(1, static_cast<int>(std::ceil(extent.width() / cell_size)));
  height_ = std::max(1, static_cast<int>(std::ceil(extent.height() / cell_size)));
  data_.assign(static_cast<std::size_t>(width_) * height_, 0);
}

bool BoolRaster::at(int col, int row) const {
  if (!in_bounds(col, row)) throw std::out_of_range("BoolRaster::at");
  return data_[static_cast<std::size_t>(row) * width_ + col] != 0;
}

void BoolRaster::set(int col, int row, bool value) {
  if (!in_bounds(col, row)) return;
  data_[static_cast<std::size_t>(row) * width_ + col] = value ? 1 : 0;
}

Vec2 BoolRaster::cell_center(int col, int row) const noexcept {
  return {extent_.min.x + (col + 0.5) * cell_size_,
          extent_.min.y + (row + 0.5) * cell_size_};
}

std::pair<int, int> BoolRaster::cell_of(Vec2 p) const noexcept {
  return {static_cast<int>(std::floor((p.x - extent_.min.x) / cell_size_)),
          static_cast<int>(std::floor((p.y - extent_.min.y) / cell_size_))};
}

void BoolRaster::fill_polygon(const Polygon& poly) {
  if (poly.empty()) return;
  const Aabb box = poly.bounding_box();
  auto [c0, r0] = cell_of(box.min);
  auto [c1, r1] = cell_of(box.max);
  c0 = std::max(c0, 0);
  r0 = std::max(r0, 0);
  c1 = std::min(c1, width_ - 1);
  r1 = std::min(r1, height_ - 1);
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      if (poly.contains(cell_center(c, r))) set(c, r, true);
    }
  }
}

void BoolRaster::draw_segment(const Segment& seg, double thickness) {
  const double step = cell_size_ * 0.5;
  const double len = seg.length();
  const int n = std::max(1, static_cast<int>(std::ceil(len / step)));
  const int radius_cells =
      std::max(0, static_cast<int>(std::ceil(thickness / 2.0 / cell_size_)));
  for (int i = 0; i <= n; ++i) {
    const Vec2 p = seg.at(static_cast<double>(i) / n);
    auto [c, r] = cell_of(p);
    for (int dr = -radius_cells; dr <= radius_cells; ++dr) {
      for (int dc = -radius_cells; dc <= radius_cells; ++dc) {
        if (!in_bounds(c + dc, r + dr)) continue;
        if (cell_center(c + dc, r + dr).distance_to(p) <= thickness / 2.0 + 1e-9) {
          set(c + dc, r + dr, true);
        }
      }
    }
    if (radius_cells == 0) set(c, r, true);
  }
}

std::size_t BoolRaster::count_set() const noexcept {
  std::size_t n = 0;
  for (const auto v : data_) n += (v != 0);
  return n;
}

double BoolRaster::set_area() const noexcept {
  return static_cast<double>(count_set()) * cell_size_ * cell_size_;
}

BoolRaster BoolRaster::shifted(int dcol, int drow) const {
  BoolRaster out(extent_, cell_size_);
  for (int r = 0; r < height_; ++r) {
    for (int c = 0; c < width_; ++c) {
      if (at(c, r)) out.set(c + dcol, r + drow, true);
    }
  }
  return out;
}

OverlapMetrics overlap_metrics(const BoolRaster& generated, const BoolRaster& truth) {
  if (generated.width() != truth.width() || generated.height() != truth.height()) {
    throw std::invalid_argument("overlap_metrics: raster size mismatch");
  }
  std::size_t inter = 0;
  std::size_t gen = 0;
  std::size_t tru = 0;
  const auto& gd = generated.data();
  const auto& td = truth.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    const bool g = gd[i] != 0;
    const bool t = td[i] != 0;
    inter += (g && t);
    gen += g;
    tru += t;
  }
  OverlapMetrics m;
  m.intersection_cells = static_cast<double>(inter);
  m.precision = gen == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(gen);
  m.recall = tru == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(tru);
  m.f_measure = (m.precision + m.recall) > 0
                    ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
                    : 0.0;
  return m;
}

OverlapMetrics best_aligned_overlap(const BoolRaster& generated,
                                    const BoolRaster& truth, int max_shift_cells) {
  OverlapMetrics best = overlap_metrics(generated, truth);
  // Coarse-to-fine: scan a stride-2 grid first, then refine around the peak.
  int best_dc = 0;
  int best_dr = 0;
  for (int dr = -max_shift_cells; dr <= max_shift_cells; dr += 2) {
    for (int dc = -max_shift_cells; dc <= max_shift_cells; dc += 2) {
      if (dc == 0 && dr == 0) continue;
      const auto m = overlap_metrics(generated.shifted(dc, dr), truth);
      if (m.f_measure > best.f_measure) {
        best = m;
        best_dc = dc;
        best_dr = dr;
      }
    }
  }
  for (int dr = best_dr - 1; dr <= best_dr + 1; ++dr) {
    for (int dc = best_dc - 1; dc <= best_dc + 1; ++dc) {
      const auto m = overlap_metrics(generated.shifted(dc, dr), truth);
      if (m.f_measure > best.f_measure) best = m;
    }
  }
  return best;
}

}  // namespace crowdmap::geometry

// Boolean raster over a metric extent: polygon rasterization and the
// overlap metrics used for hallway-shape evaluation (Table I).
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Boolean occupancy raster covering a metric AABB at fixed cell size.
class BoolRaster {
 public:
  /// Default: a trivial 1x1 unit raster (placeholder for late assignment).
  BoolRaster() : BoolRaster(Aabb{{0, 0}, {1, 1}}, 1.0) {}
  BoolRaster(Aabb extent, double cell_size);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }
  [[nodiscard]] const Aabb& extent() const noexcept { return extent_; }

  [[nodiscard]] bool at(int col, int row) const;
  void set(int col, int row, bool value);
  [[nodiscard]] bool in_bounds(int col, int row) const noexcept {
    return col >= 0 && col < width_ && row >= 0 && row < height_;
  }

  /// Metric center of a cell.
  [[nodiscard]] Vec2 cell_center(int col, int row) const noexcept;
  /// Cell containing a metric point (may be out of bounds).
  [[nodiscard]] std::pair<int, int> cell_of(Vec2 p) const noexcept;

  /// Marks all cells whose center lies in the polygon.
  void fill_polygon(const Polygon& poly);
  /// Marks cells along the segment with a metric thickness.
  void draw_segment(const Segment& seg, double thickness);

  [[nodiscard]] std::size_t count_set() const noexcept;
  /// Metric area of set cells.
  [[nodiscard]] double set_area() const noexcept;

  /// Translated copy by an integer number of cells (cells shifted outside
  /// the extent are dropped).
  [[nodiscard]] BoolRaster shifted(int dcol, int drow) const;

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<std::uint8_t>& data() noexcept { return data_; }

 private:
  Aabb extent_;
  double cell_size_;
  int width_;
  int height_;
  std::vector<std::uint8_t> data_;
};

/// Precision/recall/F1 of `generated` against `truth`, the paper's hallway
/// metrics (eq. 3–5): P = |gen ∩ true| / |gen|, R = |gen ∩ true| / |true|.
struct OverlapMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  double intersection_cells = 0.0;
};
[[nodiscard]] OverlapMetrics overlap_metrics(const BoolRaster& generated,
                                             const BoolRaster& truth);

/// Searches integer-cell translations within +/- `max_shift_cells` for the
/// alignment maximizing intersection (the paper overlays reconstructions on
/// ground truth "to achieve maximum cover area"), then reports metrics.
[[nodiscard]] OverlapMetrics best_aligned_overlap(const BoolRaster& generated,
                                                  const BoolRaster& truth,
                                                  int max_shift_cells = 10);

}  // namespace crowdmap::geometry

#include "geometry/obb.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::geometry {

std::optional<OrientedBox> oriented_bounding_box(std::span<const Vec2> points) {
  if (points.size() < 3) return std::nullopt;
  Vec2 mean;
  for (const auto p : points) mean += p;
  mean = mean / static_cast<double>(points.size());

  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (const auto p : points) {
    const Vec2 d = p - mean;
    sxx += d.x * d.x;
    syy += d.y * d.y;
    sxy += d.x * d.y;
  }
  const double theta = 0.5 * std::atan2(2.0 * sxy, sxx - syy);

  double min_u = 1e18;
  double max_u = -1e18;
  double min_v = 1e18;
  double max_v = -1e18;
  for (const auto p : points) {
    const Vec2 d = (p - mean).rotated(-theta);
    min_u = std::min(min_u, d.x);
    max_u = std::max(max_u, d.x);
    min_v = std::min(min_v, d.y);
    max_v = std::max(max_v, d.y);
  }
  OrientedBox box;
  box.width = max_u - min_u;
  box.depth = max_v - min_v;
  box.orientation = theta;
  box.center =
      mean + Vec2{(min_u + max_u) / 2.0, (min_v + max_v) / 2.0}.rotated(theta);
  return box;
}

}  // namespace crowdmap::geometry

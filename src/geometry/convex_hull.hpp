// Convex hull (Andrew monotone chain); used as a fallback boundary when the
// α parameter exceeds the point-set diameter, and in tests as an α→∞ oracle.
#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Convex hull in CCW order. Returns fewer than 3 vertices for degenerate
/// inputs (all collinear or fewer than 3 distinct points).
[[nodiscard]] Polygon convex_hull(std::vector<Vec2> points);

}  // namespace crowdmap::geometry

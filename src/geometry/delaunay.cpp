#include "geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

namespace crowdmap::geometry {

Circumcircle circumcircle(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  Circumcircle out;
  if (std::abs(d) < 1e-12) {
    // Degenerate (collinear): infinite circumcircle.
    out.center = (a + b + c) / 3.0;
    out.radius_sq = std::numeric_limits<double>::max();
    return out;
  }
  const double a2 = a.norm_sq();
  const double b2 = b.norm_sq();
  const double c2 = c.norm_sq();
  out.center.x = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  out.center.y = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  out.radius_sq = (a - out.center).norm_sq();
  return out;
}

namespace {

using Edge = std::pair<std::size_t, std::size_t>;

[[nodiscard]] Edge make_edge(std::size_t a, std::size_t b) {
  return a < b ? Edge{a, b} : Edge{b, a};
}

}  // namespace

std::vector<Triangle> delaunay_triangulation(const std::vector<Vec2>& points) {
  if (points.size() < 3) return {};

  // Deduplicate near-coincident points; keep a map back to original indices.
  std::vector<std::size_t> keep;
  keep.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dup = false;
    for (const std::size_t j : keep) {
      if (points[i].distance_to(points[j]) < 1e-9) {
        dup = true;
        break;
      }
    }
    if (!dup) keep.push_back(i);
  }
  if (keep.size() < 3) return {};

  // Super-triangle enclosing all points.
  Vec2 lo{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()};
  Vec2 hi{std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()};
  for (const std::size_t i : keep) {
    lo.x = std::min(lo.x, points[i].x);
    lo.y = std::min(lo.y, points[i].y);
    hi.x = std::max(hi.x, points[i].x);
    hi.y = std::max(hi.y, points[i].y);
  }
  const double span = std::max({hi.x - lo.x, hi.y - lo.y, 1.0});
  const Vec2 mid = (lo + hi) * 0.5;
  // Working vertex array: deduped points followed by 3 super vertices.
  std::vector<Vec2> verts;
  verts.reserve(keep.size() + 3);
  for (const std::size_t i : keep) verts.push_back(points[i]);
  const std::size_t s0 = verts.size();
  verts.push_back({mid.x - 20.0 * span, mid.y - span});
  verts.push_back({mid.x + 20.0 * span, mid.y - span});
  verts.push_back({mid.x, mid.y + 20.0 * span});

  struct WorkTri {
    std::array<std::size_t, 3> v;
    Circumcircle cc;
  };
  std::vector<WorkTri> tris;
  tris.push_back({{s0, s0 + 1, s0 + 2},
                  circumcircle(verts[s0], verts[s0 + 1], verts[s0 + 2])});

  for (std::size_t p = 0; p < s0; ++p) {
    const Vec2 pt = verts[p];
    // Collect triangles whose circumcircle contains the point.
    std::map<Edge, int> edge_count;
    std::vector<WorkTri> survivors;
    survivors.reserve(tris.size());
    for (const auto& t : tris) {
      if ((pt - t.cc.center).norm_sq() <= t.cc.radius_sq + 1e-12) {
        edge_count[make_edge(t.v[0], t.v[1])]++;
        edge_count[make_edge(t.v[1], t.v[2])]++;
        edge_count[make_edge(t.v[2], t.v[0])]++;
      } else {
        survivors.push_back(t);
      }
    }
    tris = std::move(survivors);
    // Re-triangulate the cavity: edges appearing exactly once are boundary.
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;
      WorkTri nt;
      nt.v = {edge.first, edge.second, p};
      nt.cc = circumcircle(verts[edge.first], verts[edge.second], verts[p]);
      tris.push_back(nt);
    }
  }

  std::vector<Triangle> result;
  result.reserve(tris.size());
  for (const auto& t : tris) {
    if (t.v[0] >= s0 || t.v[1] >= s0 || t.v[2] >= s0) continue;  // touches super
    result.push_back(Triangle{{keep[t.v[0]], keep[t.v[1]], keep[t.v[2]]}});
  }
  return result;
}

}  // namespace crowdmap::geometry

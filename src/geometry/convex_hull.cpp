#include "geometry/convex_hull.hpp"

#include <algorithm>

namespace crowdmap::geometry {

Polygon convex_hull(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) return Polygon(std::move(points));

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).cross(points[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i > 0; --i) {  // upper hull
    while (k >= t &&
           (hull[k - 1] - hull[k - 2]).cross(points[i - 1] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = points[i - 1];
  }
  hull.resize(k - 1);
  return Polygon(std::move(hull));
}

}  // namespace crowdmap::geometry

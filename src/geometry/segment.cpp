#include "geometry/segment.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::geometry {

std::optional<Vec2> intersect(const Segment& s1, const Segment& s2) {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.cross(s);
  const Vec2 qp = s2.a - s1.a;
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel or collinear
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < -1e-12 || t > 1.0 + 1e-12 || u < -1e-12 || u > 1.0 + 1e-12) {
    return std::nullopt;
  }
  return s1.a + r * std::clamp(t, 0.0, 1.0);
}

double project_onto(Vec2 p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len_sq = d.norm_sq();
  if (len_sq < 1e-18) return 0.0;
  return std::clamp((p - s.a).dot(d) / len_sq, 0.0, 1.0);
}

double distance_point_segment(Vec2 p, const Segment& s) {
  return p.distance_to(s.at(project_onto(p, s)));
}

std::optional<RayHit> ray_segment(Vec2 origin, Vec2 dir, const Segment& s) {
  const Vec2 v = s.b - s.a;
  const double denom = dir.cross(v);
  if (std::abs(denom) < 1e-12) return std::nullopt;
  const Vec2 qp = s.a - origin;
  const double dist = qp.cross(v) / denom;
  const double t = qp.cross(dir) / denom;
  if (dist < 1e-9 || t < -1e-9 || t > 1.0 + 1e-9) return std::nullopt;
  return RayHit{dist, std::clamp(t, 0.0, 1.0)};
}

}  // namespace crowdmap::geometry

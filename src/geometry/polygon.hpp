// Simple polygons: area, containment, clipping, transforms. Floor plans are
// unions of rectilinear polygons; rooms are (possibly rotated) rectangles.
#pragma once

#include <vector>

#include "geometry/pose2.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 min;
  Vec2 max;

  [[nodiscard]] double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] double height() const noexcept { return max.y - min.y; }
  [[nodiscard]] double area() const noexcept { return width() * height(); }
  [[nodiscard]] Vec2 center() const noexcept { return (min + max) * 0.5; }
  [[nodiscard]] bool contains(Vec2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] Aabb expanded(double margin) const noexcept {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }
  [[nodiscard]] bool intersects(const Aabb& o) const noexcept {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y &&
           o.min.y <= max.y;
  }
};

/// Simple polygon given by its vertices in order (either winding).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {}

  /// Axis-aligned rectangle.
  [[nodiscard]] static Polygon rectangle(Vec2 center, double width, double height);
  /// Rectangle rotated by theta about its center.
  [[nodiscard]] static Polygon oriented_rectangle(Vec2 center, double width,
                                                  double height, double theta);

  [[nodiscard]] const std::vector<Vec2>& vertices() const noexcept { return vertices_; }
  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vertices_.empty(); }

  /// Signed area: positive for counter-clockwise winding.
  [[nodiscard]] double signed_area() const noexcept;
  [[nodiscard]] double area() const noexcept;
  [[nodiscard]] Vec2 centroid() const noexcept;
  [[nodiscard]] Aabb bounding_box() const;

  /// Point-in-polygon by ray casting; boundary points count as inside.
  [[nodiscard]] bool contains(Vec2 p) const noexcept;

  /// Edges as segments (closing edge included).
  [[nodiscard]] std::vector<Segment> edges() const;

  /// Perimeter length.
  [[nodiscard]] double perimeter() const noexcept;

  /// Polygon transformed by a rigid pose.
  [[nodiscard]] Polygon transformed(const Pose2& pose) const;

  /// Ensures counter-clockwise winding.
  [[nodiscard]] Polygon ccw() const;

 private:
  std::vector<Vec2> vertices_;
};

/// Sutherland–Hodgman clip of `subject` against a *convex* clip polygon.
[[nodiscard]] Polygon clip_convex(const Polygon& subject, const Polygon& convex_clip);

/// Intersection-over-union of two polygons estimated on a raster of
/// `resolution` cells along the larger bounding-box side. Exact enough for
/// evaluation metrics and robust to non-convexity.
[[nodiscard]] double polygon_iou(const Polygon& a, const Polygon& b,
                                 int resolution = 256);

}  // namespace crowdmap::geometry

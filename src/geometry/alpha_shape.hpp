// α-shape of a point set (Edelsbrunner et al.), used by the paper's floor
// path skeleton reconstruction to regularize the occupied-cell boundary
// (§III.B.II, Fig. 3b–3c).
#pragma once

#include <vector>

#include "geometry/delaunay.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Result of an α-shape computation.
struct AlphaShape {
  /// Triangles retained (circumradius <= alpha).
  std::vector<Triangle> triangles;
  /// Boundary edges: edges belonging to exactly one retained triangle.
  std::vector<Segment> boundary;
};

/// Computes the α-shape for radius parameter `alpha` (metric units).
/// A triangle is retained iff its circumradius <= alpha; the α-threshold
/// h_α of the paper maps directly onto this parameter.
[[nodiscard]] AlphaShape alpha_shape(const std::vector<Vec2>& points, double alpha);

/// True for points inside (or on) the α-shape's retained triangles.
[[nodiscard]] bool alpha_shape_contains(const AlphaShape& shape,
                                        const std::vector<Vec2>& points, Vec2 query);

/// Chains boundary segments into closed/open polylines (each polyline is an
/// ordered vertex list). Useful for rendering the regularized boundary.
[[nodiscard]] std::vector<std::vector<Vec2>> chain_boundary(
    const std::vector<Segment>& boundary, double join_tolerance = 1e-6);

}  // namespace crowdmap::geometry

// 2D vector type used throughout CrowdMap (trajectories, floor plans, grids).
#pragma once

#include <cmath>
#include <ostream>

namespace crowdmap::geometry {

/// Plain 2D vector/point; value type, no invariant.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; >0 when o is CCW from *this.
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return x * x + y * y; }
  [[nodiscard]] double distance_to(Vec2 o) const noexcept { return (*this - o).norm(); }

  /// Unit vector; returns (0,0) for the zero vector.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Rotation by `angle` radians counter-clockwise.
  [[nodiscard]] Vec2 rotated(double angle) const noexcept {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }

  /// Perpendicular (90° CCW).
  [[nodiscard]] constexpr Vec2 perp() const noexcept { return {-y, x}; }

  /// Heading angle atan2(y, x) in radians.
  [[nodiscard]] double angle() const noexcept { return std::atan2(y, x); }

  /// Unit vector pointing at `heading` radians.
  [[nodiscard]] static Vec2 from_angle(double heading) noexcept {
    return {std::cos(heading), std::sin(heading)};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace crowdmap::geometry

#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace crowdmap::geometry {

Polygon Polygon::rectangle(Vec2 center, double width, double height) {
  const double hw = width * 0.5;
  const double hh = height * 0.5;
  return Polygon({{center.x - hw, center.y - hh},
                  {center.x + hw, center.y - hh},
                  {center.x + hw, center.y + hh},
                  {center.x - hw, center.y + hh}});
}

Polygon Polygon::oriented_rectangle(Vec2 center, double width, double height,
                                    double theta) {
  const double hw = width * 0.5;
  const double hh = height * 0.5;
  std::vector<Vec2> corners = {
      {-hw, -hh}, {hw, -hh}, {hw, hh}, {-hw, hh}};
  for (auto& c : corners) c = center + c.rotated(theta);
  return Polygon(std::move(corners));
}

double Polygon::signed_area() const noexcept {
  if (vertices_.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 p = vertices_[i];
    const Vec2 q = vertices_[(i + 1) % vertices_.size()];
    acc += p.cross(q);
  }
  return acc * 0.5;
}

double Polygon::area() const noexcept { return std::abs(signed_area()); }

Vec2 Polygon::centroid() const noexcept {
  if (vertices_.empty()) return {};
  const double a = signed_area();
  if (std::abs(a) < 1e-12) {
    // Degenerate: fall back to vertex mean.
    Vec2 sum;
    for (const Vec2 v : vertices_) sum += v;
    return sum / static_cast<double>(vertices_.size());
  }
  Vec2 c;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 p = vertices_[i];
    const Vec2 q = vertices_[(i + 1) % vertices_.size()];
    const double w = p.cross(q);
    c += (p + q) * w;
  }
  return c / (6.0 * a);
}

Aabb Polygon::bounding_box() const {
  if (vertices_.empty()) throw std::logic_error("bounding_box of empty polygon");
  Aabb box{{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()},
           {std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()}};
  for (const Vec2 v : vertices_) {
    box.min.x = std::min(box.min.x, v.x);
    box.min.y = std::min(box.min.y, v.y);
    box.max.x = std::max(box.max.x, v.x);
    box.max.y = std::max(box.max.y, v.y);
  }
  return box;
}

bool Polygon::contains(Vec2 p) const noexcept {
  if (vertices_.size() < 3) return false;
  bool inside = false;
  for (std::size_t i = 0, j = vertices_.size() - 1; i < vertices_.size(); j = i++) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[j];
    // Boundary check first: distance to edge within epsilon counts inside.
    if (distance_point_segment(p, Segment{a, b}) < 1e-9) return true;
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

std::vector<Segment> Polygon::edges() const {
  std::vector<Segment> result;
  result.reserve(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    result.push_back({vertices_[i], vertices_[(i + 1) % vertices_.size()]});
  }
  return result;
}

double Polygon::perimeter() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    acc += vertices_[i].distance_to(vertices_[(i + 1) % vertices_.size()]);
  }
  return acc;
}

Polygon Polygon::transformed(const Pose2& pose) const {
  std::vector<Vec2> out;
  out.reserve(vertices_.size());
  for (const Vec2 v : vertices_) out.push_back(pose.apply(v));
  return Polygon(std::move(out));
}

Polygon Polygon::ccw() const {
  if (signed_area() >= 0) return *this;
  std::vector<Vec2> rev(vertices_.rbegin(), vertices_.rend());
  return Polygon(std::move(rev));
}

Polygon clip_convex(const Polygon& subject, const Polygon& convex_clip) {
  const Polygon clip = convex_clip.ccw();
  std::vector<Vec2> output = subject.vertices();
  const auto& cv = clip.vertices();
  // Sutherland–Hodgman: each clip edge acts as an infinite half-plane
  // boundary (intersections are with the edge's supporting line, not the
  // finite segment).
  auto line_intersection = [](Vec2 p0, Vec2 p1, Vec2 a, Vec2 b) -> Vec2 {
    const Vec2 d1 = p1 - p0;
    const Vec2 d2 = b - a;
    const double denom = d1.cross(d2);
    const double t = (a - p0).cross(d2) / denom;  // denom != 0: p0/p1 straddle
    return p0 + d1 * t;
  };
  for (std::size_t i = 0; i < cv.size() && !output.empty(); ++i) {
    const Vec2 ca = cv[i];
    const Vec2 cb = cv[(i + 1) % cv.size()];
    const Vec2 edge = cb - ca;
    std::vector<Vec2> input = std::move(output);
    output.clear();
    for (std::size_t j = 0; j < input.size(); ++j) {
      const Vec2 cur = input[j];
      const Vec2 prev = input[(j + input.size() - 1) % input.size()];
      const bool cur_in = edge.cross(cur - ca) >= -1e-12;
      const bool prev_in = edge.cross(prev - ca) >= -1e-12;
      if (cur_in) {
        if (!prev_in) output.push_back(line_intersection(prev, cur, ca, cb));
        output.push_back(cur);
      } else if (prev_in) {
        output.push_back(line_intersection(prev, cur, ca, cb));
      }
    }
  }
  return Polygon(std::move(output));
}

double polygon_iou(const Polygon& a, const Polygon& b, int resolution) {
  if (a.empty() || b.empty()) return 0.0;
  Aabb box = a.bounding_box();
  const Aabb bb = b.bounding_box();
  box.min.x = std::min(box.min.x, bb.min.x);
  box.min.y = std::min(box.min.y, bb.min.y);
  box.max.x = std::max(box.max.x, bb.max.x);
  box.max.y = std::max(box.max.y, bb.max.y);
  const double side = std::max(box.width(), box.height());
  if (side <= 0) return 0.0;
  const double cell = side / resolution;
  long inter = 0;
  long uni = 0;
  for (double y = box.min.y + cell / 2; y < box.max.y; y += cell) {
    for (double x = box.min.x + cell / 2; x < box.max.x; x += cell) {
      const bool ia = a.contains({x, y});
      const bool ib = b.contains({x, y});
      inter += (ia && ib);
      uni += (ia || ib);
    }
  }
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace crowdmap::geometry

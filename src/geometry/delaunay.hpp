// Delaunay triangulation (Bowyer–Watson). The α-shape stage of floor path
// skeleton reconstruction (paper §III.B.II, Fig. 3b) is built on top of it.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Triangle as indices into the input point set.
struct Triangle {
  std::array<std::size_t, 3> v;

  [[nodiscard]] bool has_vertex(std::size_t idx) const noexcept {
    return v[0] == idx || v[1] == idx || v[2] == idx;
  }
};

/// Circumcircle of three points.
struct Circumcircle {
  Vec2 center;
  double radius_sq = 0.0;
};
[[nodiscard]] Circumcircle circumcircle(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Bowyer–Watson Delaunay triangulation of a point set.
/// Duplicate and near-duplicate points are tolerated (deduplicated first).
/// Returns triangles indexing the *original* point vector.
[[nodiscard]] std::vector<Triangle> delaunay_triangulation(
    const std::vector<Vec2>& points);

}  // namespace crowdmap::geometry

// PCA-oriented bounding box of a 2D point set; shared by the inertial room
// baseline and the visual/trace layout fusion.
#pragma once

#include <optional>
#include <span>

#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Oriented bounding box: extents along the principal axes.
struct OrientedBox {
  Vec2 center;
  double width = 0.0;        // along the principal axis
  double depth = 0.0;        // perpendicular
  double orientation = 0.0;  // principal axis direction, radians

  [[nodiscard]] double area() const noexcept { return width * depth; }
};

/// PCA-oriented bounding box; nullopt for fewer than 3 points.
[[nodiscard]] std::optional<OrientedBox> oriented_bounding_box(
    std::span<const Vec2> points);

}  // namespace crowdmap::geometry

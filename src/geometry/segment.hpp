// Line segments: intersection, distance, ray casting (used by the synthetic
// renderer and by line-segment analysis in room layout modeling).
#pragma once

#include <optional>

#include "geometry/vec2.hpp"

namespace crowdmap::geometry {

/// Closed segment from a to b; no invariant (a == b is a degenerate point).
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return a.distance_to(b); }
  [[nodiscard]] Vec2 direction() const noexcept { return (b - a).normalized(); }
  [[nodiscard]] Vec2 midpoint() const noexcept { return (a + b) * 0.5; }
  /// Point at parameter t in [0,1].
  [[nodiscard]] Vec2 at(double t) const noexcept { return a + (b - a) * t; }
};

/// Proper segment-segment intersection point, if any (including touching).
[[nodiscard]] std::optional<Vec2> intersect(const Segment& s1, const Segment& s2);

/// Distance from point p to the segment (not the infinite line).
[[nodiscard]] double distance_point_segment(Vec2 p, const Segment& s);

/// Parameter t of the projection of p onto the segment, clamped to [0,1].
[[nodiscard]] double project_onto(Vec2 p, const Segment& s);

/// Ray from `origin` along unit `dir` against segment; returns distance along
/// the ray to the hit and the parameter t on the segment, or nullopt.
struct RayHit {
  double distance = 0.0;  // along the ray
  double t = 0.0;         // parameter on the segment in [0,1]
};
[[nodiscard]] std::optional<RayHit> ray_segment(Vec2 origin, Vec2 dir, const Segment& s);

}  // namespace crowdmap::geometry

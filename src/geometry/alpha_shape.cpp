#include "geometry/alpha_shape.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace crowdmap::geometry {

namespace {
using Edge = std::pair<std::size_t, std::size_t>;
[[nodiscard]] Edge make_edge(std::size_t a, std::size_t b) {
  return a < b ? Edge{a, b} : Edge{b, a};
}
}  // namespace

AlphaShape alpha_shape(const std::vector<Vec2>& points, double alpha) {
  AlphaShape out;
  const auto tris = delaunay_triangulation(points);
  const double alpha_sq = alpha * alpha;
  std::map<Edge, int> edge_count;
  for (const auto& t : tris) {
    const auto cc = circumcircle(points[t.v[0]], points[t.v[1]], points[t.v[2]]);
    if (cc.radius_sq > alpha_sq) continue;
    out.triangles.push_back(t);
    edge_count[make_edge(t.v[0], t.v[1])]++;
    edge_count[make_edge(t.v[1], t.v[2])]++;
    edge_count[make_edge(t.v[2], t.v[0])]++;
  }
  for (const auto& [edge, count] : edge_count) {
    if (count == 1) {
      out.boundary.push_back(Segment{points[edge.first], points[edge.second]});
    }
  }
  return out;
}

bool alpha_shape_contains(const AlphaShape& shape, const std::vector<Vec2>& points,
                          Vec2 query) {
  for (const auto& t : shape.triangles) {
    const Vec2 a = points[t.v[0]];
    const Vec2 b = points[t.v[1]];
    const Vec2 c = points[t.v[2]];
    const double d1 = (b - a).cross(query - a);
    const double d2 = (c - b).cross(query - b);
    const double d3 = (a - c).cross(query - c);
    const bool has_neg = (d1 < -1e-12) || (d2 < -1e-12) || (d3 < -1e-12);
    const bool has_pos = (d1 > 1e-12) || (d2 > 1e-12) || (d3 > 1e-12);
    if (!(has_neg && has_pos)) return true;
  }
  return false;
}

std::vector<std::vector<Vec2>> chain_boundary(const std::vector<Segment>& boundary,
                                              double join_tolerance) {
  std::vector<std::vector<Vec2>> chains;
  std::vector<bool> used(boundary.size(), false);
  for (std::size_t start = 0; start < boundary.size(); ++start) {
    if (used[start]) continue;
    used[start] = true;
    std::vector<Vec2> chain = {boundary[start].a, boundary[start].b};
    // Greedily extend forward from the chain tail.
    bool extended = true;
    while (extended) {
      extended = false;
      for (std::size_t i = 0; i < boundary.size(); ++i) {
        if (used[i]) continue;
        const Vec2 tail = chain.back();
        if (boundary[i].a.distance_to(tail) < join_tolerance) {
          chain.push_back(boundary[i].b);
          used[i] = true;
          extended = true;
        } else if (boundary[i].b.distance_to(tail) < join_tolerance) {
          chain.push_back(boundary[i].a);
          used[i] = true;
          extended = true;
        }
      }
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace crowdmap::geometry

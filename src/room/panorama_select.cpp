#include "room/panorama_select.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"

namespace crowdmap::room {

std::vector<std::size_t> select_covering_frames(
    const std::vector<double>& headings, const PanoramaSelectConfig& config) {
  if (headings.empty()) return {};
  // Sort indices by wrapped heading.
  std::vector<std::size_t> order(headings.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto wrapped = [&headings](std::size_t i) {
    return common::wrap_angle_2pi(headings[i]);
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return wrapped(a) < wrapped(b); });

  // Coverage check first: if any gap between adjacent headings reaches the
  // FoV, Cover(f_i) cannot reach 360°.
  const double max_allowed_gap = config.fov * (1.0 - config.min_overlap);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const double cur = wrapped(order[k]);
    const double next = k + 1 < order.size()
                            ? wrapped(order[k + 1])
                            : wrapped(order[0]) + common::kTwoPi;
    if (next - cur >= config.fov) return {};
  }

  // Greedy thinning: walk the circle keeping a frame once the angular
  // advance since the last kept frame reaches half the allowed gap. Kept
  // neighbors then overlap comfortably while redundant frames drop out.
  std::vector<std::size_t> kept;
  double last_heading = wrapped(order[0]);
  kept.push_back(order[0]);
  for (std::size_t k = 1; k < order.size(); ++k) {
    const double h = wrapped(order[k]);
    if (h - last_heading >= max_allowed_gap * 0.5) {
      kept.push_back(order[k]);
      last_heading = h;
    }
  }
  return kept;
}

std::vector<PanoramaCandidate> find_panorama_candidates(
    const trajectory::Trajectory& traj, const PanoramaSelectConfig& config) {
  std::vector<PanoramaCandidate> candidates;
  const auto& kfs = traj.keyframes;
  if (kfs.empty()) return candidates;

  // Temporal segmentation into stationary runs: an SRS rotation is a maximal
  // run of key-frames whose consecutive dead-reckoned displacement stays
  // small (slow drift across the whole run is fine; a walking step is not).
  auto emit_segment = [&](std::size_t begin, std::size_t end) {
    const std::size_t n = end - begin;
    if (n < 4) return;
    geometry::Vec2 sum;
    std::vector<double> headings;
    std::vector<std::size_t> members;
    headings.reserve(n);
    members.reserve(n);
    for (std::size_t i = begin; i < end; ++i) {
      sum += kfs[i].position;
      headings.push_back(kfs[i].heading);
      members.push_back(i);
    }
    const auto kept_local = select_covering_frames(headings, config);
    if (kept_local.empty()) return;
    PanoramaCandidate cand;
    cand.cell_center = sum / static_cast<double>(n);
    cand.keyframe_indices.reserve(kept_local.size());
    for (const std::size_t k : kept_local) {
      cand.keyframe_indices.push_back(members[k]);
    }
    candidates.push_back(std::move(cand));
  };

  std::size_t run_begin = 0;
  for (std::size_t i = 1; i <= kfs.size(); ++i) {
    const bool run_ends =
        i == kfs.size() ||
        kfs[i].position.distance_to(kfs[i - 1].position) > config.cell_radius;
    if (run_ends) {
      emit_segment(run_begin, i);
      run_begin = i;
    }
  }
  return candidates;
}

vision::Panorama stitch_candidate(const trajectory::Trajectory& traj,
                                  const PanoramaCandidate& candidate,
                                  const vision::StitchParams& params) {
  std::vector<vision::PanoFrame> frames;
  frames.reserve(candidate.keyframe_indices.size());
  for (const std::size_t i : candidate.keyframe_indices) {
    frames.push_back({traj.keyframes[i].gray, traj.keyframes[i].heading});
  }
  return vision::stitch_panorama(std::move(frames), params);
}

}  // namespace crowdmap::room

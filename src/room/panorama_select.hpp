// Key-frame selection for panorama generation (§III.C.I): the point-panorama
// overlap/cover model. Given the key-frames accumulated in one grid cell
// (typically an SRS rotation), select a subset whose viewing angles
// (i) pairwise overlap between angular neighbors and (ii) cover 360°.
#pragma once

#include <cstddef>
#include <vector>

#include "trajectory/trajectory.hpp"
#include "vision/panorama.hpp"

namespace crowdmap::room {

struct PanoramaSelectConfig {
  double fov = 0.9495;          // camera FoV (54.4°)
  double min_overlap = 0.25;    // required overlap fraction between neighbors
  // Frames within this radius co-locate. SRS spins are stationary; walking
  // frames inside the radius parallax-corrupt the panorama, so keep it tight.
  double cell_radius = 0.5;
};

/// Indices of a covering, overlapping subset of frames by heading; empty if
/// the input cannot cover 360° (then no panorama is generated for the cell).
[[nodiscard]] std::vector<std::size_t> select_covering_frames(
    const std::vector<double>& headings, const PanoramaSelectConfig& config = {});

/// Groups a trajectory's key-frames into spatial clusters ("cells") of
/// radius `cell_radius` and returns, for each cluster that passes the
/// overlap/cover check, the key-frame indices selected for stitching.
struct PanoramaCandidate {
  std::vector<std::size_t> keyframe_indices;  // into trajectory.keyframes
  geometry::Vec2 cell_center;                 // dead-reckoned cluster center
};
[[nodiscard]] std::vector<PanoramaCandidate> find_panorama_candidates(
    const trajectory::Trajectory& traj, const PanoramaSelectConfig& config = {});

/// Stitches the selected key-frames of one candidate.
[[nodiscard]] vision::Panorama stitch_candidate(
    const trajectory::Trajectory& traj, const PanoramaCandidate& candidate,
    const vision::StitchParams& params = {});

}  // namespace crowdmap::room

#include "room/fusion.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"

namespace crowdmap::room {

std::optional<FusedRoom> fuse_layout_with_trace(
    const std::optional<RoomLayout>& visual,
    std::span<const geometry::Vec2> in_room_trace, const FusionConfig& config) {
  const auto trace_box = geometry::oriented_bounding_box(in_room_trace);
  if (!visual && !trace_box) return std::nullopt;

  FusedRoom out;
  if (visual && !trace_box) {
    out.width = visual->width;
    out.depth = visual->depth;
    out.orientation = visual->orientation;
    out.visual_weight = 1.0;
    return out;
  }
  // Trace-only, or trace to blend with: inflate by the furniture margin.
  const double trace_w =
      trace_box ? trace_box->width + 2.0 * config.trace_margin : 0.0;
  const double trace_d =
      trace_box ? trace_box->depth + 2.0 * config.trace_margin : 0.0;
  if (!visual) {
    out.width = trace_w;
    out.depth = trace_d;
    out.orientation = trace_box->orientation;
    out.visual_weight = 0.0;
    return out;
  }

  // Confidence from the surface-consistency score: logistic with its middle
  // at half_weight_score.
  const double w =
      1.0 / (1.0 + std::exp(-(visual->score - config.half_weight_score) /
                            (config.half_weight_score / 2.0)));
  // Blend in the visual layout's frame; the trace box's axes may be swapped
  // relative to the visual layout's, so align them first.
  double tw = trace_w;
  double td = trace_d;
  const double axis_diff = std::abs(common::wrap_angle(
      trace_box->orientation - visual->orientation));
  if (axis_diff > common::kPi / 4 && axis_diff < 3 * common::kPi / 4) {
    std::swap(tw, td);
  }
  out.width = w * visual->width + (1 - w) * tw;
  out.depth = w * visual->depth + (1 - w) * td;
  out.orientation = visual->orientation;
  out.visual_weight = w;
  return out;
}

}  // namespace crowdmap::room

// Room-corner detection on panoramas (paper §III.C.II, Fig. 5): line
// segments (LSD-style) are detected on the panorama, near-vertical ones are
// accumulated into candidate corner columns (the "line segments along the
// vanishing direction"), and a layout hypothesis can be scored against them:
// a rectangular room seen from inside shows exactly four vertical wall-joint
// lines, at panorama columns determined by the room geometry.
#pragma once

#include <vector>

#include "imaging/image.hpp"
#include "room/layout.hpp"

namespace crowdmap::room {

/// Detected candidate corner columns (pixels, sorted ascending).
[[nodiscard]] std::vector<double> detect_corner_columns(
    const imaging::Image& panorama, std::size_t max_corners = 8);

/// Panorama columns where a hypothesis' four wall joints appear.
/// Columns are in [0, pano_width).
[[nodiscard]] std::vector<double> predict_corner_columns(
    const LayoutHypothesis& hyp, int pano_width);

/// Corner-consistency cost: mean circular column distance (pixels) from each
/// predicted corner to the nearest detected corner column. Returns 0 when
/// no corners were detected (no evidence, no penalty).
[[nodiscard]] double corner_cost(const std::vector<double>& detected,
                                 const std::vector<double>& predicted,
                                 int pano_width);

}  // namespace crowdmap::room

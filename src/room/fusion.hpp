// Joint visual + trajectory room modeling — the paper's proposed remedy for
// rooms that break the rectangular assumption (§VI "Reconstruct
// Non-Rectangular Shaped Room", solution i): when the panorama's rectangular
// fit is poor, lean on the user's in-room motion trace; when the fit is
// strong, trust the panorama (which sees walls the user cannot reach).
#pragma once

#include <optional>
#include <span>

#include "geometry/obb.hpp"
#include "room/layout.hpp"

namespace crowdmap::room {

struct FusionConfig {
  /// Surface-consistency score at which the visual layout gets half weight;
  /// well-fit rectangles score ~0.2+, degenerate fits ~0.05.
  double half_weight_score = 0.10;
  /// The trace underestimates each side by roughly twice the furniture
  /// margin; its extents are inflated by this many meters per side.
  double trace_margin = 0.55;
};

/// A fused room estimate with its provenance mix.
struct FusedRoom {
  double width = 0.0;
  double depth = 0.0;
  double orientation = 0.0;
  double visual_weight = 0.0;  // 1 = panorama only, 0 = trace only

  [[nodiscard]] double area() const noexcept { return width * depth; }
};

/// Fuses the panorama layout with the in-room motion trace. Either input may
/// be missing; nullopt only when both are.
[[nodiscard]] std::optional<FusedRoom> fuse_layout_with_trace(
    const std::optional<RoomLayout>& visual,
    std::span<const geometry::Vec2> in_room_trace,
    const FusionConfig& config = {});

}  // namespace crowdmap::room

#include "room/corners.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"
#include "vision/lines.hpp"

namespace crowdmap::room {

std::vector<double> detect_corner_columns(const imaging::Image& panorama,
                                          std::size_t max_corners) {
  const auto segments = vision::detect_line_segments(panorama);
  return vision::vertical_line_columns(segments, panorama.width(),
                                       /*verticality_tolerance=*/0.3,
                                       max_corners);
}

std::vector<double> predict_corner_columns(const LayoutHypothesis& hyp,
                                           int pano_width) {
  std::vector<double> columns;
  columns.reserve(4);
  const double hw = hyp.width / 2.0;
  const double hd = hyp.depth / 2.0;
  for (const double sx : {-1.0, 1.0}) {
    for (const double sy : {-1.0, 1.0}) {
      // Corner position relative to the camera, in the panorama frame.
      const geometry::Vec2 corner_room{sx * hw - hyp.camera_offset.x,
                                       sy * hd - hyp.camera_offset.y};
      const geometry::Vec2 corner = corner_room.rotated(hyp.orientation);
      const double angle = common::wrap_angle_2pi(corner.angle());
      columns.push_back(angle / common::kTwoPi * pano_width);
    }
  }
  std::sort(columns.begin(), columns.end());
  return columns;
}

double corner_cost(const std::vector<double>& detected,
                   const std::vector<double>& predicted, int pano_width) {
  if (detected.empty() || predicted.empty() || pano_width <= 0) return 0.0;
  double acc = 0.0;
  for (const double p : predicted) {
    double best = pano_width;  // upper bound
    for (const double d : detected) {
      double diff = std::abs(p - d);
      diff = std::min(diff, pano_width - diff);  // circular distance
      best = std::min(best, diff);
    }
    acc += best;
  }
  return acc / static_cast<double>(predicted.size());
}

}  // namespace crowdmap::room

#include "room/layout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "room/corners.hpp"

namespace crowdmap::room {

std::vector<double> detect_floor_boundary(const imaging::Image& panorama,
                                          double horizon_row) {
  const int w = panorama.width();
  const int h = panorama.height();
  std::vector<double> boundary(static_cast<std::size_t>(w),
                               std::numeric_limits<double>::quiet_NaN());
  constexpr double kMinDrop = 0.02;
  // Gradient window scales with panorama height so the boundary edge spans
  // it at any stitching resolution.
  const int span = std::max(2, h / 64);
  const int start_row =
      std::clamp(static_cast<int>(horizon_row < 0 ? h / 2 : horizon_row) + span,
                 span, h - span - 1);
  for (int c = 0; c < w; ++c) {
    double best_drop = kMinDrop;
    int best_row = -1;
    // The wall-floor boundary is below the (pitch-shifted) horizon. The
    // renderer places a dark baseboard at the wall bottom, so the boundary
    // appears as the strongest downward brightness drop below the horizon.
    for (int r = start_row; r < h - span; ++r) {
      const double drop = panorama.at(c, r - span) - panorama.at(c, r + span / 2);
      if (drop > best_drop) {
        best_drop = drop;
        best_row = r;
      }
    }
    if (best_row >= 0) boundary[static_cast<std::size_t>(c)] = best_row;
  }
  // Sliding median (window 5, circular) suppresses single-column outliers
  // from poster/door edges masquerading as the floor line.
  std::vector<double> smoothed = boundary;
  for (int c = 0; c < w; ++c) {
    double window[5];
    int n = 0;
    for (int d = -2; d <= 2; ++d) {
      const double v = boundary[static_cast<std::size_t>(((c + d) % w + w) % w)];
      if (!std::isnan(v)) window[n++] = v;
    }
    if (n >= 3) {
      std::sort(window, window + n);
      smoothed[static_cast<std::size_t>(c)] = window[n / 2];
    }
  }
  return smoothed;
}

double rect_boundary_distance(const LayoutHypothesis& hyp, double angle) {
  const double local = angle - hyp.orientation;
  const double dx = std::cos(local);
  const double dy = std::sin(local);
  const double cx = hyp.camera_offset.x;
  const double cy = hyp.camera_offset.y;
  const double hw = hyp.width / 2.0;
  const double hd = hyp.depth / 2.0;
  double best = 1e9;
  if (std::abs(dx) > 1e-9) {
    for (const double wall_x : {-hw, hw}) {
      const double t = (wall_x - cx) / dx;
      if (t > 1e-6 && std::abs(cy + t * dy) <= hd + 1e-9) best = std::min(best, t);
    }
  }
  if (std::abs(dy) > 1e-9) {
    for (const double wall_y : {-hd, hd}) {
      const double t = (wall_y - cy) / dy;
      if (t > 1e-6 && std::abs(cx + t * dx) <= hw + 1e-9) best = std::min(best, t);
    }
  }
  return best;
}

double predict_boundary_row(const LayoutHypothesis& hyp, double angle,
                            double horizon_row, double focal_px,
                            double camera_height, double boundary_height) {
  const double dist = rect_boundary_distance(hyp, angle);
  return horizon_row + focal_px * (camera_height - boundary_height) / dist;
}

namespace {

/// Mean absolute boundary error of a hypothesis (pixels, clamped); lower is
/// better. Only columns with an observed boundary are scored.
[[nodiscard]] double hypothesis_error(const LayoutHypothesis& hyp,
                                      const std::vector<double>& observed,
                                      int pano_width, double horizon_row,
                                      double focal_px, double camera_height,
                                      double boundary_height, int stride) {
  // Robust two-term score: a trimmed mean (the worst 10% of columns —
  // occlusions, missed detections — are softened) plus a fraction of the
  // untrimmed mean so a hypothesis cannot win by writing off whole walls.
  std::vector<double> residuals;
  residuals.reserve(static_cast<std::size_t>(pano_width / stride) + 1);
  double full_acc = 0.0;
  for (int c = 0; c < pano_width; c += stride) {
    const double obs = observed[static_cast<std::size_t>(c)];
    if (std::isnan(obs)) continue;
    const double angle = static_cast<double>(c) / pano_width * common::kTwoPi;
    const double pred = predict_boundary_row(hyp, angle, horizon_row, focal_px,
                                             camera_height, boundary_height);
    const double r = std::min(std::abs(pred - obs), 25.0);
    residuals.push_back(r);
    full_acc += r;
  }
  if (residuals.empty()) return 1e9;
  const std::size_t keep =
      std::max<std::size_t>(1, residuals.size() - residuals.size() * 10 / 100);
  std::nth_element(residuals.begin(), residuals.begin() + (keep - 1),
                   residuals.end());
  double acc = 0.0;
  for (std::size_t i = 0; i < keep; ++i) acc += residuals[i];
  return acc / static_cast<double>(keep) +
         0.25 * full_acc / static_cast<double>(residuals.size());
}

/// Data-driven seed hypotheses: per-column boundary rows become a metric
/// point cloud around the camera; for a sweep of orientations, a percentile
/// bounding rectangle of the cloud seeds the sampler. The random 20k-model
/// sweep still runs, but it no longer has to find a 5-parameter needle.
[[nodiscard]] std::vector<LayoutHypothesis> seed_hypotheses(
    const std::vector<double>& observed, int pano_width, double horizon_row,
    double focal_px, double camera_height, double boundary_height,
    double min_side, double max_side) {
  std::vector<geometry::Vec2> cloud;
  for (int c = 0; c < pano_width; ++c) {
    const double obs = observed[static_cast<std::size_t>(c)];
    if (std::isnan(obs) || obs <= horizon_row + 1.0) continue;
    const double dist =
        focal_px * (camera_height - boundary_height) / (obs - horizon_row);
    if (dist <= 0.2 || dist > 30.0) continue;
    const double angle = static_cast<double>(c) / pano_width * common::kTwoPi;
    cloud.push_back(geometry::Vec2::from_angle(angle) * dist);
  }
  std::vector<LayoutHypothesis> seeds;
  if (cloud.size() < 16) return seeds;
  for (int deg = 0; deg < 90; deg += 3) {
    const double theta = common::deg2rad(deg);
    std::vector<double> us;
    std::vector<double> vs;
    us.reserve(cloud.size());
    vs.reserve(cloud.size());
    for (const auto p : cloud) {
      const auto q = p.rotated(-theta);
      us.push_back(q.x);
      vs.push_back(q.y);
    }
    std::sort(us.begin(), us.end());
    std::sort(vs.begin(), vs.end());
    auto pct = [](const std::vector<double>& v, double q) {
      return v[static_cast<std::size_t>(q * (v.size() - 1))];
    };
    LayoutHypothesis hyp;
    const double u_lo = pct(us, 0.04);
    const double u_hi = pct(us, 0.96);
    const double v_lo = pct(vs, 0.04);
    const double v_hi = pct(vs, 0.96);
    hyp.width = std::clamp(u_hi - u_lo, min_side, max_side);
    hyp.depth = std::clamp(v_hi - v_lo, min_side, max_side);
    hyp.orientation = theta;
    // Camera sits at the cloud origin; the room center is the box midpoint.
    hyp.camera_offset = {-(u_lo + u_hi) / 2.0, -(v_lo + v_hi) / 2.0};
    seeds.push_back(hyp);
  }
  return seeds;
}

/// One random layout model drawn from the paper's 5-parameter sampling
/// distribution; pulled out so the serial and sharded sweeps share it.
[[nodiscard]] LayoutHypothesis sample_hypothesis(common::Rng& rng,
                                                 const LayoutConfig& config) {
  LayoutHypothesis hyp;
  hyp.width = rng.uniform(config.min_side, config.max_side);
  hyp.depth = rng.uniform(config.min_side, config.max_side);
  hyp.orientation = rng.uniform(0.0, common::kPi / 2.0);
  hyp.camera_offset = {
      hyp.width * rng.uniform(-config.max_center_offset, config.max_center_offset),
      hyp.depth * rng.uniform(-config.max_center_offset, config.max_center_offset)};
  return hyp;
}

}  // namespace

std::optional<RoomLayout> estimate_layout(const imaging::Image& panorama,
                                          const LayoutConfig& config,
                                          common::ThreadPool* pool) {
  if (panorama.empty()) return std::nullopt;
  const int w = panorama.width();
  const int h = panorama.height();
  const double focal =
      config.focal_px > 0 ? config.focal_px : w / common::kTwoPi;
  const double horizon_row = h / 2.0 - focal * std::tan(config.pitch);
  const auto observed = detect_floor_boundary(panorama, horizon_row);
  const auto valid =
      std::count_if(observed.begin(), observed.end(),
                    [](double v) { return !std::isnan(v); });
  const double coverage = static_cast<double>(valid) / w;
  if (coverage < 0.4) return std::nullopt;

  const int stride = std::max(1, w / 128);  // ~128 scored columns

  // Corner evidence (Fig. 5): vertical wall-joint lines on the panorama.
  const auto corners = config.corner_weight > 0
                           ? detect_corner_columns(panorama)
                           : std::vector<double>{};
  auto scored_error = [&](const LayoutHypothesis& hyp, int score_stride) {
    double err = hypothesis_error(hyp, observed, w, horizon_row, focal,
                                  config.camera_height,
                                  config.boundary_height, score_stride);
    if (config.corner_weight > 0 && !corners.empty()) {
      err += config.corner_weight *
             std::min(corner_cost(corners, predict_corner_columns(hyp, w), w),
                      40.0);
    }
    return err;
  };

  LayoutHypothesis best;
  double best_err = std::numeric_limits<double>::max();
  if (config.use_seed_hypotheses) {
    for (const auto& seed : seed_hypotheses(observed, w, horizon_row, focal,
                                            config.camera_height,
                                            config.boundary_height,
                                            config.min_side, config.max_side)) {
      const double err = scored_error(seed, stride);
      if (err < best_err) {
        best_err = err;
        best = seed;
      }
    }
  }

  // Random sweep over config.hypotheses models (the paper's 20,000). The
  // sampling stream is untouched by parallelism: every model is drawn up
  // front from the single Rng(seed) sequence — sampling is a handful of
  // uniform draws per model, while the per-column scoring dominates — and
  // only the scoring fans out, in scoring_shards contiguous index slices
  // reduced by an (error, global index) argmin. Any shard count on any
  // thread count (including no pool) therefore reproduces the serial
  // pre-parallelism sweep bit for bit.
  common::Rng rng(config.seed);
  std::vector<LayoutHypothesis> models;
  models.reserve(static_cast<std::size_t>(std::max(config.hypotheses, 0)));
  for (int k = 0; k < config.hypotheses; ++k) {
    models.push_back(sample_hypothesis(rng, config));
  }

  struct ShardBest {
    double err = std::numeric_limits<double>::max();
    std::size_t index = std::numeric_limits<std::size_t>::max();
  };
  const std::size_t shards = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(config.scoring_shards, 1)), 1,
      std::max<std::size_t>(models.size(), 1));
  std::vector<ShardBest> shard_best(shards);
  common::parallel_for(pool, shards, [&](std::size_t s) {
    const std::size_t begin = models.size() * s / shards;
    const std::size_t end = models.size() * (s + 1) / shards;
    ShardBest local;
    for (std::size_t k = begin; k < end; ++k) {
      const double err = scored_error(models[k], stride);
      if (err < local.err) {
        local.err = err;
        local.index = k;
      }
    }
    shard_best[s] = local;
  });
  for (const ShardBest& sb : shard_best) {
    // Strict less in shard (= global index) order: ties keep the lowest
    // global index, exactly what the serial ascending-k pass picks.
    if (sb.index != std::numeric_limits<std::size_t>::max() &&
        sb.err < best_err) {
      best_err = sb.err;
      best = models[sb.index];
    }
  }
  if (best_err > 1e8) return std::nullopt;

  // Local refinement of the winner: shrinking random perturbations. Serial
  // by design (each round perturbs the current winner); `rng` continues the
  // sweep's sampling sequence, so refinement draws are also unchanged.
  double radius = 0.35;
  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < 60; ++k) {
      LayoutHypothesis hyp = best;
      hyp.width = std::clamp(hyp.width * (1.0 + rng.uniform(-radius, radius)),
                             config.min_side, config.max_side);
      hyp.depth = std::clamp(hyp.depth * (1.0 + rng.uniform(-radius, radius)),
                             config.min_side, config.max_side);
      hyp.orientation = common::wrap_angle_2pi(
          hyp.orientation + rng.uniform(-radius, radius) * 0.5);
      if (hyp.orientation >= common::kPi / 2.0) {
        hyp.orientation = std::fmod(hyp.orientation, common::kPi / 2.0);
      }
      hyp.camera_offset.x += hyp.width * rng.uniform(-radius, radius) * 0.3;
      hyp.camera_offset.y += hyp.depth * rng.uniform(-radius, radius) * 0.3;
      const double err = scored_error(hyp, 1);
      if (err < best_err) {
        best_err = err;
        best = hyp;
      }
    }
    radius *= 0.5;
  }

  RoomLayout layout;
  layout.width = best.width;
  layout.depth = best.depth;
  layout.orientation = best.orientation;
  layout.camera_offset = best.camera_offset;
  layout.score = 1.0 / (1.0 + best_err);
  layout.coverage = coverage;
  return layout;
}

}  // namespace crowdmap::room

// Room layout generation from a 360° panorama (§III.C.II, Fig. 5): detect
// line structure, sample rectangular 3D layout hypotheses, and keep the one
// maximizing a pixel-wise surface-consistency score against the observed
// wall-floor boundary (PanoContext-style whole-room scoring).
#pragma once

#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "geometry/vec2.hpp"
#include "imaging/image.hpp"
#include "vision/lines.hpp"

namespace crowdmap::room {

/// Estimated rectangular room layout in the panorama's reference frame
/// (panorama column 0 = global angle 0 of the stitching headings).
struct RoomLayout {
  double width = 0.0;        // meters (along the room's local x)
  double depth = 0.0;        // meters (along the room's local y)
  double orientation = 0.0;  // room x-axis direction, radians in [0, pi/2)
  geometry::Vec2 camera_offset;  // camera position relative to room center
  double score = 0.0;            // surface-consistency of the winning model
  double coverage = 0.0;         // fraction of columns with observed boundary

  [[nodiscard]] double area() const noexcept { return width * depth; }
  [[nodiscard]] double aspect_ratio() const noexcept {
    return depth > 0 ? width / depth : 0.0;
  }
};

struct LayoutConfig {
  int hypotheses = 20000;        // the paper samples 20,000 models
  double camera_height = 1.5;    // meters (phone held in front of the chest)
  double pitch = 0.15;           // camera downward pitch (must match capture)
  double boundary_height = 0.21; // baseboard-top height the detector locks onto
  double min_side = 1.8;         // sampled room side range, meters
  double max_side = 16.0;
  double max_center_offset = 0.35;  // camera offset as a fraction of side
  std::uint64_t seed = 0x900DF00Du; // hypothesis sampler seed
  /// Data-driven seed hypotheses from the boundary point cloud (on by
  /// default). Disable to measure pure random-sampling convergence (the
  /// ablation behind the paper's 20,000-model figure).
  bool use_seed_hypotheses = true;
  /// Weight of the corner-consistency term (Fig. 5's vertical wall-joint
  /// lines) in the hypothesis score; 0 scores the wall-floor boundary only.
  double corner_weight = 0.05;
  /// Effective focal length of the panorama in pixels per radian-equivalent;
  /// must match the stitcher: f = frame_focal * pano_height / frame_height.
  double focal_px = 0.0;  // <= 0: derived from panorama width (W / 2*pi)
  /// Hypothesis-scoring shards: all models are sampled up front from the
  /// single Rng(seed) sequence (sampling is cheap; scoring dominates), then
  /// scoring splits into this many contiguous index slices whose winners
  /// reduce via an (error, global index) argmin. The winning layout is
  /// independent of the shard count AND the thread count — any ThreadPool
  /// passed to estimate_layout, including none, reproduces the serial sweep
  /// bit for bit. The knob only tunes work granularity on the pool.
  int scoring_shards = 16;
};

/// Per-column observed wall-floor boundary rows (NaN where undetected).
/// `horizon_row` is where the (pitch-shifted) horizon sits; the boundary is
/// searched below it.
[[nodiscard]] std::vector<double> detect_floor_boundary(
    const imaging::Image& panorama, double horizon_row = -1.0);

/// Predicted boundary row for a hypothesis at one panorama column.
struct LayoutHypothesis {
  double width = 0.0;
  double depth = 0.0;
  double orientation = 0.0;
  geometry::Vec2 camera_offset;
};
[[nodiscard]] double predict_boundary_row(const LayoutHypothesis& hyp,
                                          double angle, double horizon_row,
                                          double focal_px, double camera_height,
                                          double boundary_height);

/// Distance from the camera to the room's rectangle boundary along `angle`
/// (global frame). Returns a large value if the camera is outside the rect.
[[nodiscard]] double rect_boundary_distance(const LayoutHypothesis& hyp,
                                            double angle);

/// Full estimator: boundary detection, hypothesis sampling, consistency
/// scoring, local refinement of the winner. nullopt when too few boundary
/// columns were detected (panorama unusable). `pool` parallelizes the
/// sharded hypothesis sweep (see LayoutConfig::scoring_shards); the result
/// is independent of the pool and its thread count.
[[nodiscard]] std::optional<RoomLayout> estimate_layout(
    const imaging::Image& panorama, const LayoutConfig& config = {},
    common::ThreadPool* pool = nullptr);

}  // namespace crowdmap::room

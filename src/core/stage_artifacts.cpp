#include "core/stage_artifacts.hpp"

#include <bit>

#include "trajectory/serialize.hpp"

namespace crowdmap::core {

namespace {

// Payload framing: a one-byte tag guards against a (vanishingly unlikely)
// cross-family key collision being decoded as the wrong type, and the schema
// version rides along so decode rejects stale layouts instead of misreading.
enum : std::uint8_t {
  kTagPair = 0x50,      // 'P'
  kTagRoom = 0x52,      // 'R'
  kTagSkeleton = 0x53,  // 'S'
  kTagArrange = 0x41,   // 'A'
};

void write_header(io::Writer& w, std::uint8_t tag) {
  w.u8(tag);
  w.u64(kArtifactSchemaVersion);
}

[[nodiscard]] bool read_header(io::Reader& r, std::uint8_t tag) {
  return r.u8() == tag && r.u64() == kArtifactSchemaVersion;
}

void write_vec2(io::Writer& w, const geometry::Vec2& v) {
  w.f64(v.x);
  w.f64(v.y);
}

[[nodiscard]] geometry::Vec2 read_vec2(io::Reader& r) {
  geometry::Vec2 v;
  v.x = r.f64();
  v.y = r.f64();
  return v;
}

void write_raster(io::Writer& w, const geometry::BoolRaster& raster) {
  w.f64(raster.extent().min.x);
  w.f64(raster.extent().min.y);
  w.f64(raster.extent().max.x);
  w.f64(raster.extent().max.y);
  w.f64(raster.cell_size());
  w.u32(static_cast<std::uint32_t>(raster.width()));
  w.u32(static_cast<std::uint32_t>(raster.height()));
  w.u64(raster.data().size());
  w.bytes_raw(raster.data());
}

[[nodiscard]] geometry::BoolRaster read_raster(io::Reader& r) {
  geometry::Aabb extent;
  extent.min.x = r.f64();
  extent.min.y = r.f64();
  extent.max.x = r.f64();
  extent.max.y = r.f64();
  const double cell_size = r.f64();
  const auto width = r.u32();
  const auto height = r.u32();
  geometry::BoolRaster raster(extent, cell_size);
  if (raster.width() != static_cast<int>(width) ||
      raster.height() != static_cast<int>(height)) {
    throw io::DecodeError("artifact raster dimensions disagree with extent");
  }
  const std::uint64_t n = r.u64();
  if (n != raster.data().size()) {
    throw io::DecodeError("artifact raster cell count mismatch");
  }
  for (std::uint64_t i = 0; i < n; ++i) raster.data()[i] = r.u8();
  return raster;
}

void key_raster(cache::KeyBuilder& k, const geometry::BoolRaster& raster) {
  k.f64(raster.extent().min.x);
  k.f64(raster.extent().min.y);
  k.f64(raster.extent().max.x);
  k.f64(raster.extent().max.y);
  k.f64(raster.cell_size());
  k.u64(static_cast<std::uint64_t>(raster.width()));
  k.u64(static_cast<std::uint64_t>(raster.height()));
  k.bytes(raster.data());
}

void write_layout(io::Writer& w, const room::RoomLayout& layout) {
  w.f64(layout.width);
  w.f64(layout.depth);
  w.f64(layout.orientation);
  write_vec2(w, layout.camera_offset);
  w.f64(layout.score);
  w.f64(layout.coverage);
}

[[nodiscard]] room::RoomLayout read_layout(io::Reader& r) {
  room::RoomLayout layout;
  layout.width = r.f64();
  layout.depth = r.f64();
  layout.orientation = r.f64();
  layout.camera_offset = read_vec2(r);
  layout.score = r.f64();
  layout.coverage = r.f64();
  return layout;
}

}  // namespace

// ---------------------------------------------------------- content keys ---

cache::ArtifactKey trajectory_content_key(const trajectory::Trajectory& traj) {
  cache::KeyBuilder k;
  k.u64(kArtifactSchemaVersion);
  k.str("trajectory");
  k.bytes(trajectory::encode_trajectory(traj));
  // encode_trajectory quantizes key-frame pixels to 8 bits; fold the exact
  // float bits in as well so sub-quantization pixel differences cannot alias
  // two distinct trajectories onto one key.
  for (const auto& kf : traj.keyframes) {
    for (const float px : kf.gray.data()) {
      k.u64(std::bit_cast<std::uint32_t>(px));
    }
  }
  return k.finish();
}

// ------------------------------------------------------------- pair seam ---

cache::ArtifactKey pair_decision_key(const cache::ArtifactKey& content_a,
                                     const cache::ArtifactKey& content_b,
                                     const trajectory::AggregationConfig& config) {
  cache::KeyBuilder k;
  k.u64(kArtifactSchemaVersion);
  k.str("pair");
  k.u64(content_a.hi);
  k.u64(content_a.lo);
  k.u64(content_b.hi);
  k.u64(content_b.lo);
  k.u64(static_cast<std::uint64_t>(config.method));
  const trajectory::MatchConfig& m = config.match;
  k.f64(m.h_s);
  k.f64(m.h_d);
  k.f64(m.nn_ratio);
  k.f64(m.h_f);
  k.f64(m.h_l);
  k.i64(m.min_consistent_anchors);
  k.f64(m.consensus_dist);
  k.f64(m.consensus_angle);
  k.f64(m.lcss.epsilon);
  k.i64(m.lcss.delta);
  k.f64(m.s1_weights.color);
  k.f64(m.s1_weights.shape);
  k.f64(m.s1_weights.wavelet);
  k.f64(m.resample_spacing);
  k.i64(m.max_candidates);
  k.i64(m.max_s2_evaluations);
  k.i64(m.max_anchors);
  return k.finish();
}

io::Bytes encode_pair_decision(const trajectory::PairDecision& decision) {
  io::Writer w;
  write_header(w, kTagPair);
  w.u8(decision.matched ? 1 : 0);
  w.f64(decision.b_to_a.position.x);
  w.f64(decision.b_to_a.position.y);
  w.f64(decision.b_to_a.theta);
  w.f64(decision.s3);
  w.u64(decision.anchor_count);
  return std::move(w).take();
}

std::optional<trajectory::PairDecision> decode_pair_decision(
    const io::Bytes& data) {
  try {
    io::Reader r(data);
    if (!read_header(r, kTagPair)) return std::nullopt;
    trajectory::PairDecision d;
    d.matched = r.u8() != 0;
    d.b_to_a.position.x = r.f64();
    d.b_to_a.position.y = r.f64();
    d.b_to_a.theta = r.f64();
    d.s3 = r.f64();
    d.anchor_count = r.u64();
    if (!r.exhausted()) return std::nullopt;
    return d;
  } catch (const io::DecodeError&) {
    return std::nullopt;
  }
}

// ------------------------------------------------------------- room seam ---

cache::ArtifactKey room_artifact_key(const cache::ArtifactKey& content,
                                     const room::PanoramaCandidate& candidate,
                                     const vision::StitchParams& stitch,
                                     const room::LayoutConfig& layout) {
  cache::KeyBuilder k;
  k.u64(kArtifactSchemaVersion);
  k.str("room");
  k.u64(content.hi);
  k.u64(content.lo);
  k.u64(candidate.keyframe_indices.size());
  for (const std::size_t idx : candidate.keyframe_indices) k.u64(idx);
  k.f64(candidate.cell_center.x);
  k.f64(candidate.cell_center.y);
  k.i64(stitch.output_width);
  k.i64(stitch.output_height);
  k.f64(stitch.fov);
  k.i64(stitch.max_refine_px);
  k.u64(stitch.refine_alignment ? 1 : 0);
  // Effective layout config; scoring_shards deliberately omitted (the shard
  // count tunes pool granularity, not the winning hypothesis).
  k.i64(layout.hypotheses);
  k.f64(layout.camera_height);
  k.f64(layout.pitch);
  k.f64(layout.boundary_height);
  k.f64(layout.min_side);
  k.f64(layout.max_side);
  k.f64(layout.max_center_offset);
  k.u64(layout.seed);
  k.u64(layout.use_seed_hypotheses ? 1 : 0);
  k.f64(layout.corner_weight);
  k.f64(layout.focal_px);
  return k.finish();
}

io::Bytes encode_room_artifact(const RoomArtifact& artifact) {
  io::Writer w;
  write_header(w, kTagRoom);
  w.u8(artifact.stitched ? 1 : 0);
  w.u8(artifact.has_layout ? 1 : 0);
  if (artifact.has_layout) write_layout(w, artifact.layout);
  return std::move(w).take();
}

std::optional<RoomArtifact> decode_room_artifact(const io::Bytes& data) {
  try {
    io::Reader r(data);
    if (!read_header(r, kTagRoom)) return std::nullopt;
    RoomArtifact artifact;
    artifact.stitched = r.u8() != 0;
    artifact.has_layout = r.u8() != 0;
    if (artifact.has_layout) artifact.layout = read_layout(r);
    if (!r.exhausted()) return std::nullopt;
    return artifact;
  } catch (const io::DecodeError&) {
    return std::nullopt;
  }
}

// --------------------------------------------------------- skeleton seam ---

cache::ArtifactKey skeleton_key(const mapping::OccupancyGrid& grid,
                                const mapping::SkeletonConfig& config) {
  cache::KeyBuilder k;
  k.u64(kArtifactSchemaVersion);
  k.str("skeleton");
  k.f64(grid.extent().min.x);
  k.f64(grid.extent().min.y);
  k.f64(grid.extent().max.x);
  k.f64(grid.extent().max.y);
  k.f64(grid.cell_size());
  k.u64(static_cast<std::uint64_t>(grid.width()));
  k.u64(static_cast<std::uint64_t>(grid.height()));
  for (int row = 0; row < grid.height(); ++row) {
    for (int col = 0; col < grid.width(); ++col) {
      k.f64(grid.count_at(col, row));
    }
  }
  k.f64(config.min_access_count);
  k.f64(config.alpha);
  k.i64(config.close_radius);
  k.i64(config.bridge_max_gap_cells);
  k.u64(config.min_component_cells);
  k.i64(config.final_dilate_cells);
  return k.finish();
}

io::Bytes encode_skeleton(const mapping::PathSkeleton& skeleton) {
  io::Writer w;
  write_header(w, kTagSkeleton);
  write_raster(w, skeleton.raster);
  write_raster(w, skeleton.binarized);
  w.u64(skeleton.boundary.size());
  for (const auto& seg : skeleton.boundary) {
    write_vec2(w, seg.a);
    write_vec2(w, seg.b);
  }
  return std::move(w).take();
}

std::optional<mapping::PathSkeleton> decode_skeleton(const io::Bytes& data) {
  try {
    io::Reader r(data);
    if (!read_header(r, kTagSkeleton)) return std::nullopt;
    mapping::PathSkeleton skeleton;
    skeleton.raster = read_raster(r);
    skeleton.binarized = read_raster(r);
    const std::uint64_t n = r.u64();
    skeleton.boundary.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      geometry::Segment seg;
      seg.a = read_vec2(r);
      seg.b = read_vec2(r);
      skeleton.boundary.push_back(seg);
    }
    if (!r.exhausted()) return std::nullopt;
    return skeleton;
  } catch (const io::DecodeError&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------- arrange seam ---

cache::ArtifactKey arrange_key(const std::vector<floorplan::PlacedRoom>& rooms,
                               const geometry::BoolRaster& hallway,
                               const floorplan::ArrangeConfig& config) {
  cache::KeyBuilder k;
  k.u64(kArtifactSchemaVersion);
  k.str("arrange");
  k.u64(rooms.size());
  for (const auto& room : rooms) {
    k.f64(room.center.x);
    k.f64(room.center.y);
    k.f64(room.width);
    k.f64(room.depth);
    k.f64(room.orientation);
    k.f64(room.anchor.x);
    k.f64(room.anchor.y);
    k.i64(room.true_room_id);
    k.f64(room.layout_score);
  }
  key_raster(k, hallway);
  k.f64(config.spring_k);
  k.f64(config.room_repulsion);
  k.f64(config.hall_repulsion);
  k.f64(config.step);
  k.f64(config.converge_force);
  k.i64(config.max_iterations);
  return k.finish();
}

io::Bytes encode_placed_rooms(const std::vector<floorplan::PlacedRoom>& rooms) {
  io::Writer w;
  write_header(w, kTagArrange);
  w.u64(rooms.size());
  for (const auto& room : rooms) {
    write_vec2(w, room.center);
    w.f64(room.width);
    w.f64(room.depth);
    w.f64(room.orientation);
    write_vec2(w, room.anchor);
    w.i32(room.true_room_id);
    w.f64(room.layout_score);
  }
  return std::move(w).take();
}

std::optional<std::vector<floorplan::PlacedRoom>> decode_placed_rooms(
    const io::Bytes& data) {
  try {
    io::Reader r(data);
    if (!read_header(r, kTagArrange)) return std::nullopt;
    const std::uint64_t n = r.u64();
    std::vector<floorplan::PlacedRoom> rooms;
    rooms.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      floorplan::PlacedRoom room;
      room.center = read_vec2(r);
      room.width = r.f64();
      room.depth = r.f64();
      room.orientation = r.f64();
      room.anchor = read_vec2(r);
      room.true_room_id = r.i32();
      room.layout_score = r.f64();
      rooms.push_back(room);
    }
    if (!r.exhausted()) return std::nullopt;
    return rooms;
  } catch (const io::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace crowdmap::core

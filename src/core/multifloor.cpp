#include "core/multifloor.hpp"

namespace crowdmap::core {

void MultiFloorPipeline::ingest(const sim::SensorRichVideo& video) {
  auto it = pipelines_.find(video.floor);
  if (it == pipelines_.end()) {
    it = pipelines_.emplace(video.floor, CrowdMapPipeline(config_)).first;
  }
  it->second.ingest(video);
}

std::vector<FloorResult> MultiFloorPipeline::run(
    const std::map<int, WorldFrame>& frames) {
  std::vector<FloorResult> results;
  results.reserve(pipelines_.size());
  for (auto& [floor, pipeline] : pipelines_) {
    FloorResult fr;
    fr.floor = floor;
    const auto frame_it = frames.find(floor);
    fr.result = frame_it == frames.end()
                    ? pipeline.run()
                    : pipeline.run(frame_it->second);
    results.push_back(std::move(fr));
  }
  return results;
}

std::vector<int> MultiFloorPipeline::floors() const {
  std::vector<int> out;
  out.reserve(pipelines_.size());
  for (const auto& [floor, pipeline] : pipelines_) out.push_back(floor);
  return out;
}

}  // namespace crowdmap::core

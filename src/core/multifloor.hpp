// Multi-floor reconstruction (paper §VI "Reconstruct Multi-Floors in Single
// Round"): the task decomposes into one 1-floor reconstruction per (building,
// floor) — uploads carry that annotation from Task 1 — with floors linked at
// shared vertical-transport reference points (stairs/elevators).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace crowdmap::core {

/// A vertical connector (stairwell / elevator shaft) linking two floors at
/// (approximately) the same footprint position.
struct FloorConnector {
  int lower_floor = 1;
  int upper_floor = 2;
  geometry::Vec2 position;  // in the building's ground-truth frame
};

/// One floor's reconstruction.
struct FloorResult {
  int floor = 1;
  PipelineResult result;
};

/// Per-building multi-floor reconstruction.
class MultiFloorPipeline {
 public:
  explicit MultiFloorPipeline(PipelineConfig config = {})
      : config_(std::move(config)) {}

  /// Routes an upload to its floor's pipeline using the Task-1 annotation.
  void ingest(const sim::SensorRichVideo& video);

  /// Runs every floor's pipeline. Each frame entry (keyed by floor) aligns
  /// that floor's output; floors without an entry run in their own frame.
  [[nodiscard]] std::vector<FloorResult> run(
      const std::map<int, WorldFrame>& frames = {});

  [[nodiscard]] std::vector<int> floors() const;
  [[nodiscard]] std::size_t floor_count() const noexcept {
    return pipelines_.size();
  }

 private:
  PipelineConfig config_;
  std::map<int, CrowdMapPipeline> pipelines_;
};

}  // namespace crowdmap::core

// CrowdMapPipeline — the public API of the system (paper §II): ingest
// sensor-rich videos, then run the three cloud sub-processes (indoor path
// modeling, room layout modeling, floor plan modeling) and return the
// reconstructed floor plan with diagnostics.
#pragma once

#include <optional>
#include <vector>

#include "core/config.hpp"
#include "floorplan/floorplan.hpp"
#include "mapping/occupancy.hpp"
#include "geometry/pose2.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/aggregate.hpp"

namespace crowdmap::core {

/// Optional output frame: the evaluation harness passes the rigid transform
/// aligning the pipeline's arbitrary global frame onto ground truth plus the
/// ground-truth grid, so output rasters are directly comparable (the paper
/// overlays reconstructions on the surveyed plan the same way).
struct WorldFrame {
  geometry::Pose2 global_to_world;
  geometry::Aabb extent;
};

/// Per-stage wall-clock timings and data-quality counters.
struct PipelineDiagnostics {
  std::size_t videos_ingested = 0;
  std::size_t trajectories_kept = 0;
  std::size_t trajectories_dropped = 0;   // unqualified-data filter
  std::size_t trajectories_placed = 0;    // in the main aggregated component
  std::size_t match_edges = 0;
  std::size_t panoramas_attempted = 0;
  std::size_t panoramas_stitched = 0;
  std::size_t rooms_reconstructed = 0;
  double extract_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double skeleton_seconds = 0.0;
  double rooms_seconds = 0.0;
  double arrange_seconds = 0.0;
};

/// One reconstructed room before floor-plan merge, with provenance.
struct ReconstructedRoom {
  room::RoomLayout layout;
  geometry::Vec2 camera_global;   // where the panorama was taken
  geometry::Vec2 center_global;   // implied room center
  double orientation_global = 0.0;
  std::size_t trajectory_index = 0;
  int true_room_id = -1;          // evaluation only
};

/// Full pipeline result.
struct PipelineResult {
  floorplan::FloorPlan plan;
  trajectory::AggregationResult aggregation;
  mapping::PathSkeleton skeleton;
  /// The accumulated occupancy evidence (coverage analysis reads it).
  mapping::OccupancyGrid occupancy{geometry::Aabb{{0, 0}, {1, 1}}, 1.0};
  std::vector<ReconstructedRoom> rooms;
  PipelineDiagnostics diagnostics;
};

class CrowdMapPipeline {
 public:
  explicit CrowdMapPipeline(PipelineConfig config = {});

  /// Ingests one upload: extracts the trajectory (dead reckoning +
  /// key-frames) and discards the raw pixels. Unqualified uploads (too few
  /// key-frames, implausible motion) are filtered here.
  void ingest(const sim::SensorRichVideo& video);

  /// Ingests a pre-extracted trajectory (e.g. from a stored dataset).
  void ingest_trajectory(trajectory::Trajectory traj);

  /// Runs aggregation, skeleton reconstruction, room layout modeling and
  /// force-directed arrangement over everything ingested so far.
  [[nodiscard]] PipelineResult run(
      const std::optional<WorldFrame>& frame = std::nullopt);

  [[nodiscard]] const std::vector<trajectory::Trajectory>& trajectories()
      const noexcept {
    return trajectories_;
  }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t dropped_count() const noexcept { return dropped_; }

 private:
  PipelineConfig config_;
  std::vector<trajectory::Trajectory> trajectories_;
  std::size_t ingested_ = 0;
  std::size_t dropped_ = 0;
  double extract_seconds_ = 0.0;
};

}  // namespace crowdmap::core

// CrowdMapPipeline — the public API of the system (paper §II): ingest
// sensor-rich videos, then run the three cloud sub-processes (indoor path
// modeling, room layout modeling, floor plan modeling) and return the
// reconstructed floor plan with diagnostics.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "common/expected.hpp"
#include "common/fault.hpp"
#include "common/memo_cache.hpp"
#include "common/thread_pool.hpp"
#include "core/config.hpp"
#include "floorplan/floorplan.hpp"
#include "mapping/occupancy.hpp"
#include "geometry/pose2.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/aggregate.hpp"

namespace crowdmap::core {

/// Optional output frame: the evaluation harness passes the rigid transform
/// aligning the pipeline's arbitrary global frame onto ground truth plus the
/// ground-truth grid, so output rasters are directly comparable (the paper
/// overlays reconstructions on the surveyed plan the same way).
struct WorldFrame {
  geometry::Pose2 global_to_world;
  geometry::Aabb extent;
};

/// Artifact-cache traffic of one run: how much of each stage was served
/// from the content-addressed cache instead of recomputed. All zeros when no
/// cache is attached (cold runs) — reuse never changes the result bytes,
/// only where they came from.
struct CacheReuseStats {
  std::size_t pairs_reused = 0;
  std::size_t pairs_total = 0;
  std::size_t rooms_reused = 0;
  std::size_t rooms_total = 0;
  bool skeleton_reused = false;
  bool arrange_reused = false;
  std::uint64_t artifact_hits = 0;    // this run's lookups that hit
  std::uint64_t artifact_misses = 0;  // this run's lookups that missed
  /// Entries the shared cache dropped (FIFO pressure, fault-forced evicts)
  /// over its lifetime up to the end of this run.
  std::uint64_t artifact_invalidations = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Per-stage wall-clock timings and data-quality counters. Since the
/// observability layer landed this is a *view*: run() computes it from the
/// pipeline's MetricsRegistry counters and the trace span durations rather
/// than from ad-hoc member fields.
struct PipelineDiagnostics {
  std::size_t videos_ingested = 0;
  std::size_t trajectories_kept = 0;
  std::size_t trajectories_dropped = 0;   // unqualified-data filter
  std::size_t trajectories_placed = 0;    // in the main aggregated component
  std::size_t match_edges = 0;
  std::size_t panoramas_attempted = 0;
  std::size_t panoramas_stitched = 0;
  std::size_t rooms_reconstructed = 0;
  double extract_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double skeleton_seconds = 0.0;
  double rooms_seconds = 0.0;
  double arrange_seconds = 0.0;
  /// S2 memo cache traffic during this run (0/0 when the cache is disabled).
  std::size_t s2_cache_hits = 0;
  std::size_t s2_cache_misses = 0;
  /// Artifact-cache reuse during this run (all zeros when detached).
  CacheReuseStats cache;
};

/// One reconstructed room before floor-plan merge, with provenance.
struct ReconstructedRoom {
  room::RoomLayout layout;
  geometry::Vec2 camera_global;   // where the panorama was taken
  geometry::Vec2 center_global;   // implied room center
  double orientation_global = 0.0;
  std::size_t trajectory_index = 0;
  int true_room_id = -1;          // evaluation only
};

/// One degradation decision made during a run: a stage (or one work item of
/// a stage) failed and the pipeline substituted a reduced result instead of
/// aborting. Events are merged in stage/item order, so the list is
/// deterministic at any thread count.
struct DegradationEvent {
  std::string stage;   // "aggregate", "skeleton", "panorama", "layout", ...
  common::Error error; // code "fault.injected" or "stage.exception"
  std::string detail;  // item identity ("candidate 3 of trajectory 7")
  /// What the pipeline did about it.
  enum class Action { kSalvaged, kLost, kSkipped } action = Action::kLost;
};

/// Itemized account of what a degraded run salvaged and lost — the paper's
/// crowdsourcing premise means partial results beat no results, but only if
/// the caller can see what is missing.
struct DegradationReport {
  std::vector<DegradationEvent> events;
  std::size_t rooms_lost = 0;       // candidates that produced no room
  std::size_t rooms_salvaged = 0;   // single-keyframe fallback layouts
  std::size_t uploads_lost_decode = 0;  // filled in by CrowdMapService
  std::size_t sensor_dropouts = 0;      // filled in by CrowdMapService

  [[nodiscard]] bool degraded() const noexcept {
    return !events.empty() || uploads_lost_decode > 0 || sensor_dropouts > 0;
  }
  /// Canonical one-line-per-event rendering; byte-stable across runs and
  /// thread counts, so chaos tests compare reports with string equality.
  [[nodiscard]] std::string to_string() const;
};

/// Full pipeline result.
struct PipelineResult {
  floorplan::FloorPlan plan;
  trajectory::AggregationResult aggregation;
  mapping::PathSkeleton skeleton;
  /// The accumulated occupancy evidence (coverage analysis reads it).
  mapping::OccupancyGrid occupancy{geometry::Aabb{{0, 0}, {1, 1}}, 1.0};
  std::vector<ReconstructedRoom> rooms;
  PipelineDiagnostics diagnostics;
  /// What this run salvaged/lost under faults; empty on a clean run.
  DegradationReport degradation;
  /// Span tree of this pipeline's lifetime: per-upload "extract" spans plus
  /// one "run" span with the stage spans beneath it.
  obs::SpanRecord trace;
};

/// The reconstruction engine. INTERNAL-ONLY construction: since the
/// versioned facade landed (src/api/crowdmap.hpp), code outside src/ goes
/// through api::v1::Client (or core::IncrementalPlanner for embedded use)
/// rather than building pipelines directly — the facade owns corpus
/// management, artifact caching and degradation reporting, and is the
/// surface the compatibility guarantees cover. Direct construction outside
/// src/ is flagged by the crowdmap_lint `pipeline-construction` rule.
class CrowdMapPipeline {
 public:
  /// `registry` defaults to a fresh per-pipeline registry so counters don't
  /// bleed across runs; pass a shared one to aggregate several pipelines.
  explicit CrowdMapPipeline(PipelineConfig config = {},
                            std::shared_ptr<obs::MetricsRegistry> registry = nullptr);

  /// Ingests one upload: extracts the trajectory (dead reckoning +
  /// key-frames) and discards the raw pixels. Unqualified uploads (too few
  /// key-frames, implausible motion) are filtered here.
  void ingest(const sim::SensorRichVideo& video);

  /// Ingests a pre-extracted trajectory (e.g. from a stored dataset).
  void ingest_trajectory(trajectory::Trajectory traj);

  /// Ingest with a precomputed content key (IncrementalPlanner hashes each
  /// trajectory once at corpus admission instead of per run).
  void ingest_trajectory(trajectory::Trajectory traj,
                         const cache::ArtifactKey& content_key);

  /// The unqualified-data gates ingest_trajectory applies, as a pure
  /// predicate — CrowdMapService uses the same one so its kept-upload list
  /// matches the pipeline's exactly.
  [[nodiscard]] static bool passes_quality_gates(
      const trajectory::Trajectory& traj, const PipelineConfig& config);

  /// Runs aggregation, skeleton reconstruction, room layout modeling and
  /// force-directed arrangement over everything ingested so far. The
  /// parallel stages are bit-deterministic: the same config produces the
  /// same result at any thread count (see docs/PERFORMANCE.md).
  [[nodiscard]] PipelineResult run(
      const std::optional<WorldFrame>& frame = std::nullopt);

  /// Shares an external worker pool (e.g. CrowdMapService's extraction pool)
  /// instead of the pipeline lazily creating its own from
  /// config.parallel.threads. Not owned; must outlive the pipeline. Pass
  /// nullptr to return to the config-driven pool.
  void set_thread_pool(common::ThreadPool* pool) noexcept {
    external_pool_ = pool;
  }

  /// Attaches a content-addressed artifact cache (docs/INCREMENTAL.md): the
  /// pair, room, skeleton and arrange seams then consult it before
  /// recomputing. Not owned; must outlive the pipeline; nullptr detaches.
  /// Reuse is byte-transparent — results are identical with or without it.
  void set_artifact_cache(cache::ArtifactCache* cache) noexcept {
    artifact_cache_ = cache;
  }

  /// Shares an external S2 memo cache (overrides the config-sized owned one)
  /// so S2 scores persist across the fresh pipelines an IncrementalPlanner
  /// builds per refresh. Not owned; nullptr returns to the owned cache.
  void set_s2_cache(common::BoundedMemoCache* cache) noexcept {
    external_s2_cache_ = cache;
  }

  /// Shares an external flight recorder (IncrementalPlanner keeps one across
  /// the fresh pipelines it builds per refresh) instead of the owned one the
  /// pipeline creates when config.flight.enabled. Not owned; must outlive
  /// the pipeline; nullptr returns to the owned recorder.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept;

  /// The effective flight recorder: the external one if shared, else the
  /// config-built owned one, else nullptr (flight.enabled = false).
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const noexcept {
    return external_flight_ != nullptr ? external_flight_ : owned_flight_.get();
  }

  /// The pool run() fans work out on: the external pool if one was shared,
  /// else a lazily created config-sized pool, else nullptr when
  /// config.parallel.threads == 1 (serial legacy execution).
  [[nodiscard]] common::ThreadPool* worker_pool();

  [[nodiscard]] const std::vector<trajectory::Trajectory>& trajectories()
      const noexcept {
    return trajectories_;
  }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t dropped_count() const noexcept {
    return trajectories_dropped_->value() - dropped_baseline_;
  }

  /// The pipeline's metrics registry (counters, stage latency histograms).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics_registry()
      const noexcept {
    return registry_;
  }
  /// Live trace; PipelineResult::trace is its snapshot at the end of run().
  [[nodiscard]] const obs::Trace& trace() const noexcept { return *trace_; }

  /// The realized fault plan (disarmed unless config.faults has settings).
  [[nodiscard]] const common::FaultInjector& fault_injector() const noexcept {
    return faults_;
  }

 private:
  [[nodiscard]] obs::Histogram& stage_histogram(const char* stage);
  /// Counter of injected fires for one fault point (labelled by point name).
  [[nodiscard]] obs::Counter& fault_counter(common::FaultPoint point);

  [[nodiscard]] common::BoundedMemoCache* s2_cache() noexcept {
    return external_s2_cache_ != nullptr ? external_s2_cache_ : s2_cache_.get();
  }

  PipelineConfig config_;
  std::vector<trajectory::Trajectory> trajectories_;
  /// Content key per kept trajectory ({0,0} = not yet hashed; run() fills
  /// missing keys lazily when an artifact cache is attached).
  std::vector<cache::ArtifactKey> content_keys_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::Trace> trace_;
  common::ThreadPool* external_pool_ = nullptr;
  std::unique_ptr<common::ThreadPool> owned_pool_;
  std::unique_ptr<common::BoundedMemoCache> s2_cache_;
  common::BoundedMemoCache* external_s2_cache_ = nullptr;
  cache::ArtifactCache* artifact_cache_ = nullptr;
  std::unique_ptr<obs::FlightRecorder> owned_flight_;
  obs::FlightRecorder* external_flight_ = nullptr;
  obs::Counter* videos_ingested_ = nullptr;
  obs::Counter* trajectories_kept_ = nullptr;
  obs::Counter* trajectories_dropped_ = nullptr;
  obs::Counter* trajectories_placed_ = nullptr;
  obs::Counter* match_edges_ = nullptr;
  obs::Counter* panoramas_attempted_ = nullptr;
  obs::Counter* panoramas_stitched_ = nullptr;
  obs::Counter* rooms_reconstructed_ = nullptr;
  obs::Counter* s2_cache_hits_ = nullptr;
  obs::Counter* s2_cache_misses_ = nullptr;
  obs::Counter* stages_degraded_ = nullptr;
  common::FaultInjector faults_;
  /// Ingest-counter values at construction: a shared registry carries other
  /// pipelines' traffic, and diagnostics report this pipeline's delta only.
  std::uint64_t ingested_baseline_ = 0;
  std::uint64_t kept_baseline_ = 0;
  std::uint64_t dropped_baseline_ = 0;
  /// run() invocations so far; keys whole-stage fault decisions so repeated
  /// runs of one pipeline see independent (but reproducible) outcomes.
  std::uint64_t run_serial_ = 0;
};

}  // namespace crowdmap::core

#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/log.hpp"
#include "common/simd.hpp"
#include "core/stage_artifacts.hpp"
#include "mapping/occupancy.hpp"

namespace crowdmap::core {

namespace {

/// Runs one stage body under the fault/exception policy: an injected fault
/// or a thrown exception becomes an Error the caller degrades on, instead of
/// tearing down the whole reconstruction.
template <typename Fn>
auto run_guarded(common::FaultInjector& faults, common::FaultPoint point,
                 std::uint64_t key, const char* stage, Fn&& fn)
    -> common::Expected<std::invoke_result_t<Fn>> {
  if (faults.should_fire(point, key)) {
    return common::make_error(
        "fault.injected", std::string(common::fault_point_name(point)));
  }
  try {
    return fn();
  } catch (const std::exception& e) {
    return common::make_error(std::string(stage) + ".exception", e.what());
  }
}

const char* action_name(DegradationEvent::Action action) {
  switch (action) {
    case DegradationEvent::Action::kSalvaged: return "salvaged";
    case DegradationEvent::Action::kLost: return "lost";
    case DegradationEvent::Action::kSkipped: return "skipped";
  }
  return "?";
}

}  // namespace

std::string CacheReuseStats::to_string() const {
  std::ostringstream out;
  out << "cache: pairs " << pairs_reused << "/" << pairs_total << " rooms "
      << rooms_reused << "/" << rooms_total << " skeleton "
      << (skeleton_reused ? "reused" : "computed") << " arrange "
      << (arrange_reused ? "reused" : "computed") << " hits=" << artifact_hits
      << " misses=" << artifact_misses
      << " invalidations=" << artifact_invalidations;
  return out.str();
}

std::string DegradationReport::to_string() const {
  std::ostringstream out;
  out << "degradation: events=" << events.size()
      << " rooms_lost=" << rooms_lost << " rooms_salvaged=" << rooms_salvaged
      << " uploads_lost_decode=" << uploads_lost_decode
      << " sensor_dropouts=" << sensor_dropouts;
  for (const auto& ev : events) {
    out << "\n  [" << ev.stage << "] " << ev.error.code << " ("
        << ev.error.message << ") " << ev.detail << " -> "
        << action_name(ev.action);
  }
  return out.str();
}

PipelineConfig PipelineConfig::fast_profile() {
  PipelineConfig config;
  // The paper's 20,000-hypothesis sweep stays in config.layout; the test
  // profile declares its 10x fidelity cut through the explicit cap instead of
  // silently overwriting the sampled-model count.
  config.layout_hypothesis_cap = 2000;
  config.stitch.output_width = 512;
  config.stitch.output_height = 128;
  return config;
}

CrowdMapPipeline::CrowdMapPipeline(PipelineConfig config,
                                   std::shared_ptr<obs::MetricsRegistry> registry)
    : config_(std::move(config)),
      registry_(registry ? std::move(registry)
                         : std::make_shared<obs::MetricsRegistry>()),
      trace_(std::make_shared<obs::Trace>("pipeline")) {
  // Process-wide dispatch switches; both are result-invariant (SimdConfig).
  common::simd::set_force_scalar(config_.simd.force_scalar);
  common::simd::set_match_tile(config_.simd.match_tile);
  videos_ingested_ = &registry_->counter(
      "crowdmap_videos_ingested_total", {}, "Uploads presented to the pipeline");
  trajectories_kept_ = &registry_->counter(
      "crowdmap_trajectories_kept_total", {},
      "Trajectories surviving the unqualified-data filter");
  trajectories_dropped_ = &registry_->counter(
      "crowdmap_trajectories_dropped_total", {},
      "Uploads rejected by the unqualified-data filter");
  trajectories_placed_ = &registry_->counter(
      "crowdmap_trajectories_placed_total", {},
      "Trajectories placed in the main aggregated component");
  match_edges_ = &registry_->counter(
      "crowdmap_match_edges_total", {}, "Accepted pairwise match edges");
  panoramas_attempted_ = &registry_->counter(
      "crowdmap_panoramas_attempted_total", {}, "SRS panorama stitch attempts");
  panoramas_stitched_ = &registry_->counter(
      "crowdmap_panoramas_stitched_total", {},
      "Panoramas with sufficient angular coverage");
  rooms_reconstructed_ = &registry_->counter(
      "crowdmap_rooms_reconstructed_total", {},
      "Rooms surviving layout estimation and dedup");
  s2_cache_hits_ = &registry_->counter(
      "crowdmap_s2_cache_hits_total", {},
      "S2 SURF match-score memo cache hits");
  s2_cache_misses_ = &registry_->counter(
      "crowdmap_s2_cache_misses_total", {},
      "S2 SURF match-score memo cache misses");
  stages_degraded_ = &registry_->counter(
      "crowdmap_pipeline_degradation_events_total", {},
      "Stage failures the pipeline degraded through instead of aborting");
  if (config_.parallel.s2_cache_capacity > 0) {
    s2_cache_ = std::make_unique<common::BoundedMemoCache>(
        config_.parallel.s2_cache_capacity);
  }
  // With a shared registry (IncrementalPlanner builds a fresh pipeline per
  // refresh against the service's registry) the ingest counters carry prior
  // pipelines' traffic; diagnostics must report this pipeline's share only.
  ingested_baseline_ = videos_ingested_->value();
  kept_baseline_ = trajectories_kept_->value();
  dropped_baseline_ = trajectories_dropped_->value();
  faults_.arm(config_.faults);
  if (config_.flight.enabled) {
    obs::FlightOptions flight_options;
    flight_options.ring_capacity = config_.flight.ring_capacity;
    flight_options.dump_on_anomaly = config_.flight.dump_on_anomaly;
    owned_flight_ = std::make_unique<obs::FlightRecorder>(flight_options);
    owned_flight_->set_dump_on_anomaly(config_.flight.dump_on_anomaly);
    trace_->set_flight_recorder(owned_flight_.get());
  }
}

void CrowdMapPipeline::set_flight_recorder(obs::FlightRecorder* flight) noexcept {
  external_flight_ = flight;
  trace_->set_flight_recorder(flight_recorder());
}

obs::Counter& CrowdMapPipeline::fault_counter(common::FaultPoint point) {
  return registry_->counter(
      "crowdmap_faults_injected_total",
      {{"point", std::string(common::fault_point_name(point))}},
      "Fault-point fires injected by the chaos plan");
}

common::ThreadPool* CrowdMapPipeline::worker_pool() {
  if (external_pool_ != nullptr) return external_pool_;
  if (owned_pool_) return owned_pool_.get();
  std::size_t threads = config_.parallel.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  // threads counts the calling thread, so a pool only pays off above 1; the
  // serial path (no pool) is the exact legacy execution order.
  if (threads <= 1) return nullptr;
  owned_pool_ = std::make_unique<common::ThreadPool>(threads - 1);
  return owned_pool_.get();
}

obs::Histogram& CrowdMapPipeline::stage_histogram(const char* stage) {
  return registry_->histogram("crowdmap_stage_seconds", {{"stage", stage}}, {},
                              "Per-stage wall-clock latency");
}

void CrowdMapPipeline::ingest(const sim::SensorRichVideo& video) {
  auto span = trace_->scoped("extract");
  trajectory::Trajectory traj =
      trajectory::extract_trajectory(video, config_.extraction);
  stage_histogram("extract").observe(span.end());
  ingest_trajectory(std::move(traj));
}

bool CrowdMapPipeline::passes_quality_gates(const trajectory::Trajectory& traj,
                                            const PipelineConfig& config) {
  // Unqualified-data gates ("divide and conquer" filtering, §I challenge 1).
  const bool too_few_frames = traj.keyframes.size() < config.min_keyframes;
  const bool no_motion =
      sensors::track_length(traj.points) < config.min_track_length &&
      traj.keyframes.size() < 8;  // SRS-only clips are legitimately stationary
  return !(too_few_frames || no_motion);
}

void CrowdMapPipeline::ingest_trajectory(trajectory::Trajectory traj) {
  ingest_trajectory(std::move(traj), cache::ArtifactKey{});
}

void CrowdMapPipeline::ingest_trajectory(trajectory::Trajectory traj,
                                         const cache::ArtifactKey& content_key) {
  videos_ingested_->increment();
  if (!passes_quality_gates(traj, config_)) {
    trajectories_dropped_->increment();
    CROWDMAP_LOG(kInfo, "pipeline")
        << "dropped unqualified upload video_id=" << traj.video_id
        << " keyframes=" << traj.keyframes.size();
    return;
  }
  trajectories_kept_->increment();
  trajectories_.push_back(std::move(traj));
  content_keys_.push_back(content_key);
}

PipelineResult CrowdMapPipeline::run(const std::optional<WorldFrame>& frame) {
  PipelineResult result;
  // Counters are cumulative over the pipeline's lifetime; remember the
  // starting values so the diagnostics view reports this run's deltas.
  const std::uint64_t placed_before = trajectories_placed_->value();
  const std::uint64_t edges_before = match_edges_->value();
  const std::uint64_t attempted_before = panoramas_attempted_->value();
  const std::uint64_t stitched_before = panoramas_stitched_->value();
  const std::uint64_t rooms_before = rooms_reconstructed_->value();
  common::BoundedMemoCache* s2 = s2_cache();
  const std::uint64_t cache_hits_before = s2 ? s2->hits() : 0;
  const std::uint64_t cache_misses_before = s2 ? s2->misses() : 0;
  const auto& fault_points = common::all_fault_points();
  std::vector<std::uint64_t> fires_before(fault_points.size());
  for (std::size_t i = 0; i < fires_before.size(); ++i) {
    fires_before[i] = faults_.fires(fault_points[i]);
  }

  // Whole-stage fault decisions key on the run ordinal so repeated runs of
  // one pipeline see independent (but reproducible) outcomes.
  const std::uint64_t run_key = run_serial_++;

  // Artifact-cache bookkeeping. Traffic is counted in per-run atomics (the
  // cache object may be shared by other pipelines, so global-counter deltas
  // would misattribute), and invalidations are reported from a start/end
  // snapshot — exact in the planner's one-refresh-at-a-time usage.
  cache::ArtifactCache* artifacts = artifact_cache_;
  std::atomic<std::uint64_t> artifact_hits{0};
  std::atomic<std::uint64_t> artifact_misses{0};
  std::atomic<std::size_t> pairs_reused{0};
  std::atomic<std::size_t> rooms_reused{0};
  bool skeleton_reused = false;
  bool arrange_reused = false;
  std::size_t rooms_total = 0;
  const std::uint64_t invalidations_before =
      artifacts != nullptr ? artifacts->invalidations() : 0;
  if (artifacts != nullptr) {
    // Content keys for trajectories ingested without one (hashing is cheap
    // relative to any cached stage, and each slot is independent).
    common::ThreadPool* pool = worker_pool();
    common::parallel_for(pool, trajectories_.size(), [&](std::size_t i) {
      if (content_keys_[i] == cache::ArtifactKey{}) {
        content_keys_[i] = trajectory_content_key(trajectories_[i]);
      }
    });
  }

  // Flight recording: stage boundaries advance the recorder's logical tick
  // (the deterministic half of every event's dual stamp), and the shared
  // artifact cache mirrors its traffic into this run's recorder. Detached
  // again before returning — the cache may outlive a pipeline-owned recorder.
  obs::FlightRecorder* flight = flight_recorder();
  if (artifacts != nullptr) artifacts->set_flight_recorder(flight);
  if (flight != nullptr) flight->advance_tick();

  // Degradation bookkeeping: every substituted result is itemized so the
  // caller can tell a clean plan from a salvaged one. Only ever called from
  // the orchestrating thread (parallel stages merge their event slots here),
  // so the flight events it records are deterministic.
  const auto push_event = [&](DegradationEvent event) {
    CROWDMAP_LOG(kWarn, "pipeline")
        << "degraded stage " << event.stage << ": " << event.error.code << " ("
        << event.error.message << ") " << event.detail << " -> "
        << action_name(event.action);
    stages_degraded_->increment();
    if (flight != nullptr) {
      flight->record_named(obs::FlightEventKind::kDegradation, 0, event.stage,
                           flight->intern(event.detail));
    }
    result.degradation.events.push_back(std::move(event));
  };
  const auto record = [&](const char* stage, common::Error error,
                          std::string detail, DegradationEvent::Action action) {
    DegradationEvent event;
    event.stage = stage;
    event.error = std::move(error);
    event.detail = std::move(detail);
    event.action = action;
    push_event(std::move(event));
  };

  auto run_span = trace_->scoped("run");

  // ---- Sub-process 1a: key-frame based trajectory aggregation (§III.B.I).
  {
    auto span = trace_->scoped("aggregate");
    auto aggregated = run_guarded(
        faults_, common::faults::kStageAggregateFail, run_key, "aggregate",
        [&] {
          trajectory::AggregationRuntime agg_runtime;
          agg_runtime.pool =
              config_.parallel.pairwise_matching ? worker_pool() : nullptr;
          agg_runtime.s2_cache = s2_cache();
          if (artifacts != nullptr) {
            agg_runtime.pair_lookup =
                [&](std::size_t i,
                    std::size_t j) -> std::optional<trajectory::PairDecision> {
              const cache::ArtifactKey key = pair_decision_key(
                  content_keys_[i], content_keys_[j], config_.aggregation);
              if (auto payload =
                      artifacts->lookup(cache::Family::kPairMatch, key)) {
                if (auto decision = decode_pair_decision(*payload)) {
                  artifact_hits.fetch_add(1, std::memory_order_relaxed);
                  pairs_reused.fetch_add(1, std::memory_order_relaxed);
                  return decision;
                }
              }
              artifact_misses.fetch_add(1, std::memory_order_relaxed);
              return std::nullopt;
            };
            agg_runtime.pair_store = [&](std::size_t i, std::size_t j,
                                         const trajectory::PairDecision& d) {
              artifacts->insert(
                  cache::Family::kPairMatch,
                  pair_decision_key(content_keys_[i], content_keys_[j],
                                    config_.aggregation),
                  encode_pair_decision(d));
            };
          }
          return trajectory::aggregate_trajectories(
              trajectories_, config_.aggregation, agg_runtime);
        });
    if (artifacts != nullptr) {
      const std::size_t n = trajectories_.size();
      trace_->annotate("cache",
                       std::to_string(pairs_reused.load()) + "/" +
                           std::to_string(n > 1 ? n * (n - 1) / 2 : 0));
    }
    if (aggregated.ok()) {
      result.aggregation = std::move(aggregated).take();
    } else {
      // No placements: downstream stages see an all-unplaced run and the
      // result degenerates to an empty (but well-formed) plan.
      result.aggregation.global_pose.assign(trajectories_.size(),
                                            std::nullopt);
      record("aggregate", aggregated.error(), "whole stage",
             DegradationEvent::Action::kLost);
    }
    result.diagnostics.aggregate_seconds = span.end();
    stage_histogram("aggregate").observe(result.diagnostics.aggregate_seconds);
  }
  if (flight != nullptr) flight->advance_tick();
  trajectories_placed_->increment(result.aggregation.placed_count);
  match_edges_->increment(result.aggregation.edges.size());

  // Transform into the output frame (identity unless the caller provided an
  // alignment).
  const geometry::Pose2 to_world =
      frame ? frame->global_to_world : geometry::Pose2{};

  // Collect placed points to size the occupancy grid.
  std::vector<geometry::Vec2> all_points;
  for (std::size_t i = 0; i < trajectories_.size(); ++i) {
    if (!result.aggregation.global_pose[i]) continue;
    for (const auto& p : trajectories_[i].points) {
      all_points.push_back(
          to_world.apply(result.aggregation.global_pose[i]->apply(p.position)));
    }
  }

  geometry::Aabb extent;
  if (frame) {
    extent = frame->extent;
  } else if (!all_points.empty()) {
    extent = {{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()},
              {std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()}};
    for (const auto p : all_points) {
      extent.min.x = std::min(extent.min.x, p.x);
      extent.min.y = std::min(extent.min.y, p.y);
      extent.max.x = std::max(extent.max.x, p.x);
      extent.max.y = std::max(extent.max.y, p.y);
    }
    extent = extent.expanded(3.0);
  } else {
    extent = {{0, 0}, {10, 10}};
  }

  // ---- Sub-process 1b: floor path skeleton reconstruction (§III.B.II).
  {
    auto span = trace_->scoped("skeleton");
    struct SkeletonOut {
      mapping::OccupancyGrid grid;
      mapping::PathSkeleton skeleton;
    };
    auto skeletonized = run_guarded(
        faults_, common::faults::kStageSkeletonFail, run_key, "skeleton", [&] {
          // Rasterization is cheap and always runs; the cache covers the
          // expensive binarize + alpha-shape + repair work behind it, keyed
          // on the grid *content* so any input change that rasterizes
          // identically still reuses the skeleton.
          mapping::OccupancyGrid grid(extent, config_.grid_cell_size);
          for (std::size_t i = 0; i < trajectories_.size(); ++i) {
            if (!result.aggregation.global_pose[i]) continue;
            std::vector<geometry::Vec2> pts;
            pts.reserve(trajectories_[i].points.size());
            for (const auto& p : trajectories_[i].points) {
              pts.push_back(to_world.apply(
                  result.aggregation.global_pose[i]->apply(p.position)));
            }
            grid.add_polyline(pts, config_.trajectory_brush_width);
          }
          std::optional<cache::ArtifactKey> key;
          if (artifacts != nullptr) {
            key = skeleton_key(grid, config_.skeleton);
            if (auto payload = artifacts->lookup(cache::Family::kSkeleton, *key)) {
              if (auto cached = decode_skeleton(*payload)) {
                artifact_hits.fetch_add(1, std::memory_order_relaxed);
                skeleton_reused = true;
                return SkeletonOut{std::move(grid), std::move(*cached)};
              }
            }
            artifact_misses.fetch_add(1, std::memory_order_relaxed);
          }
          auto skeleton = mapping::reconstruct_skeleton(grid, config_.skeleton);
          if (key) {
            artifacts->insert(cache::Family::kSkeleton, *key,
                              encode_skeleton(skeleton));
          }
          return SkeletonOut{std::move(grid), std::move(skeleton)};
        });
    if (artifacts != nullptr) {
      trace_->annotate("cache", skeleton_reused ? "hit" : "miss");
    }
    if (skeletonized.ok()) {
      result.occupancy = std::move(skeletonized.value().grid);
      result.skeleton = std::move(skeletonized.value().skeleton);
    } else {
      // Rooms-only output: an *empty but correctly-sized* grid and skeleton
      // stand in (not the 1x1 placeholders), so downstream raster
      // comparisons stay cell-compatible; room reconstruction proceeds from
      // the aggregation placements.
      result.occupancy = mapping::OccupancyGrid(extent, config_.grid_cell_size);
      result.skeleton.raster =
          geometry::BoolRaster(extent, config_.grid_cell_size);
      result.skeleton.binarized =
          geometry::BoolRaster(extent, config_.grid_cell_size);
      record("skeleton", skeletonized.error(), "whole stage",
             DegradationEvent::Action::kLost);
    }
    result.diagnostics.skeleton_seconds = span.end();
    stage_histogram("skeleton").observe(result.diagnostics.skeleton_seconds);
  }
  if (flight != nullptr) flight->advance_tick();

  // ---- Sub-process 2: room layout modeling (§III.C).
  {
    auto span = trace_->scoped("rooms");
    // Candidate discovery is cheap and order-defining; run it serially, then
    // fan the expensive stitch + layout search out per candidate. Each item
    // writes only its own slot, and slots merge in discovery order, so the
    // room list is identical at any thread count.
    struct RoomItem {
      std::size_t traj_index;
      room::PanoramaCandidate candidate;
    };
    std::vector<RoomItem> items;
    for (std::size_t i = 0; i < trajectories_.size(); ++i) {
      if (!result.aggregation.global_pose[i]) continue;
      for (auto& cand : room::find_panorama_candidates(trajectories_[i],
                                                       config_.panorama_select)) {
        items.push_back({i, std::move(cand)});
      }
    }

    room::LayoutConfig base_layout = config_.layout;
    if (config_.layout_hypothesis_cap > 0) {
      base_layout.hypotheses =
          std::min(base_layout.hypotheses, config_.layout_hypothesis_cap);
    }
    common::ThreadPool* rooms_pool =
        config_.parallel.room_reconstruction ? worker_pool() : nullptr;
    rooms_total = items.size();
    // Cache bypass under per-item chaos: a cached hit would skip this item's
    // fault interrogations and change which items a budgeted plan fires on,
    // so armed panorama/layout faults force the live path for every item.
    const bool room_faults_armed =
        faults_.point_armed(common::faults::kStagePanoramaFail) ||
        faults_.point_armed(common::faults::kStageLayoutFail);

    std::vector<std::optional<ReconstructedRoom>> slots(items.size());
    // Per-item degradation events land in slots too, merged in discovery
    // order below, so the report is identical at any thread count.
    std::vector<std::optional<DegradationEvent>> event_slots(items.size());
    common::parallel_for(rooms_pool, items.size(), [&](std::size_t idx) {
      const auto& [i, cand] = items[idx];
      const auto& traj = trajectories_[i];
      // Stable per-item fault key: (run ordinal, discovery index).
      const std::uint64_t item_key = common::hash_combine(run_key, idx);
      const auto item_detail = [&] {
        return "candidate " + std::to_string(idx) + " of trajectory " +
               std::to_string(i);
      };
      const auto fail_item = [&](common::Error error,
                                 DegradationEvent::Action action) {
        DegradationEvent event;
        event.stage = "panorama";
        event.error = std::move(error);
        event.detail = item_detail();
        event.action = action;
        event_slots[idx] = std::move(event);
      };

      // Effective vertical focal of the panorama (see DESIGN.md).
      const auto focal_for = [&](const room::PanoramaCandidate& c) {
        room::LayoutConfig layout_config = base_layout;
        if (layout_config.focal_px <= 0 && !c.keyframe_indices.empty()) {
          const auto& kf = traj.keyframes[c.keyframe_indices.front()];
          const double frame_focal =
              kf.gray.width() / (2.0 * std::tan(config_.stitch.fov / 2.0));
          layout_config.focal_px =
              frame_focal * static_cast<double>(config_.stitch.output_height) /
              std::max(kf.gray.height(), 1);
        }
        return layout_config;
      };
      const auto place_room = [&](const room::RoomLayout& layout) {
        ReconstructedRoom rec;
        rec.layout = layout;
        rec.trajectory_index = i;
        rec.true_room_id = traj.true_room_id;
        const geometry::Pose2 place =
            to_world.compose(*result.aggregation.global_pose[i]);
        rec.camera_global = place.apply(cand.cell_center);
        // Room center = camera - (camera offset in the room frame rotated
        // into the panorama frame and then into the world frame).
        const geometry::Vec2 offset_pano =
            rec.layout.camera_offset.rotated(rec.layout.orientation);
        rec.center_global =
            rec.camera_global - offset_pano.rotated(place.theta);
        rec.orientation_global = rec.layout.orientation + place.theta;
        slots[idx] = rec;
      };

      try {
        panoramas_attempted_->increment();
        // Content-addressed reuse of this candidate's stitch + layout work.
        // The artifact replays the counter increments and layout outcome the
        // live path would produce; placement below stays live (it depends on
        // the aggregation poses and is cheap).
        std::optional<cache::ArtifactKey> item_cache_key;
        if (artifacts != nullptr && !room_faults_armed) {
          item_cache_key = room_artifact_key(content_keys_[i], cand,
                                             config_.stitch, focal_for(cand));
          if (auto payload =
                  artifacts->lookup(cache::Family::kRoom, *item_cache_key)) {
            if (auto artifact = decode_room_artifact(*payload)) {
              artifact_hits.fetch_add(1, std::memory_order_relaxed);
              rooms_reused.fetch_add(1, std::memory_order_relaxed);
              if (artifact->stitched) panoramas_stitched_->increment();
              if (artifact->has_layout) place_room(artifact->layout);
              return;
            }
          }
          artifact_misses.fetch_add(1, std::memory_order_relaxed);
        }
        if (faults_.should_fire(common::faults::kStagePanoramaFail,
                                item_key)) {
          // The full stitch "failed": salvage what a single key-frame can
          // still say about the room instead of dropping the candidate.
          const common::Error error = common::make_error(
              "fault.injected",
              std::string(common::fault_point_name(
                  common::faults::kStagePanoramaFail)));
          if (cand.keyframe_indices.empty()) {
            fail_item(error, DegradationEvent::Action::kLost);
            return;
          }
          room::PanoramaCandidate fallback = cand;
          fallback.keyframe_indices = {
              cand.keyframe_indices[cand.keyframe_indices.size() / 2]};
          const auto pano =
              room::stitch_candidate(traj, fallback, config_.stitch);
          const auto layout =
              room::estimate_layout(pano.image, focal_for(fallback),
                                    rooms_pool);
          if (!layout) {
            fail_item(error, DegradationEvent::Action::kLost);
            return;
          }
          place_room(*layout);
          fail_item(error, DegradationEvent::Action::kSalvaged);
          return;
        }
        const auto pano = room::stitch_candidate(traj, cand, config_.stitch);
        RoomArtifact artifact;
        if (pano.coverage < 0.95) {
          // Negative results are artifacts too: an uncoverable candidate
          // stays uncoverable, so the next refresh skips the stitch as well.
          if (item_cache_key) {
            artifacts->insert(cache::Family::kRoom, *item_cache_key,
                              encode_room_artifact(artifact));
          }
          return;
        }
        artifact.stitched = true;
        panoramas_stitched_->increment();
        if (faults_.should_fire(common::faults::kStageLayoutFail, item_key)) {
          DegradationEvent event;
          event.stage = "layout";
          event.error = common::make_error(
              "fault.injected", std::string(common::fault_point_name(
                                    common::faults::kStageLayoutFail)));
          event.detail = item_detail();
          event.action = DegradationEvent::Action::kLost;
          event_slots[idx] = std::move(event);
          return;
        }
        const auto layout =
            room::estimate_layout(pano.image, focal_for(cand), rooms_pool);
        if (layout) {
          artifact.has_layout = true;
          artifact.layout = *layout;
        }
        if (item_cache_key) {
          artifacts->insert(cache::Family::kRoom, *item_cache_key,
                            encode_room_artifact(artifact));
        }
        if (!layout) return;
        place_room(*layout);
      } catch (const std::exception& e) {
        slots[idx].reset();
        fail_item(common::make_error("panorama.exception", e.what()),
                  DegradationEvent::Action::kLost);
      }
    });
    for (auto& slot : slots) {
      if (slot) result.rooms.push_back(std::move(*slot));
    }
    for (auto& event : event_slots) {
      if (!event) continue;
      if (event->action == DegradationEvent::Action::kSalvaged) {
        ++result.degradation.rooms_salvaged;
      } else {
        ++result.degradation.rooms_lost;
      }
      push_event(std::move(*event));
    }
    // Room dedup: nearby implied centers are the same room; best score wins.
    std::sort(result.rooms.begin(), result.rooms.end(),
              [](const ReconstructedRoom& a, const ReconstructedRoom& b) {
                return a.layout.score > b.layout.score;
              });
    std::vector<ReconstructedRoom> unique_rooms;
    for (const auto& rec : result.rooms) {
      const bool duplicate = std::any_of(
          unique_rooms.begin(), unique_rooms.end(), [&](const ReconstructedRoom& u) {
            return u.center_global.distance_to(rec.center_global) <
                   config_.room_merge_distance;
          });
      if (!duplicate) unique_rooms.push_back(rec);
    }
    result.rooms = std::move(unique_rooms);
    rooms_reconstructed_->increment(result.rooms.size());
    if (artifacts != nullptr) {
      trace_->annotate("cache", std::to_string(rooms_reused.load()) + "/" +
                                    std::to_string(rooms_total));
    }
    result.diagnostics.rooms_seconds = span.end();
    stage_histogram("rooms").observe(result.diagnostics.rooms_seconds);
  }
  if (flight != nullptr) flight->advance_tick();

  // ---- Sub-process 3: floor plan modeling (§III.D).
  {
    auto span = trace_->scoped("arrange");
    // Anchor placement (pre-arrangement): also the arrange seam's key input.
    const auto build_plan = [&] {
      floorplan::FloorPlan plan;
      plan.hallway = result.skeleton.raster;
      for (const auto& rec : result.rooms) {
        floorplan::PlacedRoom placed;
        placed.center = rec.center_global;
        placed.anchor = rec.center_global;
        placed.width = rec.layout.width;
        placed.depth = rec.layout.depth;
        placed.orientation = rec.orientation_global;
        placed.true_room_id = rec.true_room_id;
        placed.layout_score = rec.layout.score;
        plan.rooms.push_back(placed);
      }
      return plan;
    };
    auto arranged = run_guarded(
        faults_, common::faults::kStageArrangeFail, run_key, "arrange", [&] {
          floorplan::FloorPlan plan = build_plan();
          std::optional<cache::ArtifactKey> key;
          if (artifacts != nullptr) {
            key = arrange_key(plan.rooms, plan.hallway, config_.arrange);
            if (auto payload =
                    artifacts->lookup(cache::Family::kArrange, *key)) {
              if (auto cached = decode_placed_rooms(*payload);
                  cached && cached->size() == plan.rooms.size()) {
                artifact_hits.fetch_add(1, std::memory_order_relaxed);
                arrange_reused = true;
                plan.rooms = std::move(*cached);
                return plan;
              }
            }
            artifact_misses.fetch_add(1, std::memory_order_relaxed);
          }
          floorplan::arrange_rooms(plan.rooms, plan.hallway, config_.arrange);
          if (key) {
            artifacts->insert(cache::Family::kArrange, *key,
                              encode_placed_rooms(plan.rooms));
          }
          return plan;
        });
    if (artifacts != nullptr) {
      trace_->annotate("cache", arrange_reused ? "hit" : "miss");
    }
    if (arranged.ok()) {
      result.plan = std::move(arranged).take();
    } else {
      // Rooms stay at their panorama-implied anchors: overlapping but
      // complete beats arranged but absent.
      result.plan = build_plan();
      record("arrange", arranged.error(), "rooms left at anchor placement",
             DegradationEvent::Action::kSkipped);
    }
    result.diagnostics.arrange_seconds = span.end();
    stage_histogram("arrange").observe(result.diagnostics.arrange_seconds);
  }
  run_span.end();
  if (flight != nullptr) flight->advance_tick();

  // Flush this run's injected-fire deltas into the labelled fault counters
  // (and the flight recorder — common/ cannot depend on obs/, so fires are
  // recorded here at the flush site rather than inside FaultInjector).
  for (std::size_t i = 0; i < fires_before.size(); ++i) {
    const std::uint64_t delta = faults_.fires(fault_points[i]) - fires_before[i];
    if (delta > 0) {
      fault_counter(fault_points[i]).increment(delta);
      if (flight != nullptr) {
        flight->record_named(obs::FlightEventKind::kFaultFired,
                             static_cast<std::uint32_t>(i),
                             common::fault_point_name(fault_points[i]), delta);
      }
    }
  }

  // Diagnostics view: cumulative counters for ingest-side numbers, this
  // run's deltas for run-side numbers, span durations for stage timings.
  result.trace = trace_->snapshot();
  result.diagnostics.videos_ingested =
      videos_ingested_->value() - ingested_baseline_;
  result.diagnostics.trajectories_kept =
      trajectories_kept_->value() - kept_baseline_;
  result.diagnostics.trajectories_dropped =
      trajectories_dropped_->value() - dropped_baseline_;
  result.diagnostics.trajectories_placed = trajectories_placed_->value() - placed_before;
  result.diagnostics.match_edges = match_edges_->value() - edges_before;
  result.diagnostics.panoramas_attempted =
      panoramas_attempted_->value() - attempted_before;
  result.diagnostics.panoramas_stitched =
      panoramas_stitched_->value() - stitched_before;
  result.diagnostics.rooms_reconstructed =
      rooms_reconstructed_->value() - rooms_before;
  if (s2) {
    result.diagnostics.s2_cache_hits = s2->hits() - cache_hits_before;
    result.diagnostics.s2_cache_misses = s2->misses() - cache_misses_before;
    s2_cache_hits_->increment(result.diagnostics.s2_cache_hits);
    s2_cache_misses_->increment(result.diagnostics.s2_cache_misses);
  }
  result.diagnostics.extract_seconds = result.trace.total_seconds("extract");

  // Artifact-cache reuse view + metric mirrors.
  {
    const std::size_t n = trajectories_.size();
    CacheReuseStats& cs = result.diagnostics.cache;
    cs.pairs_total = n > 1 ? n * (n - 1) / 2 : 0;
    cs.pairs_reused = pairs_reused.load(std::memory_order_relaxed);
    cs.rooms_total = rooms_total;
    cs.rooms_reused = rooms_reused.load(std::memory_order_relaxed);
    cs.skeleton_reused = skeleton_reused;
    cs.arrange_reused = arrange_reused;
    cs.artifact_hits = artifact_hits.load(std::memory_order_relaxed);
    cs.artifact_misses = artifact_misses.load(std::memory_order_relaxed);
    if (artifacts != nullptr) {
      cs.artifact_invalidations = artifacts->invalidations();
      registry_->counter("crowdmap_artifact_cache_hits_total", {},
                         "Artifact cache hits across the stage seams")
          .increment(cs.artifact_hits);
      registry_->counter("crowdmap_artifact_cache_misses_total", {},
                         "Artifact cache misses across the stage seams")
          .increment(cs.artifact_misses);
      registry_->counter("crowdmap_artifact_cache_invalidations_total", {},
                         "Artifact cache entries dropped (FIFO + fault evicts)")
          .increment(cs.artifact_invalidations - invalidations_before);
      const auto reuse_gauge = [&](const char* stage, double value) {
        registry_->gauge("crowdmap_artifact_stage_reuse",
                         {{"stage", stage}},
                         "Fraction of the stage served from the artifact "
                         "cache in the most recent run")
            .set(value);
      };
      reuse_gauge("pair", cs.pairs_total > 0
                              ? static_cast<double>(cs.pairs_reused) /
                                    static_cast<double>(cs.pairs_total)
                              : 0.0);
      reuse_gauge("room", cs.rooms_total > 0
                              ? static_cast<double>(cs.rooms_reused) /
                                    static_cast<double>(cs.rooms_total)
                              : 0.0);
      reuse_gauge("skeleton", cs.skeleton_reused ? 1.0 : 0.0);
      reuse_gauge("arrange", cs.arrange_reused ? 1.0 : 0.0);
    }
  }
  // Detach the recorder from the shared cache: the cache can outlive this
  // pipeline (and with it a pipeline-owned recorder).
  if (artifacts != nullptr) artifacts->set_flight_recorder(nullptr);
  return result;
}

}  // namespace crowdmap::core

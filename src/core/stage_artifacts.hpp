// Cache keying and payload codecs for the pipeline's artifact seams
// (docs/INCREMENTAL.md). Each cacheable stage gets two things here:
//
//   * a key builder hashing the stage's *complete* input set — the content
//     keys of the trajectories it reads plus the slice of PipelineConfig
//     that can change its output (and nothing more, so an irrelevant config
//     edit does not invalidate the world);
//   * an encode/decode pair for the stage's output, built on io::serialize's
//     Writer/Reader so doubles round-trip through exact bit patterns and a
//     replayed artifact is byte-identical to recomputation.
//
// Every key folds in kArtifactSchemaVersion: bumping it on any payload or
// preimage change orphans all previously stored artifacts at once instead of
// decoding them wrongly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "core/config.hpp"
#include "floorplan/floorplan.hpp"
#include "io/serialize.hpp"
#include "mapping/occupancy.hpp"
#include "mapping/skeleton.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::core {

/// Bump on ANY change to a key preimage or payload layout below.
inline constexpr std::uint64_t kArtifactSchemaVersion = 1;

// ---------------------------------------------------------- content keys ---

/// Content key of one extracted trajectory: the identity every downstream
/// stage key derives from. Hashes the serialized trajectory plus the
/// full-precision key-frame pixels (encode_trajectory quantizes them to
/// 8 bits; the stitcher consumes the exact floats, so the key must too).
[[nodiscard]] cache::ArtifactKey trajectory_content_key(
    const trajectory::Trajectory& traj);

// ------------------------------------------------------------- pair seam ---

/// Key of one pairwise match decision: both trajectories' content keys plus
/// everything MatchConfig-shaped that steers the comparison. Relaxation and
/// outlier parameters are excluded on purpose — they act downstream in
/// place_edges, which always runs live.
[[nodiscard]] cache::ArtifactKey pair_decision_key(
    const cache::ArtifactKey& content_a, const cache::ArtifactKey& content_b,
    const trajectory::AggregationConfig& config);

[[nodiscard]] io::Bytes encode_pair_decision(
    const trajectory::PairDecision& decision);
/// nullopt on malformed payload (caller treats it as a cache miss).
[[nodiscard]] std::optional<trajectory::PairDecision> decode_pair_decision(
    const io::Bytes& data);

// ------------------------------------------------------------- room seam ---

/// Cached outcome of one panorama candidate: stitch + layout estimation, up
/// to but excluding placement (placement depends on the aggregation poses
/// and is cheap, so it stays live). The flags replay the pipeline's
/// panoramas_attempted / panoramas_stitched counters exactly.
struct RoomArtifact {
  bool stitched = false;    // panorama coverage cleared the 0.95 gate
  bool has_layout = false;  // estimate_layout returned a value
  room::RoomLayout layout;  // valid iff has_layout
};

/// Key of one candidate's stitch+layout work: the trajectory's content key,
/// the candidate (key-frame subset + cell center), the stitcher parameters
/// and the *effective* layout config (hypothesis cap already applied;
/// scoring_shards excluded — it is result-independent work granularity).
[[nodiscard]] cache::ArtifactKey room_artifact_key(
    const cache::ArtifactKey& content, const room::PanoramaCandidate& candidate,
    const vision::StitchParams& stitch, const room::LayoutConfig& layout);

[[nodiscard]] io::Bytes encode_room_artifact(const RoomArtifact& artifact);
[[nodiscard]] std::optional<RoomArtifact> decode_room_artifact(
    const io::Bytes& data);

// --------------------------------------------------------- skeleton seam ---

/// Key of the skeleton stage: the occupancy grid *content* (extent, cell
/// size, every access count's bit pattern) plus SkeletonConfig. Keyed on the
/// rasterized grid rather than on the placed trajectories so any input
/// change that rasterizes identically still hits.
[[nodiscard]] cache::ArtifactKey skeleton_key(const mapping::OccupancyGrid& grid,
                                              const mapping::SkeletonConfig& config);

[[nodiscard]] io::Bytes encode_skeleton(const mapping::PathSkeleton& skeleton);
[[nodiscard]] std::optional<mapping::PathSkeleton> decode_skeleton(
    const io::Bytes& data);

// ---------------------------------------------------------- arrange seam ---

/// Key of the arrangement stage: the pre-arrangement room placements, the
/// hallway raster content and ArrangeConfig.
[[nodiscard]] cache::ArtifactKey arrange_key(
    const std::vector<floorplan::PlacedRoom>& rooms,
    const geometry::BoolRaster& hallway, const floorplan::ArrangeConfig& config);

[[nodiscard]] io::Bytes encode_placed_rooms(
    const std::vector<floorplan::PlacedRoom>& rooms);
[[nodiscard]] std::optional<std::vector<floorplan::PlacedRoom>>
decode_placed_rooms(const io::Bytes& data);

}  // namespace crowdmap::core

#include "core/incremental.hpp"

#include <algorithm>
#include <chrono>

#include "core/stage_artifacts.hpp"

namespace crowdmap::core {

namespace {

constexpr StageInfo kStageDag[] = {
    {"decode", "upload payload", "-"},
    {"extract", "decode", "- (corpus admission; hashed once)"},
    {"aggregate", "extract (all trajectories)", "pair"},
    {"skeleton", "aggregate (placed poses)", "skeleton"},
    {"rooms", "aggregate, extract (key-frames)", "room"},
    {"arrange", "rooms, skeleton", "arrange"},
};

}  // namespace

std::span<const StageInfo> stage_dag() noexcept { return kStageDag; }

IncrementalPlanner::IncrementalPlanner(
    PipelineConfig config, std::shared_ptr<obs::MetricsRegistry> registry)
    : config_(std::move(config)),
      registry_(registry ? std::move(registry)
                         : std::make_shared<obs::MetricsRegistry>()) {
  if (config_.incremental.artifact_cache_bytes > 0) {
    cache_ = std::make_unique<cache::ArtifactCache>(
        config_.incremental.artifact_cache_bytes);
    if (config_.faults.armed()) {
      cache_faults_.arm(config_.faults);
      cache_->set_fault_injector(&cache_faults_);
    }
  }
  if (config_.parallel.s2_cache_capacity > 0) {
    s2_cache_ = std::make_unique<common::BoundedMemoCache>(
        config_.parallel.s2_cache_capacity);
  }
  if (config_.flight.enabled) {
    // One recorder for the planner's whole life: refresh N's events stay in
    // the rings next to refresh N+1's, which is exactly what a post-mortem
    // of "the plan got worse after that upload" needs.
    obs::FlightOptions opts;
    opts.ring_capacity = config_.flight.ring_capacity;
    opts.dump_on_anomaly = config_.flight.dump_on_anomaly;
    flight_ = std::make_unique<obs::FlightRecorder>(opts);
  }
  refresh_hist_ = &registry_->histogram(
      "crowdmap_plan_refresh_seconds", {},
      obs::Histogram::default_latency_buckets(),
      "Wall-clock latency of one incremental floor-plan refresh");
}

bool IncrementalPlanner::ingest(trajectory::Trajectory traj) {
  if (!CrowdMapPipeline::passes_quality_gates(traj, config_)) return false;
  // Hash before taking the lock: content keying is the per-upload cost that
  // replaces the per-corpus rebuild, and it parallelizes across uploads.
  const cache::ArtifactKey key =
      cache_ ? trajectory_content_key(traj) : cache::ArtifactKey{};
  common::MutexLock lock(mutex_);
  // Idempotent by video_id: re-submitting an upload (retry storms, replays
  // after crash recovery) replaces the earlier extraction instead of
  // duplicating a trajectory — the corpus converges to one entry per video.
  for (auto& [existing, existing_key] : corpus_) {
    if (existing.video_id == traj.video_id) {
      existing = std::move(traj);
      existing_key = key;
      return true;
    }
  }
  corpus_.emplace_back(std::move(traj), key);
  return true;
}

std::shared_ptr<const PipelineResult> IncrementalPlanner::refresh(
    const std::optional<WorldFrame>& frame) {
  common::MutexLock refresh_lock(refresh_mutex_);

  std::vector<std::pair<trajectory::Trajectory, cache::ArtifactKey>> corpus;
  {
    common::MutexLock lock(mutex_);
    corpus = corpus_;
  }
  // Refresh order is video_id order regardless of arrival interleaving —
  // the foundation of the incremental == batch property.
  std::stable_sort(corpus.begin(), corpus.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.video_id < b.first.video_id;
                   });

  // A fresh pipeline per refresh is the config hoist: the *expensive*
  // persistent state (artifact cache, S2 memo, hashed corpus) lives in the
  // planner, while per-run state (trace, fault serial) starts clean so a
  // refresh is indistinguishable from a cold pipeline fed the same corpus.
  CrowdMapPipeline pipeline(config_, registry_);
  pipeline.set_artifact_cache(cache_.get());
  pipeline.set_s2_cache(s2_cache_.get());
  if (pool_ != nullptr) pipeline.set_thread_pool(pool_);
  if (obs::FlightRecorder* flight = flight_recorder(); flight != nullptr) {
    pipeline.set_flight_recorder(flight);
  }
  for (auto& [traj, key] : corpus) {
    pipeline.ingest_trajectory(std::move(traj), key);
  }
  const auto started = std::chrono::steady_clock::now();
  auto result = std::make_shared<PipelineResult>(pipeline.run(frame));
  refresh_hist_->observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());

  {
    common::MutexLock lock(mutex_);
    latest_ = result;
    last_reuse_ = result->diagnostics.cache;
  }
  return result;
}

std::shared_ptr<const PipelineResult> IncrementalPlanner::latest() const {
  common::MutexLock lock(mutex_);
  return latest_;
}

CacheReuseStats IncrementalPlanner::last_reuse() const {
  common::MutexLock lock(mutex_);
  return last_reuse_;
}

std::vector<trajectory::Trajectory> IncrementalPlanner::trajectories() const {
  std::vector<trajectory::Trajectory> out;
  {
    common::MutexLock lock(mutex_);
    out.reserve(corpus_.size());
    for (const auto& [traj, key] : corpus_) out.push_back(traj);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const trajectory::Trajectory& a,
                      const trajectory::Trajectory& b) {
                     return a.video_id < b.video_id;
                   });
  return out;
}

std::size_t IncrementalPlanner::corpus_size() const {
  common::MutexLock lock(mutex_);
  return corpus_.size();
}

}  // namespace crowdmap::core

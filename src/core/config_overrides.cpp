#include "core/config_overrides.hpp"

#include <set>
#include <stdexcept>

namespace crowdmap::core {

void apply_config_overrides(PipelineConfig& config,
                            const common::ConfigFile& file) {
  static const std::set<std::string> kKnown = {
      "match.h_s",        "match.h_d",        "match.h_f",
      "match.h_l",        "match.nn_ratio",   "lcss.epsilon",
      "lcss.delta",       "grid.cell_size",   "grid.brush_width",
      "skeleton.alpha",   "skeleton.min_access_count",
      "skeleton.dilate",  "layout.hypotheses", "layout.corner_weight",
      "layout.shards",    "layout.hypothesis_cap",
      "stitch.width",     "stitch.height",    "filter.min_keyframes",
      "parallel.threads", "parallel.s2_cache",
      "faults.seed",      "faults.spec",
  };
  for (const auto& [key, value] : file.entries()) {
    if (kKnown.count(key) == 0) {
      throw std::runtime_error("unknown config key: " + key);
    }
  }

  auto& match = config.aggregation.match;
  match.h_s = file.get_double("match.h_s", match.h_s);
  match.h_d = file.get_double("match.h_d", match.h_d);
  match.h_f = file.get_double("match.h_f", match.h_f);
  match.h_l = file.get_double("match.h_l", match.h_l);
  match.nn_ratio = file.get_double("match.nn_ratio", match.nn_ratio);
  match.lcss.epsilon = file.get_double("lcss.epsilon", match.lcss.epsilon);
  match.lcss.delta = file.get_int("lcss.delta", match.lcss.delta);

  config.grid_cell_size = file.get_double("grid.cell_size", config.grid_cell_size);
  config.trajectory_brush_width =
      file.get_double("grid.brush_width", config.trajectory_brush_width);

  config.skeleton.alpha = file.get_double("skeleton.alpha", config.skeleton.alpha);
  config.skeleton.min_access_count = file.get_double(
      "skeleton.min_access_count", config.skeleton.min_access_count);
  config.skeleton.final_dilate_cells =
      file.get_int("skeleton.dilate", config.skeleton.final_dilate_cells);

  config.layout.hypotheses =
      file.get_int("layout.hypotheses", config.layout.hypotheses);
  config.layout.corner_weight =
      file.get_double("layout.corner_weight", config.layout.corner_weight);
  config.layout.scoring_shards =
      file.get_int("layout.shards", config.layout.scoring_shards);
  config.layout_hypothesis_cap =
      file.get_int("layout.hypothesis_cap", config.layout_hypothesis_cap);
  config.stitch.output_width =
      file.get_int("stitch.width", config.stitch.output_width);
  config.stitch.output_height =
      file.get_int("stitch.height", config.stitch.output_height);

  config.min_keyframes = static_cast<std::size_t>(
      file.get_int("filter.min_keyframes",
                   static_cast<int>(config.min_keyframes)));

  config.parallel.threads = static_cast<std::size_t>(
      file.get_int("parallel.threads",
                   static_cast<int>(config.parallel.threads)));
  config.parallel.s2_cache_capacity = static_cast<std::size_t>(
      file.get_int("parallel.s2_cache",
                   static_cast<int>(config.parallel.s2_cache_capacity)));

  // Chaos plan: faults.seed keys the hash decisions, faults.spec arms the
  // points ("decode.fail=0.2,stage.panorama_fail=0.1@3").
  config.faults.seed = static_cast<std::uint64_t>(
      file.get_int("faults.seed", static_cast<int>(config.faults.seed)));
  if (const auto spec = file.get("faults.spec")) {
    auto settings = common::parse_fault_settings(*spec);
    if (!settings.ok()) {
      throw std::runtime_error("config key 'faults.spec': " +
                               settings.error().message);
    }
    config.faults.settings = std::move(settings).take();
  }
}

}  // namespace crowdmap::core

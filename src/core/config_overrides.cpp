#include "core/config_overrides.hpp"

#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/fault.hpp"
#include "common/log.hpp"

namespace crowdmap::core {

namespace {

// ------------------------------------------------------- value parsing ---
// Mirrors common::ConfigFile's strictness: the whole token must parse.

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::runtime_error("config key '" + key +
                             "': not a number: " + value);
  }
  return parsed;
}

int parse_int(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::runtime_error("config key '" + key +
                             "': not an integer: " + value);
  }
  return static_cast<int>(parsed);
}

std::size_t parse_size(const std::string& key, const std::string& value) {
  const int parsed = parse_int(key, value);
  if (parsed < 0) {
    throw std::runtime_error("config key '" + key +
                             "': must be >= 0: " + value);
  }
  return static_cast<std::size_t>(parsed);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  throw std::runtime_error("config key '" + key +
                           "': not a boolean: " + value);
}

// ---------------------------------------------------------- the table ---
// Sorted by canonical key. CM_KEY_* wrap the repetitive setter lambdas so a
// row stays one readable line; the table itself is the single source the
// apply path, --help-config and docs/CONFIG.md all share.

#define CM_KEY_DOUBLE(key_str, alias_str, target, help_str)              \
  {key_str, alias_str, "double", help_str,                               \
   [](PipelineConfig& c, const std::string& v) {                         \
     c.target = parse_double(key_str, v);                                \
   }}
#define CM_KEY_INT(key_str, alias_str, target, help_str)                 \
  {key_str, alias_str, "int", help_str,                                  \
   [](PipelineConfig& c, const std::string& v) {                         \
     c.target = parse_int(key_str, v);                                   \
   }}
#define CM_KEY_SIZE(key_str, alias_str, target, help_str)                \
  {key_str, alias_str, "size", help_str,                                 \
   [](PipelineConfig& c, const std::string& v) {                         \
     c.target = parse_size(key_str, v);                                  \
   }}
#define CM_KEY_BOOL(key_str, alias_str, target, help_str)                \
  {key_str, alias_str, "bool", help_str,                                 \
   [](PipelineConfig& c, const std::string& v) {                         \
     c.target = parse_bool(key_str, v);                                  \
   }}

constexpr ConfigKeyInfo kConfigKeys[] = {
    CM_KEY_SIZE("cache.artifact_bytes", nullptr,
                incremental.artifact_cache_bytes,
                "Artifact-cache byte budget per floor (0 disables reuse)"),
    CM_KEY_BOOL("cache.background_refresh", nullptr,
                incremental.background_refresh,
                "Refresh plans on the worker pool as uploads land"),
    CM_KEY_SIZE("cluster.max_node_queue", nullptr, cluster.max_node_queue,
                "Shed uploads when a node's worker queue exceeds this (0 off)"),
    CM_KEY_SIZE("cluster.nodes", nullptr, cluster.nodes,
                "In-process cluster nodes behind the api::v2 client"),
    CM_KEY_BOOL("cluster.rebalance", nullptr, cluster.rebalance,
                "Eagerly re-replicate shard logs on node join/leave"),
    CM_KEY_SIZE("cluster.replication_factor", "cluster.replicas",
                cluster.replication_factor,
                "Replication-log copies per shard (clamped to node count)"),
    {"faults.seed", nullptr, "int",
     "Seed keying every chaos-plan fire decision",
     [](PipelineConfig& c, const std::string& v) {
       c.faults.seed = static_cast<std::uint64_t>(parse_int("faults.seed", v));
     }},
    {"faults.spec", nullptr, "string",
     "Chaos plan, e.g. decode.fail=0.2,stage.panorama_fail=0.1@3",
     [](PipelineConfig& c, const std::string& v) {
       auto settings = common::parse_fault_settings(v);
       if (!settings.ok()) {
         throw std::runtime_error("config key 'faults.spec': " +
                                  settings.error().message);
       }
       c.faults.settings = std::move(settings).take();
     }},
    CM_KEY_SIZE("filter.min_keyframes", nullptr, min_keyframes,
                "Unqualified-data gate: minimum key-frames per upload"),
    CM_KEY_BOOL("flight.dump_on_anomaly", nullptr, flight.dump_on_anomaly,
                "Auto-dump flight rings on fault/degradation/SLO breach"),
    CM_KEY_BOOL("flight.enabled", nullptr, flight.enabled,
                "Arm the flight recorder (black-box event rings)"),
    CM_KEY_SIZE("flight.ring_capacity", nullptr, flight.ring_capacity,
                "Flight-recorder events retained per thread"),
    CM_KEY_DOUBLE("grid.brush_width", nullptr, trajectory_brush_width,
                  "Occupancy brush width in meters per trajectory stroke"),
    CM_KEY_DOUBLE("grid.cell_size", nullptr, grid_cell_size,
                  "Occupancy-grid cell size in meters"),
    CM_KEY_DOUBLE("layout.corner_weight", nullptr, layout.corner_weight,
                  "Corner-term weight in room-layout scoring"),
    CM_KEY_INT("layout.hypotheses", nullptr, layout.hypotheses,
               "Room-layout hypotheses sampled per panorama"),
    CM_KEY_INT("layout.hypothesis_cap", nullptr, layout_hypothesis_cap,
               "Global cap on layout hypotheses (fast profile)"),
    CM_KEY_INT("layout.scoring_shards", "layout.shards", layout.scoring_shards,
               "Deterministic parallel shards for hypothesis scoring"),
    CM_KEY_INT("lcss.delta", nullptr, aggregation.match.lcss.delta,
               "LCSS index window for trajectory similarity"),
    CM_KEY_DOUBLE("lcss.epsilon", nullptr, aggregation.match.lcss.epsilon,
                  "LCSS distance tolerance in meters"),
    CM_KEY_DOUBLE("match.h_d", nullptr, aggregation.match.h_d,
                  "S2 descriptor-distance gate for key-frame matches"),
    CM_KEY_DOUBLE("match.h_f", nullptr, aggregation.match.h_f,
                  "Fraction of consistent anchors required per pair"),
    CM_KEY_DOUBLE("match.h_l", nullptr, aggregation.match.h_l,
                  "LCSS similarity gate for accepting a pair"),
    CM_KEY_DOUBLE("match.h_s", nullptr, aggregation.match.h_s,
                  "S1 appearance-similarity gate for candidate pairs"),
    CM_KEY_DOUBLE("match.nn_ratio", nullptr, aggregation.match.nn_ratio,
                  "Lowe nearest-neighbor ratio for descriptor matches"),
    CM_KEY_SIZE("parallel.s2_cache_capacity", "parallel.s2_cache",
                parallel.s2_cache_capacity,
                "Bounded S2 match-score memo entries (0 disables)"),
    CM_KEY_SIZE("parallel.threads", nullptr, parallel.threads,
                "Worker threads (0 = all cores, 1 = serial)"),
    CM_KEY_BOOL("simd.force_scalar", nullptr, simd.force_scalar,
                "Route SIMD kernels through the scalar reference path"),
    CM_KEY_SIZE("simd.match_tile", nullptr, simd.match_tile,
                "SoA matcher candidate tile (multiple of 8, clamped to [8,256])"),
    CM_KEY_DOUBLE("skeleton.alpha", nullptr, skeleton.alpha,
                  "Alpha-shape radius for hallway boundary extraction"),
    CM_KEY_INT("skeleton.final_dilate_cells", "skeleton.dilate",
               skeleton.final_dilate_cells,
               "Dilation (cells) applied to the final skeleton raster"),
    CM_KEY_DOUBLE("skeleton.min_access_count", nullptr,
                  skeleton.min_access_count,
                  "Occupancy evidence required to keep a skeleton cell"),
    CM_KEY_DOUBLE("slo.extract_p99_ms", nullptr, slo.extract_p99_ms,
                  "SLO: p99 upload-extraction latency ceiling in ms (0 off)"),
    CM_KEY_INT("slo.ingest_queue_depth_max", nullptr,
               slo.ingest_queue_depth_max,
               "SLO: worker-queue depth ceiling in tasks (0 off)"),
    CM_KEY_DOUBLE("slo.plan_refresh_p99_ms", nullptr, slo.plan_refresh_p99_ms,
                  "SLO: p99 plan-refresh latency ceiling in ms (0 off)"),
    CM_KEY_INT("stitch.height", nullptr, stitch.output_height,
               "Panorama height in pixels"),
    CM_KEY_INT("stitch.width", nullptr, stitch.output_width,
               "Panorama width in pixels"),
    {"storage.dir", nullptr, "string",
     "Durable store directory (empty disables persistence)",
     [](PipelineConfig& c, const std::string& v) { c.storage.dir = v; }},
    CM_KEY_BOOL("storage.fsync", nullptr, storage.fsync,
                "fsync every WAL append and manifest/snapshot install"),
    CM_KEY_SIZE("storage.segment_bytes", nullptr, storage.segment_bytes,
                "WAL segment rotation threshold in bytes"),
    CM_KEY_SIZE("storage.snapshot_every", nullptr, storage.snapshot_every,
                "Auto-checkpoint every N WAL appends (0 = manual only)"),
};

#undef CM_KEY_DOUBLE
#undef CM_KEY_INT
#undef CM_KEY_SIZE
#undef CM_KEY_BOOL

const ConfigKeyInfo* find_binding(const std::string& key, bool* via_alias) {
  for (const ConfigKeyInfo& info : kConfigKeys) {
    if (key == info.key) {
      *via_alias = false;
      return &info;
    }
    if (info.alias != nullptr && key == info.alias) {
      *via_alias = true;
      return &info;
    }
  }
  return nullptr;
}

void warn_deprecated_once(const std::string& alias, const char* canonical) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!warned.insert(alias).second) return;
  }
  CROWDMAP_LOG(kWarn, "config")
      << "config key '" << alias << "' is deprecated; use '" << canonical
      << "'";
}

}  // namespace

std::span<const ConfigKeyInfo> config_key_table() noexcept {
  return kConfigKeys;
}

std::string config_key_help() {
  std::ostringstream out;
  for (const ConfigKeyInfo& info : kConfigKeys) {
    out << "  " << info.key << " (" << info.type << ")";
    for (std::size_t pad = std::string(info.key).size() +
                           std::string(info.type).size();
         pad < 40; ++pad) {
      out << ' ';
    }
    out << info.help;
    if (info.alias != nullptr) {
      out << " [deprecated alias: " << info.alias << "]";
    }
    out << '\n';
  }
  return out.str();
}

void apply_config_overrides(PipelineConfig& config,
                            const common::ConfigFile& file) {
  for (const auto& [key, value] : file.entries()) {
    bool via_alias = false;
    const ConfigKeyInfo* info = find_binding(key, &via_alias);
    if (info == nullptr) {
      throw std::runtime_error("unknown config key: " + key);
    }
    if (via_alias) {
      if (file.has(info->key)) {
        throw std::runtime_error("config key '" + std::string(info->key) +
                                 "' also given through deprecated alias '" +
                                 key + "'");
      }
      warn_deprecated_once(key, info->key);
    }
    info->apply(config, value);
  }
}

}  // namespace crowdmap::core

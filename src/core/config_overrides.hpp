// Binds configuration-file keys onto PipelineConfig so every paper
// threshold is tunable at run time (CLI --config). One table
// (config_key_table) is the single source of truth: apply_config_overrides,
// the CLI's --help-config listing and docs/CONFIG.md all derive from it, so
// the three can never drift. Unknown keys are errors: a typo should fail
// loudly, not silently run defaults.
#pragma once

#include <span>
#include <string>

#include "common/config_file.hpp"
#include "core/config.hpp"

namespace crowdmap::core {

/// One bindable key: canonical spelling, optional deprecated alias, value
/// type, one-line help, and the setter. The table is ordered by key.
struct ConfigKeyInfo {
  const char* key;    // canonical spelling ("layout.scoring_shards")
  const char* alias;  // deprecated spelling still accepted, or nullptr
  const char* type;   // "double" | "int" | "size" | "bool" | "string"
  const char* help;   // one line, shown by --help-config and docs/CONFIG.md
  void (*apply)(PipelineConfig& config, const std::string& value);
};

/// Every supported key, sorted by canonical name.
[[nodiscard]] std::span<const ConfigKeyInfo> config_key_table() noexcept;

/// Human-readable listing of config_key_table() — one "key (type)  help"
/// line per key, with deprecated aliases noted. The CLI prints this for
/// --help-config; docs/CONFIG.md mirrors it (tests/test_config.cpp pins the
/// two together).
[[nodiscard]] std::string config_key_help();

/// Applies overrides in `file` to `config`. Keys are the canonical names in
/// config_key_table(); deprecated aliases are accepted with a once-per-alias
/// warning. Throws std::runtime_error on an unknown key, an unparsable
/// value, or a key given through both its canonical and alias spellings.
void apply_config_overrides(PipelineConfig& config,
                            const common::ConfigFile& file);

}  // namespace crowdmap::core

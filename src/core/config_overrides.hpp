// Binds configuration-file keys onto PipelineConfig so every paper
// threshold is tunable at run time (CLI --config). Unknown keys are errors:
// a typo should fail loudly, not silently run defaults.
#pragma once

#include "common/config_file.hpp"
#include "core/config.hpp"

namespace crowdmap::core {

/// Applies overrides in `file` to `config`. Supported keys:
///   match.h_s match.h_d match.h_f match.h_l match.nn_ratio
///   lcss.epsilon lcss.delta
///   grid.cell_size grid.brush_width
///   skeleton.alpha skeleton.min_access_count skeleton.dilate
///   layout.hypotheses layout.corner_weight layout.shards
///   layout.hypothesis_cap
///   stitch.width stitch.height
///   filter.min_keyframes
///   parallel.threads parallel.s2_cache
///   faults.seed faults.spec
/// faults.spec is a chaos plan in the "point=prob[@budget],..." syntax of
/// common::parse_fault_settings (docs/ROBUSTNESS.md has the catalog).
/// Throws std::runtime_error on an unknown key or unparsable value.
void apply_config_overrides(PipelineConfig& config,
                            const common::ConfigFile& file);

}  // namespace crowdmap::core

// Every tunable of the CrowdMap pipeline in one place, named after the
// paper's thresholds where it defines them (h_g, h_s, h_d, h_f, h_l, h_α,
// ε, δ, the 54.4° FoV, the 20,000 layout hypotheses).
#pragma once

#include <cstddef>

#include "common/fault.hpp"
#include "floorplan/arrange.hpp"
#include "mapping/skeleton.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/trajectory.hpp"
#include "vision/panorama.hpp"

namespace crowdmap::core {

/// Parallel execution of the cloud hot paths (the paper runs these on a
/// Spark cluster; we run them on a shared ThreadPool). Every parallel path
/// is bit-deterministic: the same results at any thread count, including 1.
struct ParallelConfig {
  /// Threads driving run(): pool workers + the calling thread. 0 derives the
  /// count from std::thread::hardware_concurrency(); 1 executes everything
  /// serially on the calling thread (exact legacy behavior, no pool at all).
  std::size_t threads = 0;
  /// Fan the O(N^2) pairwise trajectory matching of aggregation out over the
  /// pool (per-pair results merge deterministically in pair order).
  bool pairwise_matching = true;
  /// Reconstruct rooms (panorama stitch + layout search) in parallel, and
  /// let each layout search shard its hypothesis scoring over the same pool.
  bool room_reconstruction = true;
  /// Entries in the bounded S2 SURF match-score memo cache shared by every
  /// aggregation this pipeline runs (0 disables). Hits skip the expensive
  /// mutual-NN evaluation for key-frame pairs seen in earlier rounds or
  /// re-runs; hit/miss totals are exported through the metrics registry.
  std::size_t s2_cache_capacity = 1 << 15;
};

/// Incremental recomputation (docs/INCREMENTAL.md): the content-addressed
/// artifact cache that lets a refresh after one new upload reuse every stage
/// output whose inputs did not change. Reuse never changes a result — the
/// incremental plan is byte-identical to a cold rebuild by construction.
struct IncrementalConfig {
  /// Byte budget of the artifact cache shared across refreshes of one floor
  /// (0 disables caching entirely; every refresh is then a cold rebuild).
  std::size_t artifact_cache_bytes = std::size_t{32} << 20;
  /// Refresh the floor plan on a background worker after each completed
  /// upload, serving the last complete plan meanwhile (CrowdMapService).
  bool background_refresh = false;
};

/// Flight recorder (docs/OBSERVABILITY.md): always-on black-box event rings
/// behind every pipeline/service this config builds. Recording is cheap
/// (tens of ns/event, bench/micro_obs.cpp) and never changes an output bit —
/// the determinism suite pins serialized FloorPlans recorder-on == off.
struct FlightConfig {
  /// Arm the recorder (false builds it disarmed: one branch per record call).
  bool enabled = true;
  /// Events retained per recording thread before ring wraparound.
  std::size_t ring_capacity = 4096;
  /// Auto-dump the rings to the configured sink when an anomalous event
  /// lands (fault fired, stage degraded, upload quarantined, SLO breached).
  bool dump_on_anomaly = false;
};

/// Declarative service-level objectives the SloWatchdog evaluates against
/// the metrics registry (docs/OBSERVABILITY.md). 0 disables a check.
struct SloConfig {
  /// p99 of crowdmap_plan_refresh_seconds must stay under this many ms.
  double plan_refresh_p99_ms = 0.0;
  /// p99 of crowdmap_extract_seconds must stay under this many ms.
  double extract_p99_ms = 0.0;
  /// crowdmap_queue_depth must stay at or under this many queued tasks.
  int ingest_queue_depth_max = 0;
};

/// SIMD kernel dispatch (src/common/simd.hpp, docs/PERFORMANCE.md). Both
/// knobs are result-invariant by construction — every wrapped kernel is
/// bit-exact scalar vs vector and any legal match tile yields identical
/// matches — so they exist for benchmarking and triage, not correctness.
struct SimdConfig {
  /// Route every wrapped kernel through the scalar reference path (the same
  /// binary, no rebuild). Used by test_simd and the roofline benchmarks.
  bool force_scalar = false;
  /// Candidate tile width of the blocked SoA mutual-NN matcher scan; clamped
  /// to a multiple of 8 in [8, 256]. Output-invariant (partial-distance
  /// early exit only ever skips candidates that cannot win).
  std::size_t match_tile = 64;
};

/// Durable persistence for the cloud DocumentStore (docs/DURABILITY.md).
/// An empty dir leaves the service purely in-memory (the historical
/// behavior); a non-empty dir routes every put/erase/quarantine through the
/// log-structured storage backend on a storage::Env.
struct StorageConfig {
  /// Directory of the log-structured store (MANIFEST, wal-*.log segments,
  /// state-*.snap snapshots). Empty = persistence disabled.
  std::string dir;
  /// Active-segment rotation threshold in bytes.
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// Auto-checkpoint (snapshot + compaction) every N WAL appends; 0 keeps
  /// checkpoints manual (api::Client::checkpoint_storage).
  std::size_t snapshot_every = 0;
  /// fsync every appended record and installed manifest/snapshot. Turning
  /// this off trades the crash-durability guarantee for throughput.
  bool fsync = true;
};

/// Sharded multi-node simulation (docs/CLUSTER.md): N in-process nodes each
/// running a full CrowdMapService, a router sharding uploads by consistent
/// hashing on (building, floor), and primary/replica replication through a
/// deterministic CMWL-framed log. One node (the default) degenerates to the
/// single-service backend — plans stay byte-identical at any node count.
struct ClusterConfig {
  /// In-process node instances behind the api::v2 client (>= 1).
  std::size_t nodes = 1;
  /// Copies of each shard's replication log applied across the ring
  /// (clamped to the node count; 1 = no replicas, primary only).
  std::size_t replication_factor = 2;
  /// Eagerly re-replicate shard logs onto their new owners when membership
  /// changes (node join/leave). Off: new owners catch up lazily on first
  /// access — routing still moves immediately.
  bool rebalance = true;
  /// Shed uploads (api::StatusCode::kShedding) when the acting primary's
  /// worker queue is deeper than this many tasks. 0 disables shedding.
  std::size_t max_node_queue = 0;
};

struct PipelineConfig {
  // §III.B.I — key-frame selection and trajectory extraction.
  trajectory::ExtractionConfig extraction;
  // §III.B.I — hierarchical comparison + LCSS aggregation (h_s, h_d, h_f,
  // ε, δ, h_l live inside).
  trajectory::AggregationConfig aggregation;
  // §III.B.II — occupancy grid and skeleton (h_α).
  double grid_cell_size = 0.5;
  double trajectory_brush_width = 1.0;  // body width rasterized per pass
  mapping::SkeletonConfig skeleton;
  // §III.C — panorama generation and room layout (FoV, 20k hypotheses).
  // The paper stitches 2048x1024 panoramas; our synthetic frames carry less
  // detail, so 512x128 keeps the boundary signal dense (see DESIGN.md).
  room::PanoramaSelectConfig panorama_select;
  vision::StitchParams stitch{.output_width = 512, .output_height = 128};
  room::LayoutConfig layout;
  // §III.D — force-directed arrangement.
  floorplan::ArrangeConfig arrange;
  // Data quality gates ("divide and conquer" filtering of unqualified data).
  std::size_t min_keyframes = 3;   // fewer => upload dropped
  double min_track_length = 1.0;   // meters of believable motion
  // Room dedup: panoramas whose implied centers fall this close describe the
  // same room; the higher-scoring layout wins.
  double room_merge_distance = 2.5;
  /// Explicit ceiling applied to layout.hypotheses at run time (0 = no cap).
  /// The paper's 20,000-model default is affordable now that scoring is
  /// sharded across the worker pool; this cap exists only so reduced-fidelity
  /// profiles (fast_profile, latency experiments) state their cut openly
  /// instead of silently overwriting the sampled-model count.
  int layout_hypothesis_cap = 0;
  /// Worker pool, matching fan-out and S2 memo cache settings.
  ParallelConfig parallel;
  /// SIMD dispatch switches (result-invariant; see SimdConfig).
  SimdConfig simd;
  /// Artifact cache + background refresh (incremental recomputation).
  IncrementalConfig incremental;
  /// Flight-recorder rings (always-on observability).
  FlightConfig flight;
  /// SLO thresholds the service watchdog enforces.
  SloConfig slo;
  /// Seeded fault-injection plan (chaos testing; docs/ROBUSTNESS.md). Empty
  /// settings leave every fault point disarmed — the default costs one
  /// predicted branch per interrogation and changes no output bit.
  common::FaultPlan faults;
  /// Durable persistence of the document store (docs/DURABILITY.md).
  StorageConfig storage;
  /// Sharded multi-node topology behind api::v2 (docs/CLUSTER.md).
  ClusterConfig cluster;

  /// A faster profile for unit/integration tests: the layout sweep capped at
  /// 2,000 hypotheses (a documented 10x fidelity cut vs the paper's 20,000)
  /// and a smaller panorama, same structure.
  [[nodiscard]] static PipelineConfig fast_profile();
};

}  // namespace crowdmap::core

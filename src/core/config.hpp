// Every tunable of the CrowdMap pipeline in one place, named after the
// paper's thresholds where it defines them (h_g, h_s, h_d, h_f, h_l, h_α,
// ε, δ, the 54.4° FoV, the 20,000 layout hypotheses).
#pragma once

#include "floorplan/arrange.hpp"
#include "mapping/skeleton.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/trajectory.hpp"
#include "vision/panorama.hpp"

namespace crowdmap::core {

struct PipelineConfig {
  // §III.B.I — key-frame selection and trajectory extraction.
  trajectory::ExtractionConfig extraction;
  // §III.B.I — hierarchical comparison + LCSS aggregation (h_s, h_d, h_f,
  // ε, δ, h_l live inside).
  trajectory::AggregationConfig aggregation;
  // §III.B.II — occupancy grid and skeleton (h_α).
  double grid_cell_size = 0.5;
  double trajectory_brush_width = 1.0;  // body width rasterized per pass
  mapping::SkeletonConfig skeleton;
  // §III.C — panorama generation and room layout (FoV, 20k hypotheses).
  // The paper stitches 2048x1024 panoramas; our synthetic frames carry less
  // detail, so 512x128 keeps the boundary signal dense (see DESIGN.md).
  room::PanoramaSelectConfig panorama_select;
  vision::StitchParams stitch{.output_width = 512, .output_height = 128};
  room::LayoutConfig layout;
  // §III.D — force-directed arrangement.
  floorplan::ArrangeConfig arrange;
  // Data quality gates ("divide and conquer" filtering of unqualified data).
  std::size_t min_keyframes = 3;   // fewer => upload dropped
  double min_track_length = 1.0;   // meters of believable motion
  // Room dedup: panoramas whose implied centers fall this close describe the
  // same room; the higher-scoring layout wins.
  double room_merge_distance = 2.5;

  /// A faster profile for unit/integration tests: fewer hypotheses and a
  /// smaller panorama, same structure.
  [[nodiscard]] static PipelineConfig fast_profile();
};

}  // namespace crowdmap::core

// IncrementalPlanner — the dependency-tracked scheduler that makes per-upload
// refresh cost O(delta) instead of O(corpus) (docs/INCREMENTAL.md). It models
// the pipeline as the stage DAG
//
//   decode -> extract -> aggregate -> skeleton -> rooms -> arrange
//
// and owns what must persist *between* refreshes for incrementality to pay:
// the extracted corpus (hashed once at admission), the content-addressed
// ArtifactCache, and the S2 memo cache. Each refresh() builds a fresh
// CrowdMapPipeline over the corpus with those caches attached: stages whose
// input set did not change resolve to the same artifact keys and replay from
// the cache; only work downstream of the new upload recomputes. Because
// reuse is keyed on content, invalidation is implicit — there is no
// out-of-date bit to get wrong, and the refreshed plan is byte-identical to
// a cold rebuild at any thread count (tests/test_determinism.cpp).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "common/annotations.hpp"
#include "common/fault.hpp"
#include "common/memo_cache.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "obs/flight.hpp"

namespace crowdmap::core {

/// One node of the stage DAG (documentation/tooling view; the dependency
/// edges are what justify each seam's key preimage).
struct StageInfo {
  const char* name;      // stage span name
  const char* inputs;    // upstream dependencies, comma-separated
  const char* artifact;  // cached artifact family, "-" where always live
};

/// The pipeline's stage DAG in execution order.
[[nodiscard]] std::span<const StageInfo> stage_dag() noexcept;

/// Thread-safe incremental floor-plan planner for one floor's corpus.
/// ingest() may be called concurrently (the service's extraction workers
/// do); refresh() calls are serialized internally, so a background refresh
/// and a foreground build cannot interleave mid-pipeline.
class IncrementalPlanner {
 public:
  /// `registry` defaults to a fresh registry; pass the service's shared one
  /// to fold refresh metrics into its exports. Cache sizing and background
  /// behavior come from `config.incremental`.
  explicit IncrementalPlanner(
      PipelineConfig config,
      std::shared_ptr<obs::MetricsRegistry> registry = nullptr);

  IncrementalPlanner(const IncrementalPlanner&) = delete;
  IncrementalPlanner& operator=(const IncrementalPlanner&) = delete;

  /// Admits one extracted trajectory: applies the pipeline's quality gates,
  /// hashes the content key (outside any lock — safe to call from worker
  /// threads) and appends to the corpus. Idempotent by video_id — a
  /// re-submitted upload (retry storm, post-crash replay) replaces its
  /// earlier extraction rather than duplicating it. Returns false when the
  /// gates rejected the upload.
  bool ingest(trajectory::Trajectory traj) CM_EXCLUDES(mutex_);

  /// Rebuilds the floor plan over the whole corpus, reusing every artifact
  /// whose inputs did not change. Serialized against concurrent refreshes.
  /// The result is retained (latest()) and returned.
  std::shared_ptr<const PipelineResult> refresh(
      const std::optional<WorldFrame>& frame = std::nullopt)
      CM_EXCLUDES(mutex_);

  /// Last complete refresh result; nullptr before the first refresh. The
  /// service serves this while a background refresh runs.
  [[nodiscard]] std::shared_ptr<const PipelineResult> latest() const
      CM_EXCLUDES(mutex_);

  /// Cache reuse of the most recent refresh (all zeros before the first).
  [[nodiscard]] CacheReuseStats last_reuse() const CM_EXCLUDES(mutex_);

  /// Kept trajectories, sorted by video_id (the refresh ingest order).
  [[nodiscard]] std::vector<trajectory::Trajectory> trajectories() const
      CM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t corpus_size() const CM_EXCLUDES(mutex_);

  /// Lends a worker pool to each refresh pipeline (not owned; nullptr
  /// returns to config-driven pools).
  void set_thread_pool(common::ThreadPool* pool) noexcept { pool_ = pool; }

  /// The artifact cache, e.g. for persistence export; nullptr when
  /// config.incremental.artifact_cache_bytes == 0 (caching disabled).
  [[nodiscard]] cache::ArtifactCache* artifact_cache() noexcept {
    return cache_.get();
  }

  /// Lends an external flight recorder (not owned; nullptr reverts to the
  /// planner's own). The service passes its recorder here so every floor's
  /// refreshes land in one set of rings.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept {
    external_flight_ = flight;
  }

  /// The recorder every refresh pipeline records into: the lent one when
  /// set, else the planner-lifetime recorder (a black box spanning
  /// refreshes, unlike the per-run Trace); nullptr when
  /// config.flight.enabled == false and none was lent.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() noexcept {
    return external_flight_ != nullptr ? external_flight_ : flight_.get();
  }

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics_registry()
      const noexcept {
    return registry_;
  }

 private:
  PipelineConfig config_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<cache::ArtifactCache> cache_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  obs::FlightRecorder* external_flight_ = nullptr;
  obs::Histogram* refresh_hist_ = nullptr;  // owned by registry_
  std::unique_ptr<common::BoundedMemoCache> s2_cache_;
  common::FaultInjector cache_faults_;  // drives kArtifactCacheEvict
  common::ThreadPool* pool_ = nullptr;

  mutable common::Mutex mutex_;
  std::vector<std::pair<trajectory::Trajectory, cache::ArtifactKey>> corpus_
      CM_GUARDED_BY(mutex_);
  std::shared_ptr<const PipelineResult> latest_ CM_GUARDED_BY(mutex_);
  CacheReuseStats last_reuse_ CM_GUARDED_BY(mutex_);

  /// Serializes refresh() bodies (held across the whole pipeline run, so it
  /// must never nest inside mutex_).
  common::Mutex refresh_mutex_;
};

}  // namespace crowdmap::core
